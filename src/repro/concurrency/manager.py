"""The transaction manager: validation, serialization, group commit.

One :class:`TransactionManager` guards one schema.  It owns

* the **commit lock** — replays are applied to the shared object layer
  one transaction at a time, which is what makes the committed history
  serial-equivalent;
* the **version table** — per-OID commit timestamps backing the
  first-committer-wins write-set validation (a stale version in a
  committing transaction's write set raises
  :class:`~repro.errors.ConflictError`);
* the **commit clock** — monotonic commit timestamps;
* the **group-commit handoff** — with a durable store, the fsync is
  deferred to the store's shared gate and awaited *outside* the commit
  lock, so concurrent committers share one fsync while the next
  transaction is already replaying.

Commit pipeline (per transaction, under the commit lock):

1. validate write set (and read set when requested) against versions;
2. open a journal scope on the schema + a deferred-rule scope on the
   rule engine, then replay the op log — immediate rules veto exactly
   as they would for direct mutations;
3. publish ``BEFORE_COMMIT``: the transaction's own deferred rules run;
   a violation rolls back just this scope ("abort the whole
   transaction", §5.2.2) and re-raises;
4. flush the touched objects to the store (commit marker appended,
   fsync deferred), stamp versions with a fresh commit timestamp,
   publish ``AFTER_COMMIT``;
5. release the lock, then wait on the group-commit gate for
   durability.

The *implicit session* (direct schema mutations + ``db.commit()``)
stays supported: :meth:`commit_implicit` routes it through the same
commit lock and version table so managed transactions detect conflicts
with it too.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from ..core.events import Event, EventKind
from ..core.schema import Schema, TxnScope
from ..errors import ConflictError, SchemaError, TransactionError
from ..telemetry import DISABLED, NULL_SPAN, Telemetry
from .transaction import Transaction, TxnState

if TYPE_CHECKING:  # pragma: no cover
    from ..rules.engine import RuleEngine
    from ..storage.store import ObjectStore


class TxnStats:
    """Authoritative counters, maintained under the manager's locks."""

    def __init__(self) -> None:
        self.begun = 0
        self.committed = 0
        self.aborted = 0
        self.conflicts = 0
        self.empty_commits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
            "conflicts": self.conflicts,
            "empty_commits": self.empty_commits,
        }


class TransactionManager:
    """Session-scoped MVCC-style transactions over one schema.

    Args:
        schema: the shared object layer.
        rules: the schema's rule engine, if any — used to scope the
            deferred-rule queue to the committing transaction.
        store: the persistent store, if any — used for group commit.
        telemetry: facade for txn metrics and ``txn.commit`` spans.
    """

    def __init__(
        self,
        schema: Schema,
        rules: "RuleEngine | None" = None,
        store: "ObjectStore | None" = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.schema = schema
        self.rules = rules
        self.store = store
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._commit_lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._versions: dict[int, int] = {}
        self._clock = 0
        self._txn_counter = 0
        self._active = 0
        self.stats = TxnStats()

    # -- bookkeeping --------------------------------------------------------

    @property
    def active_count(self) -> int:
        return self._active

    @property
    def commit_ts(self) -> int:
        """Timestamp of the most recent commit (0 before any)."""
        return self._clock

    def version_of(self, oid: int) -> int:
        """Commit timestamp of the last transaction that wrote ``oid``."""
        return self._versions.get(oid, 0)

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        """Serialize a read of committed state against commit replays.

        Held only per-operation, never for a transaction's lifetime —
        this is what keeps the design optimistic rather than coarse.
        """
        with self._commit_lock:
            yield

    # -- beginning ----------------------------------------------------------

    def begin(self, validate_reads: bool = False) -> Transaction:
        """Start a managed transaction (overlay over committed state)."""
        with self._state_lock:
            self._txn_counter += 1
            txn_id = self._txn_counter
            self._active += 1
            self.stats.begun += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.gauge(
                "repro_txn_active", help="Managed transactions in flight"
            ).set(self._active)
            tel.registry.counter(
                "repro_txn_begun_total", help="Managed transactions begun"
            ).inc()
        return Transaction(self, txn_id, validate_reads=validate_reads)

    def _note_finished(
        self, txn: Transaction, committed: bool, conflict: bool
    ) -> None:
        with self._state_lock:
            self._active -= 1
            if committed:
                self.stats.committed += 1
            else:
                self.stats.aborted += 1
                if conflict:
                    self.stats.conflicts += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.gauge("repro_txn_active").set(self._active)
            if committed:
                tel.registry.counter(
                    "repro_txn_commits_total",
                    help="Managed transactions committed",
                ).inc()
            else:
                tel.registry.counter(
                    "repro_txn_aborts_total",
                    help="Managed transactions aborted",
                ).inc()
                if conflict:
                    tel.registry.counter(
                        "repro_txn_conflicts_total",
                        help="Commits rejected by write-set validation",
                    ).inc()

    # -- committing ---------------------------------------------------------

    def commit(self, txn: Transaction) -> int:
        """Validate + replay + flush ``txn``; returns its commit ts."""
        tel = self.telemetry
        started = time.perf_counter_ns()
        span = (
            tel.tracer.span("txn.commit", txn=str(txn.txn_id))
            if tel.enabled
            else None
        )
        try:
            if span is not None:
                with span:
                    ts = self._commit_inner(txn)
            else:
                ts = self._commit_inner(txn)
        finally:
            if tel.enabled:
                tel.registry.histogram(
                    "repro_txn_commit_ms",
                    help="Managed-transaction commit latency (ms)",
                ).observe((time.perf_counter_ns() - started) / 1e6)
        return ts

    def _commit_inner(self, txn: Transaction) -> int:
        durability_token: int | None = None
        with self._commit_lock:
            if not txn.active:
                # An abort (e.g. session eviction) won the race to the
                # commit lock: the op log is gone.  Without this check
                # the empty-commit fast path would report success for a
                # transaction whose writes were just discarded.
                raise TransactionError(
                    f"transaction {txn.txn_id} is {txn.state.value}"
                )
            self._validate(txn)
            if txn.op_count == 0:
                # Read-only transaction: nothing to replay or flush.
                txn.state = TxnState.COMMITTED
                txn.commit_ts = self._clock
                self._note_finished(txn, committed=True, conflict=False)
                self.stats.empty_commits += 1
                return self._clock
            scope = self.schema.begin_txn_scope()
            if self.rules is not None:
                self.rules.push_deferred_scope()
            try:
                self._replay(txn)
                # The transaction's own deferred rules run now; an
                # ABORT-class violation calls schema.abort() (scope
                # rollback) inside the engine, then propagates.
                self.schema.events.publish(
                    Event(kind=EventKind.BEFORE_COMMIT)
                )
            except BaseException:
                scope.rollback()  # idempotent if the engine already did
                self.schema.events.publish(Event(kind=EventKind.AFTER_ABORT))
                self._finish_scope()
                txn.state = TxnState.ABORTED
                self._note_finished(txn, committed=False, conflict=False)
                raise
            try:
                self._clock += 1
                ts = self._clock
                durability_token = self._flush(scope)
                if self.store is not None:
                    # Still under the commit lock, so this is exactly
                    # this transaction's marker offset — the LSN a
                    # session needs for read-your-writes routing.
                    txn.commit_lsn = self.store.commit_lsn
                # Stamp both what the replay journalled AND the txn's
                # declared write set: relationship endpoints are written
                # logically (their edge sets change) without their own
                # undo entries, and shared-endpoint writers must still
                # conflict.
                for oid in set(scope.touched) | set(txn._write_versions):
                    self._versions[oid] = ts
                self.schema.events.publish(Event(kind=EventKind.AFTER_COMMIT))
            finally:
                self._finish_scope()
            txn.state = TxnState.COMMITTED
            txn.commit_ts = ts
            self._note_finished(txn, committed=True, conflict=False)
        if durability_token is not None:
            # Outside the commit lock: the group-commit leader fsyncs
            # for every marker appended so far while the next committer
            # is already replaying.  The wait gets its own child span so
            # a slow trace distinguishes replay time from fsync time.
            tel = self.telemetry
            wait_span = (
                tel.tracer.span("txn.wait_durable")
                if tel.enabled
                else NULL_SPAN
            )
            with wait_span:
                self.store.wait_durable(durability_token)
        return ts

    def _finish_scope(self) -> None:
        if self.rules is not None:
            self.rules.pop_deferred_scope()
        self.schema.end_txn_scope()

    def _validate(self, txn: Transaction) -> None:
        """First-committer-wins: any write since first touch conflicts."""
        stale = [
            oid
            for oid, seen in txn._write_versions.items()
            if self._versions.get(oid, 0) != seen
        ]
        if txn.validate_reads:
            stale.extend(
                oid
                for oid, seen in txn._read_versions.items()
                if oid not in txn._write_versions
                and self._versions.get(oid, 0) != seen
            )
        if stale:
            txn.state = TxnState.ABORTED
            self._note_finished(txn, committed=False, conflict=True)
            raise ConflictError(stale)

    def _replay(self, txn: Transaction) -> None:
        """Apply the op log to the shared schema, events and all."""
        schema = self.schema
        for op in txn._ops:
            if op.kind == "noop":
                continue
            if op.kind == "create":
                schema.create(op.class_name, _oid=op.oid, **op.attrs)
            elif op.kind == "set":
                schema.get_object(op.oid).set(op.attr, op.value)
            elif op.kind == "delete":
                schema.delete(schema.get_object(op.oid), cascade=op.cascade)
            elif op.kind == "relate":
                participants = {
                    role: schema.get_object(oid)
                    for role, oid in op.participants.items()
                } or None
                schema.relate(
                    op.class_name,
                    schema.get_object(op.origin),
                    schema.get_object(op.destination),
                    participants=participants,
                    _oid=op.oid,
                    **op.attrs,
                )
            elif op.kind == "unrelate":
                rel = schema.get_object(op.oid)
                schema.unrelate(rel)  # type: ignore[arg-type]
            else:  # pragma: no cover - staging guards op kinds
                raise SchemaError(f"unknown replay op {op.kind!r}")

    def _flush(self, scope: TxnScope) -> int | None:
        """Write the scope's touched objects; returns a durability token
        when the fsync was deferred to the group-commit gate."""
        schema = self.schema
        writes = {
            oid: obj
            for oid, obj in scope.touched.items()
            if oid in schema._dirty
        }
        deletes = [
            oid for oid in scope.touched if oid in schema._pending_deletes
        ]
        token: int | None = None
        if self.store is not None and (writes or deletes):
            store_txn = self.store.begin()
            try:
                for oid, obj in writes.items():
                    store_txn.write(oid, schema._to_record(obj))
                for oid in deletes:
                    if oid in self.store:
                        store_txn.delete(oid)
                token = store_txn.commit(defer_sync=True)
            except BaseException:
                if store_txn.active:
                    store_txn.abort()
                raise
        for oid, obj in writes.items():
            obj._mark_clean()
            schema._dirty.pop(oid, None)
        for oid in deletes:
            schema._pending_deletes.pop(oid, None)
        return token

    # -- the implicit session ----------------------------------------------

    def commit_implicit(self) -> None:
        """Commit direct (non-managed) schema mutations.

        Runs the legacy :meth:`Schema.commit` under the commit lock and
        stamps versions for everything it flushed, so managed
        transactions racing the implicit session still conflict.
        """
        with self._commit_lock:
            touched = set(self.schema._dirty) | set(
                self.schema._pending_deletes
            )
            self.schema.commit()
            if touched:
                self._clock += 1
                for oid in touched:
                    self._versions[oid] = self._clock

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return self.stats.snapshot() | {
            "active": self._active,
            "commit_ts": self._clock,
            "versioned_oids": len(self._versions),
        }
