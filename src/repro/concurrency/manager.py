"""The transaction manager: validation, serialization, group commit.

One :class:`TransactionManager` guards one schema.  It owns

* the **commit lock** — replays are applied to the shared object layer
  one transaction at a time, which is what makes the committed history
  serial-equivalent;
* the **version table** — per-OID commit timestamps backing snapshot
  validation: a committing transaction conflicts exactly when some OID
  in its *write set* was committed after the transaction's snapshot
  (write-write, first committer wins — raises
  :class:`~repro.errors.ConflictError`; reads never conflict unless
  the transaction opted into ``validate_reads=True``);
* the **commit clock** — monotonic commit timestamps, published
  atomically with the commit LSN as the ``(ts, lsn)`` snapshot pair
  new transactions begin at;
* the **MVCC store** (:mod:`repro.mvcc`) — every commit appends its
  records to per-OID version chains at the commit LSN, so snapshot
  reads resolve lock-free and ``as_of`` time travel works;
* the **group-commit handoff** — with a durable store, the fsync is
  deferred to the store's shared gate and awaited *outside* the commit
  lock, so concurrent committers share one fsync while the next
  transaction is already replaying.

Commit pipeline (per transaction, under the commit lock):

1. validate the write set (and read set when requested) against the
   transaction's snapshot timestamp;
2. open a journal scope on the schema + a deferred-rule scope on the
   rule engine, then replay the op log — immediate rules veto exactly
   as they would for direct mutations;
3. publish ``BEFORE_COMMIT``: the transaction's own deferred rules run;
   a violation rolls back just this scope ("abort the whole
   transaction", §5.2.2) and re-raises;
4. flush the touched objects to the store (commit marker appended,
   fsync deferred), stamp versions with a fresh commit timestamp,
   append the flushed records to the version chains at the commit LSN
   and publish the new ``(ts, lsn)`` snapshot pair, then
   ``AFTER_COMMIT``;
5. release the lock, then wait on the group-commit gate for
   durability.

The *implicit session* (direct schema mutations + ``db.commit()``)
stays supported: :meth:`commit_implicit` routes it through the same
commit lock and version table so managed transactions detect conflicts
with it too.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from ..core.events import Event, EventKind
from ..core.schema import Schema, TxnScope
from ..errors import ConflictError, SchemaError, TransactionError
from ..telemetry import DISABLED, NULL_SPAN, Telemetry
from .transaction import Transaction, TxnState

if TYPE_CHECKING:  # pragma: no cover
    from ..mvcc import MvccStore
    from ..rules.engine import RuleEngine
    from ..storage.store import ObjectStore


class TxnStats:
    """Authoritative counters, maintained under the manager's locks."""

    def __init__(self) -> None:
        self.begun = 0
        self.committed = 0
        self.aborted = 0
        self.conflicts = 0
        self.empty_commits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
            "conflicts": self.conflicts,
            "empty_commits": self.empty_commits,
        }


class TransactionManager:
    """Session-scoped MVCC-style transactions over one schema.

    Args:
        schema: the shared object layer.
        rules: the schema's rule engine, if any — used to scope the
            deferred-rule queue to the committing transaction.
        store: the persistent store, if any — used for group commit.
        telemetry: facade for txn metrics and ``txn.commit`` spans.
    """

    def __init__(
        self,
        schema: Schema,
        rules: "RuleEngine | None" = None,
        store: "ObjectStore | None" = None,
        telemetry: Telemetry | None = None,
        mvcc: "MvccStore | None" = None,
    ) -> None:
        self.schema = schema
        self.rules = rules
        self.store = store
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.mvcc = mvcc
        self._commit_lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._versions: dict[int, int] = {}
        self._clock = 0
        self._txn_counter = 0
        self._active = 0
        self.stats = TxnStats()
        # The (commit ts, commit LSN) pair new transactions snapshot at.
        # Written as the last step of every commit (chains already hold
        # that commit's versions), read without the commit lock —
        # single-reference tuple swaps are atomic, so a beginner either
        # sees the whole commit or none of it.
        base_lsn = store.commit_lsn if store is not None else 0
        self._published: tuple[int, int] = (0, base_lsn)
        if mvcc is not None and store is not None:
            mvcc.gc.note_head(base_lsn)

    # -- bookkeeping --------------------------------------------------------

    @property
    def active_count(self) -> int:
        return self._active

    @property
    def commit_ts(self) -> int:
        """Timestamp of the most recent commit (0 before any)."""
        return self._clock

    @property
    def published_snapshot(self) -> tuple[int, int]:
        """The ``(commit ts, LSN)`` pair new transactions begin at."""
        return self._published

    def publish_floor(self, lsn: int) -> None:
        """Reset the published LSN (bootstrap seed / resync point)."""
        self._published = (self._clock, lsn)

    def version_of(self, oid: int) -> int:
        """Commit timestamp of the last transaction that wrote ``oid``."""
        return self._versions.get(oid, 0)

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        """Serialize a read of committed state against commit replays.

        Held only per-operation, never for a transaction's lifetime —
        this is what keeps the design optimistic rather than coarse.
        """
        with self._commit_lock:
            yield

    # -- beginning ----------------------------------------------------------

    def begin(self, validate_reads: bool = False) -> Transaction:
        """Start a managed transaction over a pinned snapshot.

        The snapshot is the last atomically-published ``(ts, lsn)``
        commit pair; pinning it keeps the version-chain GC from
        collecting anything this transaction can still read.  No lock
        is shared with committers on this path beyond the pin table's
        own mutex.
        """
        with self._state_lock:
            self._txn_counter += 1
            txn_id = self._txn_counter
            self._active += 1
            self.stats.begun += 1
        snapshot_ts, snapshot_lsn = self._published
        pin = None
        if self.mvcc is not None:
            while True:
                snapshot_ts, snapshot_lsn = self._published
                pin = self.mvcc.pin(snapshot_lsn)
                if pin is not None:
                    break
                # GC advanced its floor past the pair we read — only
                # possible when commits raced us, so a fresh read of the
                # published pair makes progress.
        tel = self.telemetry
        if tel.enabled:
            tel.registry.gauge(
                "repro_txn_active", help="Managed transactions in flight"
            ).set(self._active)
            tel.registry.counter(
                "repro_txn_begun_total", help="Managed transactions begun"
            ).inc()
        txn = Transaction(
            self,
            txn_id,
            validate_reads=validate_reads,
            snapshot_ts=snapshot_ts,
            snapshot_lsn=snapshot_lsn,
        )
        txn._pin = pin
        return txn

    def _note_finished(
        self, txn: Transaction, committed: bool, conflict: bool
    ) -> None:
        if txn._pin is not None:
            txn._pin.release()
            txn._pin = None
        with self._state_lock:
            self._active -= 1
            if committed:
                self.stats.committed += 1
            else:
                self.stats.aborted += 1
                if conflict:
                    self.stats.conflicts += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.gauge("repro_txn_active").set(self._active)
            if committed:
                tel.registry.counter(
                    "repro_txn_commits_total",
                    help="Managed transactions committed",
                ).inc()
            else:
                tel.registry.counter(
                    "repro_txn_aborts_total",
                    help="Managed transactions aborted",
                ).inc()
                if conflict:
                    tel.registry.counter(
                        "repro_txn_conflicts_total",
                        help="Commits rejected by write-set validation",
                    ).inc()

    # -- committing ---------------------------------------------------------

    def commit(self, txn: Transaction) -> int:
        """Validate + replay + flush ``txn``; returns its commit ts."""
        tel = self.telemetry
        started = time.perf_counter_ns()
        span = (
            tel.tracer.span("txn.commit", txn=str(txn.txn_id))
            if tel.enabled
            else None
        )
        try:
            if span is not None:
                with span:
                    ts = self._commit_inner(txn)
            else:
                ts = self._commit_inner(txn)
        finally:
            if tel.enabled:
                tel.registry.histogram(
                    "repro_txn_commit_ms",
                    help="Managed-transaction commit latency (ms)",
                ).observe((time.perf_counter_ns() - started) / 1e6)
        return ts

    def _commit_inner(self, txn: Transaction) -> int:
        durability_token: int | None = None
        with self._commit_lock:
            if not txn.active:
                # An abort (e.g. session eviction) won the race to the
                # commit lock: the op log is gone.  Without this check
                # the empty-commit fast path would report success for a
                # transaction whose writes were just discarded.
                raise TransactionError(
                    f"transaction {txn.txn_id} is {txn.state.value}"
                )
            self._validate(txn)
            if txn.op_count == 0:
                # Read-only transaction: nothing to replay or flush.
                txn.state = TxnState.COMMITTED
                txn.commit_ts = self._clock
                self._note_finished(txn, committed=True, conflict=False)
                self.stats.empty_commits += 1
                return self._clock
            scope = self.schema.begin_txn_scope()
            if self.rules is not None:
                self.rules.push_deferred_scope()
            try:
                self._replay(txn)
                # The transaction's own deferred rules run now; an
                # ABORT-class violation calls schema.abort() (scope
                # rollback) inside the engine, then propagates.
                self.schema.events.publish(
                    Event(kind=EventKind.BEFORE_COMMIT)
                )
            except BaseException:
                scope.rollback()  # idempotent if the engine already did
                self.schema.events.publish(Event(kind=EventKind.AFTER_ABORT))
                self._finish_scope()
                txn.state = TxnState.ABORTED
                self._note_finished(txn, committed=False, conflict=False)
                raise
            try:
                self._clock += 1
                ts = self._clock
                durability_token, records, deletes = self._flush(scope)
                if self.store is not None:
                    # Still under the commit lock, so this is exactly
                    # this transaction's marker offset — the LSN a
                    # session needs for read-your-writes routing.
                    txn.commit_lsn = self.store.commit_lsn
                    lsn = txn.commit_lsn
                else:
                    lsn = ts  # in-memory: the clock is the LSN domain
                # Stamp both what the replay journalled AND the txn's
                # declared write set: relationship endpoints are written
                # logically (their edge sets change) without their own
                # undo entries, and shared-endpoint writers must still
                # conflict.
                for oid in set(scope.touched) | set(txn._write_versions):
                    self._versions[oid] = ts
                if self.mvcc is not None:
                    # Chains first, then the atomic (ts, lsn) publish:
                    # a transaction beginning at this snapshot must be
                    # able to resolve every version the pair implies.
                    self.mvcc.apply_commit(lsn, records, deletes)
                self._published = (ts, lsn)
                self.schema.events.publish(Event(kind=EventKind.AFTER_COMMIT))
            finally:
                self._finish_scope()
            txn.state = TxnState.COMMITTED
            txn.commit_ts = ts
            self._note_finished(txn, committed=True, conflict=False)
        if durability_token is not None:
            # Outside the commit lock: the group-commit leader fsyncs
            # for every marker appended so far while the next committer
            # is already replaying.  The wait gets its own child span so
            # a slow trace distinguishes replay time from fsync time.
            tel = self.telemetry
            wait_span = (
                tel.tracer.span("txn.wait_durable")
                if tel.enabled
                else NULL_SPAN
            )
            with wait_span:
                self.store.wait_durable(durability_token)
        if self.mvcc is not None:
            # Amortized GC outside the commit lock: prune versions no
            # pinned snapshot can reach anymore.
            self.mvcc.maybe_gc()
        return ts

    def _finish_scope(self) -> None:
        if self.rules is not None:
            self.rules.pop_deferred_scope()
        self.schema.end_txn_scope()

    def _validate(self, txn: Transaction) -> None:
        """Write-write snapshot validation (first committer wins).

        A conflict is an OID in the write set committed by someone else
        *after this transaction's snapshot*.  Reads never conflict —
        snapshot reads are consistent by construction — unless the
        transaction opted into ``validate_reads=True``, which applies
        the same post-snapshot test to the read set.
        """
        snapshot_ts = txn.snapshot_ts
        versions = self._versions
        stale = [
            oid
            for oid in txn._write_versions
            if versions.get(oid, 0) > snapshot_ts
        ]
        if txn.validate_reads:
            stale.extend(
                oid
                for oid in txn._read_versions
                if oid not in txn._write_versions
                and versions.get(oid, 0) > snapshot_ts
            )
        if stale:
            txn.state = TxnState.ABORTED
            self._note_finished(txn, committed=False, conflict=True)
            raise ConflictError(stale)

    def _replay(self, txn: Transaction) -> None:
        """Apply the op log to the shared schema, events and all."""
        schema = self.schema
        for op in txn._ops:
            if op.kind == "noop":
                continue
            if op.kind == "create":
                schema.create(op.class_name, _oid=op.oid, **op.attrs)
            elif op.kind == "set":
                schema.get_object(op.oid).set(op.attr, op.value)
            elif op.kind == "delete":
                schema.delete(schema.get_object(op.oid), cascade=op.cascade)
            elif op.kind == "relate":
                participants = {
                    role: schema.get_object(oid)
                    for role, oid in op.participants.items()
                } or None
                schema.relate(
                    op.class_name,
                    schema.get_object(op.origin),
                    schema.get_object(op.destination),
                    participants=participants,
                    _oid=op.oid,
                    **op.attrs,
                )
            elif op.kind == "unrelate":
                rel = schema.get_object(op.oid)
                schema.unrelate(rel)  # type: ignore[arg-type]
            else:  # pragma: no cover - staging guards op kinds
                raise SchemaError(f"unknown replay op {op.kind!r}")

    def _flush(
        self, scope: TxnScope
    ) -> tuple[int | None, dict[int, dict[str, Any]], list[int]]:
        """Write the scope's touched objects.

        Returns ``(token, records, deletes)``: the group-commit
        durability token (when the fsync was deferred to the store's
        gate), plus the flushed storage records and tombstoned OIDs —
        the exact payload the MVCC chains append at the commit LSN, so
        the records are serialized once and shared by reference.
        """
        schema = self.schema
        writes = {
            oid: obj
            for oid, obj in scope.touched.items()
            if oid in schema._dirty
        }
        deletes = [
            oid for oid in scope.touched if oid in schema._pending_deletes
        ]
        records: dict[int, dict[str, Any]] = {}
        if self.store is not None or self.mvcc is not None:
            for oid, obj in writes.items():
                records[oid] = schema._to_record(obj)
        token: int | None = None
        if self.store is not None and (writes or deletes):
            store_txn = self.store.begin()
            try:
                for oid, record in records.items():
                    store_txn.write(oid, record)
                for oid in deletes:
                    if oid in self.store:
                        store_txn.delete(oid)
                token = store_txn.commit(defer_sync=True)
            except BaseException:
                if store_txn.active:
                    store_txn.abort()
                raise
        for oid, obj in writes.items():
            obj._mark_clean()
            schema._dirty.pop(oid, None)
        for oid in deletes:
            schema._pending_deletes.pop(oid, None)
        return token, records, deletes

    # -- the implicit session ----------------------------------------------

    def commit_implicit(self) -> None:
        """Commit direct (non-managed) schema mutations.

        Runs the legacy :meth:`Schema.commit` under the commit lock and
        stamps versions for everything it flushed, so managed
        transactions racing the implicit session still conflict.  The
        clock is bumped *before* the schema commit: the schema's MVCC
        sink (:meth:`ingest_implicit`) publishes the new ``(ts, lsn)``
        pair as soon as the chains hold the commit's versions.
        """
        with self._commit_lock:
            touched = set(self.schema._dirty) | set(
                self.schema._pending_deletes
            )
            # Meta-only commits (classification edits, synonym changes)
            # must advance the clock too: the in-memory LSN domain *is*
            # the clock, and two different meta states may never share
            # one LSN in the version chains.
            if touched or self.schema._meta_dirty():
                self._clock += 1
            self.schema.commit()
            if touched:
                for oid in touched:
                    self._versions[oid] = self._clock
            # The schema's MVCC sink already published; this is the
            # no-sink (chains disabled) fallback, and is idempotent.
            lsn = (
                self.store.commit_lsn
                if self.store is not None
                else self._clock
            )
            self._published = (self._clock, max(lsn, self._published[1]))

    def ingest_implicit(
        self,
        records: "dict[int, dict[str, Any]]",
        deletes: "list[int]",
        meta: "tuple[int, dict[str, Any]] | None",
    ) -> None:
        """MVCC sink for :meth:`Schema.commit` (``Schema._mvcc_sink``).

        Appends the implicit session's flushed records — and the schema
        metadata record, which is how classification membership gets
        its version history — to the chains, then publishes the new
        snapshot pair.  Also covers code that calls ``schema.commit()``
        directly without going through :meth:`commit_implicit`: those
        commits do not bump the conflict clock (exactly as before
        MVCC), but snapshot readers still see their data.
        """
        if self.mvcc is None:
            return
        lsn = (
            self.store.commit_lsn if self.store is not None else self._clock
        )
        writes = dict(records)
        if meta is not None:
            writes[meta[0]] = meta[1]
        if writes or deletes:
            self.mvcc.apply_commit(lsn, writes, deletes)
        self._published = (self._clock, max(lsn, self._published[1]))
        self.mvcc.maybe_gc()

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return self.stats.snapshot() | {
            "active": self._active,
            "commit_ts": self._clock,
            "versioned_oids": len(self._versions),
            "snapshot_lsn": self._published[1],
        }
