"""Token-issuing session registry for the HTTP server and CLI.

A :class:`Session` binds one client to at most one open
:class:`~repro.concurrency.transaction.Transaction` at a time.  The
:class:`SessionManager` issues unguessable tokens, enforces a bounded
session count, and evicts sessions whose idle time exceeds the timeout
(their open transaction aborts — nothing they staged ever reached the
shared schema, so eviction is always safe).

Sessions are *sticky but stateless on the wire*: the server holds the
overlay; the client holds only the token.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from ..errors import NodeDemotedError, SessionError
from ..telemetry import DISABLED, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from .manager import TransactionManager
    from .transaction import Transaction


class Session:
    """One client's handle: a token plus an optional open transaction."""

    def __init__(
        self,
        session_id: str,
        manager: "TransactionManager",
        clock: Callable[[], float],
    ) -> None:
        self.session_id = session_id
        self._manager = manager
        self._clock = clock
        self.created_at = clock()
        self.last_used = self.created_at
        self.commits = 0
        self.aborts = 0
        #: Storage LSN of this session's newest commit (None before the
        #: first, or on an in-memory store).  The read router uses it as
        #: the read-your-writes floor when picking a replica.
        self.last_commit_lsn: int | None = None
        #: Set when this node is demoted with the session open:
        #: ``(epoch, primary_url)``.  Any further transactional use
        #: raises :class:`~repro.errors.NodeDemotedError`.
        self.demoted: "tuple[int, str | None] | None" = None
        self._txn: "Transaction | None" = None
        self._lock = threading.RLock()

    def touch(self) -> None:
        self.last_used = self._clock()

    @property
    def idle_s(self) -> float:
        return self._clock() - self.last_used

    @property
    def in_txn(self) -> bool:
        txn = self._txn
        return txn is not None and txn.active

    def _check_demoted(self) -> None:
        if self.demoted is not None:
            epoch, primary_url = self.demoted
            target = f"; current primary: {primary_url}" if primary_url else ""
            raise NodeDemotedError(
                f"session {self.session_id}: this node was demoted to "
                f"replica at epoch {epoch}; the open transaction was "
                f"aborted — reconnect to the primary and retry{target}",
                epoch=epoch,
                primary_url=primary_url,
            )

    @property
    def txn(self) -> "Transaction":
        """The session's open transaction, beginning one on demand."""
        with self._lock:
            self._check_demoted()
            if self._txn is None or not self._txn.active:
                self._txn = self._manager.begin()
            return self._txn

    def begin(self) -> "Transaction":
        """Explicitly open a transaction (error if one is already open)."""
        with self._lock:
            self._check_demoted()
            if self.in_txn:
                raise SessionError(
                    f"session {self.session_id} already has an open "
                    "transaction; commit or abort it first"
                )
            self._txn = self._manager.begin()
            return self._txn

    def commit(self) -> int:
        """Commit the open transaction; returns its commit timestamp.

        On :class:`~repro.errors.ConflictError` the transaction is gone
        (first-committer-wins already aborted it) — the session drops it
        so the client can ``begin()`` again and retry.
        """
        with self._lock:
            self._check_demoted()
            if not self.in_txn:
                raise SessionError(
                    f"session {self.session_id} has no open transaction"
                )
            txn, self._txn = self._txn, None
            assert txn is not None
            try:
                ts = txn.commit()
            finally:
                self.touch()
            self.commits += 1
            self.last_commit_lsn = txn.commit_lsn
            return ts

    def abort(self) -> None:
        with self._lock:
            txn, self._txn = self._txn, None
            self.touch()
        if txn is not None and self._abort_safely(txn):
            self.aborts += 1

    def close(self) -> None:
        """Abort any open transaction and drop it (eviction/release)."""
        with self._lock:
            txn, self._txn = self._txn, None
        if txn is not None:
            self._abort_safely(txn)

    def demote(self, epoch: int, primary_url: "str | None" = None) -> bool:
        """This node lost the primary role: abort and poison the session.

        The open transaction (if any) is aborted safely; the session
        stays resolvable so the client's next request gets the *typed*
        :class:`~repro.errors.NodeDemotedError` (with the successor's
        URL) rather than a generic unknown-session error.  Returns True
        when an open transaction was aborted by this call.
        """
        with self._lock:
            self.demoted = (epoch, primary_url)
            txn, self._txn = self._txn, None
        aborted = txn is not None and self._abort_safely(txn)
        if aborted:
            self.aborts += 1
        return aborted

    def _abort_safely(self, txn: "Transaction") -> bool:
        """Abort ``txn`` without racing an in-flight commit of it.

        ``Transaction.commit()`` is public, so a client holding
        ``session.txn`` can be mid-replay inside the manager's commit
        lock while the idle evictor closes this session.  A bare
        ``txn.abort()`` here would clear the op log under the replay's
        feet (half-applied commit).  Taking the commit lock first means
        the abort lands strictly before the replay starts — the
        committer re-checks ``active`` under the lock and bails — or
        strictly after it finished, where the re-check below skips the
        abort.  Returns True if this call performed the abort.
        """
        with self._manager.read_lock():
            if txn.active:
                txn.abort()
                return True
        return False

    def info(self) -> dict[str, Any]:
        return {
            "session": self.session_id,
            "demoted": self.demoted is not None,
            "in_txn": self.in_txn,
            "idle_s": round(self.idle_s, 3),
            "commits": self.commits,
            "aborts": self.aborts,
            "last_commit_lsn": self.last_commit_lsn,
        }


class SessionManager:
    """Bounded, idle-evicting registry of :class:`Session` objects.

    Args:
        manager: the transaction manager sessions begin transactions on.
        max_sessions: hard cap; :meth:`create` raises ``SessionError``
            when the cap is hit even after evicting expired sessions.
        idle_timeout_s: sessions idle longer than this are evicted (and
            their open transaction aborted) by the next sweep.
        clock: injectable monotonic clock for tests.
        telemetry: facade for session gauges/counters.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        max_sessions: int = 64,
        idle_timeout_s: float = 900.0,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._manager = manager
        self.max_sessions = max_sessions
        self.idle_timeout_s = idle_timeout_s
        self._clock = clock
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._sessions: dict[str, Session] = {}
        self._lock = threading.RLock()
        self.created_total = 0
        self.expired_total = 0

    # -- lifecycle ----------------------------------------------------------

    def create(self) -> Session:
        """Issue a new session; evicts expired sessions to make room."""
        with self._lock:
            self.sweep()
            if len(self._sessions) >= self.max_sessions:
                raise SessionError(
                    f"session limit reached ({self.max_sessions}); "
                    "commit/abort idle sessions or raise max_sessions"
                )
            session_id = secrets.token_hex(16)
            session = Session(session_id, self._manager, self._clock)
            self._sessions[session_id] = session
            self.created_total += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_sessions_created_total", help="Sessions issued"
            ).inc()
            tel.registry.gauge(
                "repro_sessions_active", help="Live (non-evicted) sessions"
            ).set(len(self._sessions))
        return session

    def get(self, session_id: str) -> Session:
        """Resolve a token; expired or unknown tokens raise SessionError."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None and session.idle_s > self.idle_timeout_s:
                self._evict(session)
                session = None
            if session is None:
                raise SessionError(
                    f"unknown or expired session {session_id!r}"
                )
            session.touch()
            return session

    def release(self, session_id: str) -> None:
        """Explicitly end a session (aborts any open transaction)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            session.close()
            self._update_gauge()

    def sweep(self) -> int:
        """Evict every expired session; returns how many were evicted."""
        with self._lock:
            expired = [
                s
                for s in self._sessions.values()
                if s.idle_s > self.idle_timeout_s
            ]
            for session in expired:
                self._evict(session)
        return len(expired)

    def _evict(self, session: Session) -> None:
        self._sessions.pop(session.session_id, None)
        session.close()
        self.expired_total += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_sessions_expired_total",
                help="Sessions evicted by idle timeout",
            ).inc()
        self._update_gauge()

    def _update_gauge(self) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.registry.gauge(
                "repro_sessions_active", help="Live (non-evicted) sessions"
            ).set(len(self._sessions))

    def demote_all(
        self, epoch: int, primary_url: "str | None" = None
    ) -> int:
        """Demotion fence: abort every open transaction, poison every
        session with the typed error.  Returns how many sessions had an
        open transaction aborted."""
        with self._lock:
            sessions = list(self._sessions.values())
        aborted = sum(
            1 for s in sessions if s.demote(epoch, primary_url)
        )
        tel = self.telemetry
        if tel.enabled and sessions:
            tel.registry.counter(
                "repro_ha_sessions_demoted_total",
                help="Sessions poisoned because this node was demoted",
            ).inc(len(sessions))
        return aborted

    # -- introspection ------------------------------------------------------

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "active": len(self._sessions),
                "created": self.created_total,
                "expired": self.expired_total,
                "max_sessions": self.max_sessions,
                "idle_timeout_s": self.idle_timeout_s,
            }

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
        self._update_gauge()
