"""``python -m repro`` — the Prometheus database shell."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
