"""Log-shipping replication: primary shipper, replicas, read routing.

Physical replication for Prometheus: the primary serves raw byte ranges
of its record log (``stream``), replicas splice them in through the
recovery path and refresh their object layer incrementally (``replica``),
and a staleness-bounded router spreads reads across the fleet
(``router``).  LSNs are byte offsets; equality of LSN implies byte
identity of state — the invariant every test in
``tests/replication/`` leans on.
"""

from .replica import (
    HttpPullTransport,
    ReplicaApplier,
    ReplicationClient,
    RWLock,
)
from .router import ReadNode, ReadRouter, RoutedResult, UNBOUNDED
from .stream import (
    BASE_LSN,
    DEFAULT_MAX_BYTES,
    FRAME_MAGIC,
    FRAME_VERSION,
    PREFIX_CRC_WINDOW,
    LogShipper,
    ReplicaPullState,
    decode_frame,
    encode_frame,
)

__all__ = [
    "BASE_LSN",
    "DEFAULT_MAX_BYTES",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "PREFIX_CRC_WINDOW",
    "UNBOUNDED",
    "HttpPullTransport",
    "LogShipper",
    "ReadNode",
    "ReadRouter",
    "ReplicaApplier",
    "ReplicaPullState",
    "ReplicationClient",
    "RoutedResult",
    "RWLock",
    "decode_frame",
    "encode_frame",
]
