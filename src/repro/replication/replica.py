"""Replica-side replication: apply shipped batches, serve reads.

A replica is a normal :class:`~repro.engine.database.PrometheusDB` whose
store was opened ``read_only`` and whose log grows only by
:meth:`~repro.storage.store.ObjectStore.apply_replicated`.  Three pieces
live here:

* :class:`RWLock` — many concurrent readers (POOL queries) or one
  writer (the applier).  Queries therefore always see a commit-boundary
  snapshot: a half-applied batch is never query-visible.
* :class:`ReplicaApplier` — splices a decoded frame into the store and
  refreshes the object layer *incrementally*: changed objects are
  re-materialised from their records, extents, relationship indexes and
  attribute indexes are patched in place, with the event bus muted so
  no rules fire (they already fired on the primary).
* :class:`ReplicationClient` — the pull loop: long-polls the primary
  (via any transport with a ``pull`` method — the HTTP one or an
  in-process :class:`~repro.replication.stream.LogShipper`), applies
  frames, resets and re-syncs from scratch when the primary reports
  divergence (e.g. it compacted).
"""

from __future__ import annotations

import http.client
import inspect
import json
import random
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from ..core.relationships import RelationshipInstance
from ..core.schema import _META_CLASS
from ..core.synonyms import SynonymRegistry
from ..errors import DivergedError, ReplicationError, StalePrimaryError
from ..storage.store import AppliedBatch
from ..telemetry import NULL_SPAN, Telemetry, propagation
from .stream import BASE_LSN, PREFIX_CRC_WINDOW, decode_frame

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import PrometheusDB


class RWLock:
    """Readers-writer lock: queries share, the applier excludes."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class ReplicaApplier:
    """Applies replicated batches to a replica database in place."""

    def __init__(
        self, db: "PrometheusDB", telemetry: Telemetry | None = None
    ) -> None:
        if db.store is None:
            raise ReplicationError("a replica needs a persistent store")
        self.db = db
        self.telemetry = (
            telemetry if telemetry is not None else db.telemetry
        )
        self.lock = RWLock()
        self.batches_applied = 0
        self.bytes_applied = 0
        self.resyncs = 0
        self.last_apply_at = 0.0
        self._epoch_seen = 0

    @property
    def known_epoch(self) -> int:
        """Highest cluster epoch this replica has witnessed.

        The max of what the log itself records (epoch stamps replicate
        as META entries) and what frames/promotions have told us — the
        latter can lead the former while a promotion's stamp is still
        in flight.
        """
        store = self.db.store
        assert store is not None
        return max(store.cluster_epoch, self._epoch_seen)

    def observe_epoch(self, epoch: int) -> None:
        if epoch > self._epoch_seen:
            self._epoch_seen = epoch

    # -- reads -------------------------------------------------------------

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        """Hold this around queries for a commit-boundary snapshot."""
        with self.lock.read():
            yield

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        as_of: int | None = None,
    ) -> Any:
        """Evaluate a query at a commit boundary (or at ``as_of``).

        Live reads take the RWLock so a half-applied batch is never
        visible.  ``as_of`` reads skip the lock entirely: version
        chains at a pinned LSN are immutable, so the applier can keep
        splicing while the query runs — and the same LSN returns
        byte-identical results here and on the primary.
        """
        if as_of is not None and self.db.mvcc is not None:
            return self.db.query(text, params=params, as_of=as_of)
        with self.lock.read():
            return self.db.query(text, params=params, as_of=as_of)

    @property
    def applied_lsn(self) -> int:
        return self.db.store.commit_lsn  # type: ignore[union-attr]

    # -- applying ----------------------------------------------------------

    def apply_frame(self, frame: bytes) -> AppliedBatch | None:
        """Decode, validate and apply one shipped frame.

        Duplicate delivery is tolerated (the overlap is trimmed); a gap
        — the frame starts past this log's end — raises, because
        splicing it would corrupt byte identity.  A frame from a cluster
        epoch *older* than the highest this replica has witnessed is a
        deposed primary still shipping: it is rejected with
        :class:`~repro.errors.StalePrimaryError` (fencing).
        """
        from_lsn, to_lsn, payload, epoch = decode_frame(frame)
        known = self.known_epoch
        if epoch < known:
            raise StalePrimaryError(
                f"frame from epoch {epoch} rejected: this replica has "
                f"witnessed epoch {known}",
                epoch=known,
            )
        self.observe_epoch(epoch)
        store = self.db.store
        assert store is not None
        started = time.perf_counter_ns()
        with self.lock.write():
            position = store.replication_position
            if to_lsn <= position:
                return None  # duplicate; already applied
            if from_lsn > position:
                raise ReplicationError(
                    f"replication gap: frame starts at {from_lsn}, "
                    f"log ends at {position}"
                )
            if from_lsn < position:
                payload = payload[position - from_lsn:]
            batch = store.apply_replicated(payload)
            self._refresh_model(batch)
            self._feed_mvcc(batch)
        self.batches_applied += 1
        self.bytes_applied += len(payload)
        self.last_apply_at = time.monotonic()
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_replication_batches_applied_total",
                help="Shipped batches applied by this replica",
            ).inc()
            tel.registry.counter(
                "repro_replication_bytes_applied_total",
                help="Log payload bytes applied by this replica",
            ).inc(len(payload))
            tel.registry.histogram(
                "repro_replication_apply_ms",
                help="Batch apply latency, model refresh included (ms)",
            ).observe((time.perf_counter_ns() - started) / 1e6)
        return batch

    def _refresh_model(self, batch: AppliedBatch) -> None:
        """Patch the object layer to match the newly applied commits.

        Runs with the event bus muted: rules, views and the planner's
        event hooks must not re-fire for changes that already ran their
        course on the primary.  Attribute indexes and the relationship
        registry are therefore patched directly (the same maintenance
        the event path would have done), and nothing is marked dirty —
        a replica has nothing to flush.
        """
        schema = self.db.schema
        indexes = self.db.indexes
        with schema.events.muted():
            for oid, fields in batch.changes:
                old = schema._objects.get(oid)
                if old is not None:
                    for index in indexes._covering(old.pclass.name, None):
                        index.impl.remove(old.get(index.attribute), oid)
                    if isinstance(old, RelationshipInstance):
                        schema.relationships.unindex(old)
                    schema._extents[old.pclass.name].discard(oid)
                    schema._objects.pop(oid, None)
                    old._mark_deleted()
                if fields is None:
                    if oid == schema._meta_oid:
                        schema._meta_oid = None
                    schema.synonyms.forget(oid)
                    continue
                if fields.get("class") == _META_CLASS:
                    schema._meta_oid = oid
                    schema.synonyms = SynonymRegistry()
                    schema.synonyms.load_storable(fields.get("synonyms", []))
                    extras = fields.get("extras", {})
                    if isinstance(extras, dict):
                        schema.meta_extras.clear()
                        schema.meta_extras.update(extras)
                    continue
                obj = schema._from_record(oid, fields)
                schema._objects[oid] = obj
                schema._extents[obj.pclass.name].add(oid)
                if isinstance(obj, RelationshipInstance):
                    schema.relationships.index(obj)
                for index in indexes._covering(obj.pclass.name, None):
                    index.impl.insert(obj.get(index.attribute), oid)

    def _feed_mvcc(self, batch: AppliedBatch) -> None:
        """Stamp the replica's version chains with the batch's commits.

        Each commit is appended at the *primary's* LSN for it (the
        marker's end offset — identical here because the log is a
        byte-identical prefix), so ``as_of`` time travel resolves the
        same versions on every node.  Called under the write lock.
        """
        mvcc = self.db.mvcc
        if mvcc is None:
            return
        for lsn, commit_changes in batch.commits:
            writes: dict[int, dict[str, Any]] = {}
            deletes: list[int] = []
            for oid, fields in commit_changes:
                if fields is None:
                    deletes.append(oid)
                else:
                    writes[oid] = fields
            mvcc.apply_commit(lsn, writes, deletes)
        if batch.commits:
            self.db.transactions.publish_floor(batch.commit_lsn)
            mvcc.maybe_gc()

    def reset(self) -> None:
        """Divergence recovery: drop all replicated state, start empty.

        The primary rewrote its log (compaction), so byte offsets no
        longer line up; the only safe move for a prefix-replica is a
        full re-sync from LSN :data:`~repro.replication.stream.BASE_LSN`.
        MVCC history is dropped with it — old LSNs name offsets in a
        log that no longer exists.
        """
        schema = self.db.schema
        store = self.db.store
        assert store is not None
        self.db.release_snapshots()
        with self.lock.write():
            with schema.events.muted():
                for oid in list(schema._objects):
                    obj = schema._objects.pop(oid)
                    schema._extents[obj.pclass.name].discard(oid)
                    if isinstance(obj, RelationshipInstance):
                        schema.relationships.unindex(obj)
                    obj._mark_deleted()
                self.db.indexes._rebuild_all()
            schema.synonyms = SynonymRegistry()
            schema.meta_extras.clear()
            schema._meta_oid = None
            store.reset_for_resync()
            if self.db.mvcc is not None:
                self.db.mvcc.reset(store.commit_lsn)
        self.resyncs += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_replication_resyncs_total",
                help="Full re-syncs forced by primary divergence",
            ).inc()
            tel.events.record(
                "replication.reset",
                epoch=self.known_epoch,
                lsn=store.replication_position,
                resyncs=self.resyncs,
            )

    def status(self) -> dict[str, Any]:
        store = self.db.store
        assert store is not None
        return {
            "applied_lsn": store.commit_lsn,
            "replication_position": store.replication_position,
            "epoch": self.known_epoch,
            "batches_applied": self.batches_applied,
            "bytes_applied": self.bytes_applied,
            "resyncs": self.resyncs,
            "last_apply_age_s": (
                round(time.monotonic() - self.last_apply_at, 3)
                if self.last_apply_at
                else None
            ),
        }


class HttpPullTransport:
    """Pulls frames from a primary's ``POST /replicate/pull`` endpoint.

    The transport holds one **persistent keep-alive connection** to the
    primary and reuses it pull after pull — against the asyncio front
    end the steady-state long-poll loop pays no TCP handshake per pull.
    A primary that closes per response (the threaded HTTP/1.0 front
    end) degrades transparently to connection-per-pull, and a stale
    kept-alive socket (primary restarted between pulls) is retried once
    on a fresh connection before the error surfaces.

    Every request carries a socket timeout: ``wait_s`` (the server-side
    long-poll budget) plus ``timeout_margin_s``, hard-capped at
    ``timeout_s`` — a hung peer can therefore stall one pull, never the
    pull loop.
    """

    def __init__(
        self,
        url: str,
        timeout_margin_s: float = 10.0,
        timeout_s: float = 60.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_margin_s = timeout_margin_s
        self.timeout_s = timeout_s
        parsed = urllib.parse.urlsplit(self.url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port
        self._prefix = parsed.path.rstrip("/")
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        """Drop the kept-alive connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def _request(
        self, data: bytes, headers: dict[str, str], timeout: float
    ) -> tuple[int, str, bytes]:
        """One POST on the persistent connection; returns
        ``(status, reason, body)``.  Reconnects once when the kept-alive
        socket turns out to be dead."""
        for attempt in (0, 1):
            fresh = self._conn is None
            if fresh:
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=timeout
                )
            conn = self._conn
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
            try:
                conn.request(
                    "POST", self._prefix + "/replicate/pull",
                    body=data, headers=headers,
                )
                response = conn.getresponse()
                body = response.read()
            except (TimeoutError, socket.timeout):
                self.close()
                raise
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if fresh or attempt:
                    raise
                continue  # the kept-alive socket had died; retry once
            if response.will_close:
                # HTTP/1.0 peer (threaded front end): per-request
                # connections, exactly the old behavior.
                self.close()
            return response.status, response.reason or "", body
        raise AssertionError("unreachable")  # pragma: no cover

    def pull(
        self,
        from_lsn: int,
        prefix_crc: int | None = None,
        wait_s: float = 0.0,
        max_bytes: int | None = None,
        replica: str = "",
        epoch: int | None = None,
    ) -> tuple[str, bytes | None]:
        body: dict[str, Any] = {
            "from_lsn": from_lsn,
            "wait_s": wait_s,
            "replica": replica,
        }
        if prefix_crc is not None:
            body["prefix_crc"] = prefix_crc
        if max_bytes is not None:
            body["max_bytes"] = max_bytes
        if epoch is not None:
            body["epoch"] = epoch
        headers = {"Content-Type": "application/json"}
        ctx = propagation.current()
        if ctx is not None:
            # The pull joins the active trace (catch-up under a request,
            # or the loop's attached startup context), so the primary's
            # handler span lands in the same trace_id.
            headers[propagation.TRACEPARENT_HEADER] = (
                propagation.format_traceparent(ctx)
            )
        timeout = min(wait_s + self.timeout_margin_s, self.timeout_s)
        try:
            status, reason, payload = self._request(
                json.dumps(body).encode("utf-8"), headers, timeout
            )
        except (http.client.HTTPException, OSError) as exc:
            raise ReplicationError(f"pull failed: {exc}") from exc
        if status == 204:
            return "empty", None
        if status == 200:
            return "frame", payload
        if status == 409:
            detail: dict[str, Any] = {}
            try:
                detail = json.loads(payload.decode("utf-8"))
            except ValueError:
                pass
            if detail.get("status") == "stale-primary" or detail.get(
                "stale_primary"
            ):
                raise StalePrimaryError(
                    "pull rejected: peer fenced at epoch "
                    f"{detail.get('epoch', 0)}",
                    epoch=int(detail.get("epoch", 0) or 0),
                    primary_url=detail.get("primary_url"),
                )
            return "diverged", None
        raise ReplicationError(f"pull failed: HTTP {status} {reason}")


def _accepts_epoch(pull: Any) -> bool:
    """Does this transport's ``pull`` take the fencing ``epoch`` kwarg?"""
    try:
        parameters = inspect.signature(pull).parameters
    except (TypeError, ValueError):  # builtins/C callables: assume yes
        return True
    return "epoch" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in parameters.values()
    )


class ReplicationClient:
    """The replica's pull loop: catch up, then long-poll forever.

    ``transport`` is anything with the shipper's ``pull`` signature — an
    :class:`HttpPullTransport` against a remote primary, or a local
    :class:`~repro.replication.stream.LogShipper` for in-process tests
    (which is also how the fault-injection sweep drives torn batches
    deterministically).

    Failover: when the primary is fenced (``StalePrimaryError``) or
    stays unreachable for ``rediscover_after`` consecutive pulls, the
    loop calls the optional ``rediscover`` callback, which may return a
    new transport pointed at the promoted primary.  Error backoff is
    full-jitter (seeded deterministically from the replica name, or
    ``jitter_seed``) so a fleet of replicas does not stampede a
    recovering primary in lockstep.
    """

    def __init__(
        self,
        applier: ReplicaApplier,
        transport: Any,
        name: str = "replica",
        poll_wait_s: float = 10.0,
        error_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        rediscover: Any = None,
        rediscover_after: int = 3,
        jitter_seed: int | None = None,
    ) -> None:
        self.applier = applier
        self.transport = transport
        self.name = name
        self.poll_wait_s = poll_wait_s
        self.error_backoff_s = error_backoff_s
        self.max_backoff_s = max_backoff_s
        self.rediscover = rediscover
        self.rediscover_after = rediscover_after
        self.pull_errors = 0
        self.stale_primary_seen = 0
        self.failovers_followed = 0
        self.last_error: str | None = None
        if jitter_seed is None:
            jitter_seed = zlib.crc32(name.encode("utf-8"))
        self._rng = random.Random(jitter_seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._trace_handle: Any = None

    # -- one pull ----------------------------------------------------------

    def _position(self) -> int:
        store = self.applier.db.store
        assert store is not None
        return store.replication_position

    def _prefix_crc(self) -> int | None:
        position = self._position()
        if position <= BASE_LSN:
            return None
        store = self.applier.db.store
        assert store is not None
        window_start = max(BASE_LSN, position - PREFIX_CRC_WINDOW)
        return zlib.crc32(store.read_log_bytes(window_start, position))

    def pull_once(self, wait_s: float = 0.0) -> AppliedBatch | None:
        """One pull + apply; handles divergence by resetting.

        Returns the applied batch, or None when the primary had nothing
        new.  Raises :class:`~repro.errors.ReplicationError` on
        transport or frame errors (the loop retries; callers of the
        synchronous API see the failure).
        """
        tel = self.applier.telemetry
        span = (
            tel.tracer.span("replication.pull", replica=self.name)
            if tel.enabled
            else NULL_SPAN
        )
        with span:
            batch = self._pull_once_inner(wait_s, span)
        return batch

    def _pull_once_inner(self, wait_s: float, span: Any) -> AppliedBatch | None:
        kwargs: dict[str, Any] = {
            "prefix_crc": self._prefix_crc(),
            "wait_s": wait_s,
            "replica": self.name,
        }
        if _accepts_epoch(self.transport.pull):
            # Older/duck-typed transports (fault-injection wrappers in
            # tests) may predate fencing; they just don't send an epoch.
            kwargs["epoch"] = self.applier.known_epoch
        status, frame = self.transport.pull(self._position(), **kwargs)
        span.set("status", status)
        if status == "empty":
            return None
        if status == "diverged":
            self.applier.reset()
            raise DivergedError(
                f"replica {self.name}: primary log diverged; "
                "reset for full re-sync"
            )
        if status == "stale-primary":
            # In-process shipper path: the peer detected it is deposed.
            raise StalePrimaryError(
                f"replica {self.name}: pull peer is fenced (deposed "
                "primary); rediscover the current primary",
                epoch=self.applier.known_epoch,
            )
        if status != "frame" or frame is None:
            raise ReplicationError(f"unexpected pull status {status!r}")
        position = self._position()
        batch = self.applier.apply_frame(frame)
        if self._position() == position:
            # A frame was shipped but nothing could be spliced: the
            # shipper's byte ceiling is smaller than the next log entry,
            # and retrying the same pull would spin forever.
            raise ReplicationError(
                f"replica {self.name}: frame from {position} made no "
                "progress (max_bytes below the next entry size?)"
            )
        return batch

    def catch_up(self, deadline_s: float = 30.0) -> int:
        """Pull until the primary reports no new data; returns the
        applied LSN.  Divergence resets and keeps pulling."""
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            try:
                if self.pull_once(wait_s=0.0) is None:
                    return self.applier.applied_lsn
            except DivergedError:
                continue  # reset already happened; restart from empty
        raise ReplicationError(
            f"replica {self.name}: catch-up exceeded {deadline_s}s"
        )

    # -- failover ----------------------------------------------------------

    def set_transport(self, transport: Any) -> None:
        """Re-point the pull loop at a different primary (promotion)."""
        self.transport = transport

    def _try_rediscover(self, reason: str) -> bool:
        """Ask ``rediscover`` for a fresh transport; True when re-pointed."""
        if self.rediscover is None:
            return False
        try:
            transport = self.rediscover(self)
        except Exception as exc:  # rediscovery must never kill the loop
            self.last_error = f"rediscovery failed ({reason}): {exc}"
            return False
        if transport is None:
            return False
        self.set_transport(transport)
        self.failovers_followed += 1
        tel = self.applier.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_ha_failovers_followed_total",
                help="Times this replica re-pointed its pull loop at a "
                "newly discovered primary",
            ).inc()
        return True

    # -- the background loop ----------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        # Capture the starter's trace position (a /ha/repoint request,
        # the CLI boot) so the loop's spans hang under it instead of
        # orphaning into per-pull root traces.
        self._trace_handle = self.applier.telemetry.tracer.capture()
        self._thread = threading.Thread(
            target=self._run, name=f"replication-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        with self.applier.telemetry.tracer.attach(self._trace_handle):
            self._run_loop()

    def _run_loop(self) -> None:
        consecutive = 0
        while not self._stop.is_set():
            try:
                self.pull_once(wait_s=self.poll_wait_s)
            except DivergedError:
                consecutive = 0  # reset is progress
            except StalePrimaryError as exc:
                # The peer we pull from was deposed: rediscover NOW,
                # don't wait out a backoff ladder against a dead node.
                self.stale_primary_seen += 1
                self.last_error = str(exc)
                tel = self.applier.telemetry
                if tel.enabled:
                    tel.registry.counter(
                        "repro_ha_stale_primary_total",
                        help="Pulls rejected because the peer was a "
                        "deposed (fenced) primary",
                    ).inc()
                if exc.epoch:
                    self.applier.observe_epoch(exc.epoch)
                if not self._try_rediscover("stale-primary"):
                    if self._stop.wait(self._backoff(consecutive)):
                        return
                    consecutive += 1
            except ReplicationError as exc:
                self.pull_errors += 1
                consecutive += 1
                self.last_error = str(exc)
                tel = self.applier.telemetry
                if tel.enabled:
                    tel.registry.counter(
                        "repro_replication_pull_errors_total",
                        help="Failed pull attempts (transport or frame)",
                    ).inc()
                if (
                    consecutive >= self.rediscover_after
                    and self._try_rediscover("unreachable")
                ):
                    consecutive = 0
                    continue
                # Mid-stream reconnect: back off, then resume from our
                # own log end — the cursor is the file, nothing to redo.
                if self._stop.wait(self._backoff(consecutive - 1)):
                    return
            else:
                consecutive = 0
                self.last_error = None

    def _backoff(self, attempt: int) -> float:
        """Full-jitter backoff: uniform in [0, min(cap, base·2^n)]."""
        ceiling = min(
            self.max_backoff_s, self.error_backoff_s * (2 ** max(attempt, 0))
        )
        return self._rng.uniform(0, ceiling)

    def status(self) -> dict[str, Any]:
        return self.applier.status() | {
            "name": self.name,
            "running": self.running,
            "pull_errors": self.pull_errors,
            "stale_primary_seen": self.stale_primary_seen,
            "failovers_followed": self.failovers_followed,
            "last_error": self.last_error,
        }
