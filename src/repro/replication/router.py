"""Staleness-bounded read routing across the primary and its replicas.

The router answers one question per read: *which node may serve this
query without violating the client's staleness bound or its own
read-your-writes history?*  The rules, in LSN (byte-offset) terms:

* A replica at applied LSN ``La`` may serve a read with bound ``B``
  (bytes) iff ``La >= primary_commit_lsn - B``.
* A session that committed at LSN ``Lc`` must read from nodes with
  ``La >= Lc`` (read-your-writes) — until replication catches up that
  usually means the primary.
* ``B = 0`` (the default) demands full freshness; only a fully
  caught-up replica or the primary qualifies.

The router is deliberately transport-agnostic: nodes are anything with
``query``/``applied_lsn``-shaped callables, so the same class routes
across in-process appliers (tests) and HTTP remotes (federation).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ReplicationError
from ..telemetry import DISABLED, NULL_SPAN, Telemetry

#: Accept any staleness — route purely for load spreading.
UNBOUNDED = float("inf")


@dataclass
class ReadNode:
    """One routable read target.

    ``query_fn(text, params)`` runs a query; ``lsn_fn()`` reports the
    node's applied commit LSN; ``is_primary`` marks the always-fresh
    fallback (its ``lsn_fn`` should report the primary commit LSN).
    """

    name: str
    query_fn: Callable[[str, dict[str, Any] | None], Any]
    lsn_fn: Callable[[], int]
    is_primary: bool = False
    reads: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "primary": self.is_primary,
            "reads": self.reads,
            "errors": self.errors,
        }


@dataclass
class RoutedResult:
    """A query result plus where/why it ran — the checker records this."""

    node: str
    result: Any
    node_lsn: int
    primary_lsn: int
    reason: str = "fresh-enough"


class ReadRouter:
    """Routes reads to the freshest-eligible, least-loaded node."""

    def __init__(
        self,
        primary: ReadNode,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not primary.is_primary:
            raise ReplicationError("the router's first node must be primary")
        self.primary = primary
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._lock = threading.Lock()
        self._replicas: dict[str, ReadNode] = {}
        self._rr = 0  # round-robin tiebreak among eligible replicas
        self.failovers = 0

    def add_replica(self, node: ReadNode) -> None:
        if node.is_primary:
            raise ReplicationError("replicas must not be marked primary")
        with self._lock:
            self._replicas[node.name] = node

    def remove_replica(self, name: str) -> None:
        with self._lock:
            self._replicas.pop(name, None)

    def set_primary(self, node: ReadNode) -> None:
        """Follow a promotion: ``node`` becomes the fresh fallback.

        If the new primary was one of our read replicas it is removed
        from the replica set (reads against it are now primary reads);
        the deposed primary is *not* auto-added as a replica — it is
        fenced and must re-join through the normal replication path.
        """
        node.is_primary = True
        with self._lock:
            self._replicas.pop(node.name, None)
            self.primary = node
            self.failovers += 1
        self._count("repro_router_failovers_total")

    def replicas(self) -> list[str]:
        with self._lock:
            return sorted(self._replicas)

    # -- routing -----------------------------------------------------------

    def choose(
        self,
        staleness_bytes: float = 0.0,
        min_lsn: int = 0,
    ) -> tuple[ReadNode, int, int, str]:
        """Pick a node; returns (node, node_lsn, primary_lsn, reason).

        ``staleness_bytes`` is the client's bound B; ``min_lsn`` is the
        read-your-writes floor (a session passes its last commit LSN).
        Preference order: an eligible replica (round-robin among them),
        else the primary.
        """
        primary_lsn = self.primary.lsn_fn()
        floor = max(min_lsn, primary_lsn - staleness_bytes)
        with self._lock:
            candidates = []
            for node in self._replicas.values():
                lsn = node.lsn_fn()
                if lsn >= floor:
                    candidates.append((node, lsn))
            if candidates:
                self._rr += 1
                node, lsn = candidates[self._rr % len(candidates)]
                return node, lsn, primary_lsn, "fresh-enough"
        reason = (
            "read-your-writes" if min_lsn > 0 else "no-replica-fresh-enough"
        )
        if not self._replicas:
            reason = "no-replicas"
        return self.primary, primary_lsn, primary_lsn, reason

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        staleness_bytes: float = 0.0,
        min_lsn: int = 0,
    ) -> RoutedResult:
        """Route and run one read; falls back to the primary on replica
        failure (the replica's error count feeds eviction decisions)."""
        tel = self.telemetry
        # The root span of a routed read: the choose() LSN probes and
        # the serving node's query (both HTTP for federation-backed
        # nodes) run under it, so one trace covers router → primary
        # probe → replica answer across processes.
        span = (
            tel.tracer.span("router.query") if tel.enabled else NULL_SPAN
        )
        with span:
            node, lsn, primary_lsn, reason = self.choose(
                staleness_bytes, min_lsn
            )
            try:
                result = node.query_fn(text, params)
            except Exception:
                node.errors += 1
                self._count("repro_router_replica_errors_total")
                if node.is_primary:
                    raise
                node = self.primary
                lsn = primary_lsn = self.primary.lsn_fn()
                reason = "replica-error-fallback"
                result = node.query_fn(text, params)
            node.reads += 1
            span.set("node", node.name)
            span.set("reason", reason)
            if tel.enabled:
                tel.registry.counter(
                    "repro_router_reads_total",
                    {"node": node.name},
                    help="Reads served per routed node",
                ).inc()
        return RoutedResult(
            node=node.name,
            result=result,
            node_lsn=lsn,
            primary_lsn=primary_lsn,
            reason=reason,
        )

    def _count(self, name: str) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(name).inc()

    def status(self) -> dict[str, Any]:
        with self._lock:
            nodes = {
                name: node.as_dict() | {"lsn": node.lsn_fn()}
                for name, node in sorted(self._replicas.items())
            }
        return {
            "primary": self.primary.as_dict()
            | {"lsn": self.primary.lsn_fn()},
            "replicas": nodes,
            "failovers": self.failovers,
        }
