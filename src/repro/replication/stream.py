"""Log-shipping wire format and the primary-side shipper.

Replication in Prometheus is *physical*: the unit shipped is a raw byte
range of the primary's :class:`~repro.storage.log.RecordLog`, so a
replica's log file is always a byte-identical prefix of the primary's.
An LSN is therefore just a byte offset, and "two nodes are at the same
LSN" literally means their files hash identically up to it — the
property the crash-recovery sweep asserts.

Frame format (all integers big-endian)::

    magic(4 = b"PLSB") | version(1) | from_lsn(8) | to_lsn(8) |
    crc32(payload)(4) | payload

The payload is the log bytes ``[from_lsn, to_lsn)`` where ``to_lsn`` is
a commit-marker boundary on the primary: every batch ends at a
transaction boundary, so a replica that applied a whole frame is at a
consistent state.  Entries of *aborted* transactions that precede the
next commit marker ride along inside later frames (they are dead weight
on the primary and stay dead weight on the replica — byte identity is
preserved, and the apply path ignores uncommitted entries exactly like
recovery does).

Divergence: a replica proves its log is still a prefix of the primary's
by sending the CRC of its last ``PREFIX_CRC_WINDOW`` bytes with every
pull.  After the primary compacts (offsets change wholesale) the check
fails, the shipper answers "diverged", and the replica resets to empty
and re-syncs from scratch.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ReplicationError
from ..storage.log import HEADER
from ..telemetry import DISABLED, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.store import ObjectStore

FRAME_MAGIC = b"PLSB"
FRAME_VERSION = 1
_FRAME_HEAD = struct.Struct(">4sBQQI")  # magic, version, from, to, crc

#: Bytes of trailing log context hashed into the pull-time prefix check.
PREFIX_CRC_WINDOW = 64

#: Smallest LSN: the log's fixed file header (identical on every node).
BASE_LSN = len(HEADER)

#: Default ceiling on one frame's payload.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


def encode_frame(from_lsn: int, to_lsn: int, payload: bytes) -> bytes:
    return (
        _FRAME_HEAD.pack(
            FRAME_MAGIC, FRAME_VERSION, from_lsn, to_lsn, zlib.crc32(payload)
        )
        + payload
    )


def decode_frame(data: bytes) -> tuple[int, int, bytes]:
    """Validate and unpack one frame; returns (from_lsn, to_lsn, payload).

    Raises :class:`~repro.errors.ReplicationError` on any structural
    problem — a torn frame (network cut, fault injection) never reaches
    the apply path.
    """
    if len(data) < _FRAME_HEAD.size:
        raise ReplicationError(
            f"short frame: {len(data)} < {_FRAME_HEAD.size} header bytes"
        )
    magic, version, from_lsn, to_lsn, crc = _FRAME_HEAD.unpack(
        data[: _FRAME_HEAD.size]
    )
    if magic != FRAME_MAGIC:
        raise ReplicationError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise ReplicationError(f"unsupported frame version {version}")
    payload = data[_FRAME_HEAD.size:]
    if len(payload) != to_lsn - from_lsn:
        raise ReplicationError(
            f"frame length mismatch: payload {len(payload)} bytes for "
            f"range [{from_lsn}, {to_lsn})"
        )
    if zlib.crc32(payload) != crc:
        raise ReplicationError("frame checksum mismatch (torn shipment)")
    return from_lsn, to_lsn, payload


@dataclass
class ReplicaPullState:
    """What the primary knows about one replica, from its pulls."""

    name: str
    acked_lsn: int = 0  # from_lsn of the latest pull == bytes it holds
    pulls: int = 0
    bytes_shipped: int = 0
    last_pull_at: float = 0.0
    diverged: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "acked_lsn": self.acked_lsn,
            "pulls": self.pulls,
            "bytes_shipped": self.bytes_shipped,
            "last_pull_age_s": (
                round(time.monotonic() - self.last_pull_at, 3)
                if self.last_pull_at
                else None
            ),
            "diverged": self.diverged,
        }


class LogShipper:
    """Primary-side pull server: frames log ranges for replicas.

    One shipper serves every replica; it keeps no per-replica cursors of
    its own (the replica's ``from_lsn`` *is* the cursor), only optional
    bookkeeping for ``/health`` and the lag gauge.  ``pull`` long-polls:
    a caught-up replica parks in :meth:`ObjectStore.wait_for_commit_lsn`
    until the next commit or the wait budget expires.
    """

    def __init__(
        self,
        store: "ObjectStore",
        telemetry: Telemetry | None = None,
        max_wait_s: float = 25.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.store = store
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.max_wait_s = max_wait_s
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._replicas: dict[str, ReplicaPullState] = {}

    # -- replica bookkeeping (for /health and the lag gauge) --------------

    def replicas(self) -> dict[str, ReplicaPullState]:
        with self._lock:
            return dict(self._replicas)

    def _note_pull(
        self, replica: str, from_lsn: int, shipped: int, diverged: bool
    ) -> None:
        if not replica:
            return
        with self._lock:
            state = self._replicas.get(replica)
            if state is None:
                state = self._replicas[replica] = ReplicaPullState(replica)
            # Plain assignment, not max(): a post-compaction re-sync
            # legitimately rewinds the replica's cursor to zero.
            state.acked_lsn = from_lsn
            state.pulls += 1
            state.bytes_shipped += shipped
            state.last_pull_at = time.monotonic()
            if diverged:
                state.diverged += 1

    def lag_bytes(self) -> dict[str, int]:
        """Per-replica replication lag: commit LSN minus acked bytes."""
        commit_lsn = self.store.commit_lsn
        with self._lock:
            return {
                name: max(0, commit_lsn - state.acked_lsn)
                for name, state in self._replicas.items()
            }

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Register the scrape-time lag collector (free on the hot path)."""
        self.telemetry = telemetry
        telemetry.registry.add_collector(self._collect)

    def _collect(self, registry: Any) -> None:
        for name, lag in sorted(self.lag_bytes().items()):
            registry.gauge(
                "repro_replication_lag_bytes",
                {"replica": name},
                help="Primary commit LSN minus the replica's acked LSN",
            ).set(lag)

    # -- the pull protocol -------------------------------------------------

    def prefix_crc(self, upto_lsn: int) -> int:
        """CRC of the last ``PREFIX_CRC_WINDOW`` log bytes before ``upto_lsn``."""
        window_start = max(BASE_LSN, upto_lsn - PREFIX_CRC_WINDOW)
        return zlib.crc32(self.store.read_log_bytes(window_start, upto_lsn))

    def pull(
        self,
        from_lsn: int,
        prefix_crc: int | None = None,
        wait_s: float = 0.0,
        max_bytes: int | None = None,
        replica: str = "",
    ) -> tuple[str, bytes | None]:
        """One pull request; returns ``(status, frame_or_None)``.

        Statuses: ``"frame"`` (new bytes, frame attached), ``"empty"``
        (caught up, wait budget spent), ``"diverged"`` (this log is not
        a superset-prefix of the replica's — reset and re-sync).
        """
        if from_lsn < BASE_LSN:
            from_lsn = BASE_LSN
        ceiling = min(max_bytes or self.max_bytes, self.max_bytes)
        store = self.store
        if from_lsn > store.replication_position:
            # The replica is ahead of this log: it replicated from a
            # longer incarnation (pre-compaction) — diverged.
            self._note_pull(replica, from_lsn, 0, diverged=True)
            self._count("repro_replication_divergences_total")
            return "diverged", None
        if prefix_crc is not None and from_lsn > BASE_LSN:
            if self.prefix_crc(from_lsn) != prefix_crc:
                self._note_pull(replica, from_lsn, 0, diverged=True)
                self._count("repro_replication_divergences_total")
                return "diverged", None
        commit_lsn = store.commit_lsn
        if commit_lsn <= from_lsn and wait_s > 0:
            commit_lsn = store.wait_for_commit_lsn(
                from_lsn + 1, timeout=min(wait_s, self.max_wait_s)
            )
        if commit_lsn <= from_lsn:
            self._note_pull(replica, from_lsn, 0, diverged=False)
            return "empty", None
        to_lsn = min(commit_lsn, from_lsn + ceiling)
        payload = store.read_log_bytes(from_lsn, to_lsn)
        to_lsn = from_lsn + len(payload)
        frame = encode_frame(from_lsn, to_lsn, payload)
        self._note_pull(replica, from_lsn, len(payload), diverged=False)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_replication_batches_shipped_total",
                help="Framed log batches served to replicas",
            ).inc()
            tel.registry.counter(
                "repro_replication_bytes_shipped_total",
                help="Log payload bytes served to replicas",
            ).inc(len(payload))
        return "frame", frame

    def _count(self, name: str) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(name).inc()

    def status(self) -> dict[str, Any]:
        store = self.store
        return {
            "commit_lsn": store.commit_lsn,
            "durable_lsn": store.durable_lsn,
            "replication_position": store.replication_position,
            "replicas": {
                name: state.as_dict()
                for name, state in sorted(self.replicas().items())
            },
            "lag_bytes": self.lag_bytes(),
        }
