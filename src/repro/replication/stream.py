"""Log-shipping wire format and the primary-side shipper.

Replication in Prometheus is *physical*: the unit shipped is a raw byte
range of the primary's :class:`~repro.storage.log.RecordLog`, so a
replica's log file is always a byte-identical prefix of the primary's.
An LSN is therefore just a byte offset, and "two nodes are at the same
LSN" literally means their files hash identically up to it — the
property the crash-recovery sweep asserts.

Frame format (all integers big-endian)::

    magic(4 = b"PLSB") | version(1) | from_lsn(8) | to_lsn(8) |
    epoch(8) | crc32(payload)(4) | payload

Version 2 added the cluster ``epoch`` field: every frame carries the
shipping primary's epoch, and a replica that has witnessed a newer
promotion refuses frames from the old epoch (fencing — see
``docs/HA.md``).  Version-1 frames (no epoch field) still decode, with
``epoch`` reported as 0, so a v1 primary can feed a v2 replica.

The payload is the log bytes ``[from_lsn, to_lsn)`` where ``to_lsn`` is
a commit-marker boundary on the primary: every batch ends at a
transaction boundary, so a replica that applied a whole frame is at a
consistent state.  Entries of *aborted* transactions that precede the
next commit marker ride along inside later frames (they are dead weight
on the primary and stay dead weight on the replica — byte identity is
preserved, and the apply path ignores uncommitted entries exactly like
recovery does).

Divergence: a replica proves its log is still a prefix of the primary's
by sending the CRC of its last ``PREFIX_CRC_WINDOW`` bytes with every
pull.  After the primary compacts (offsets change wholesale) the check
fails, the shipper answers "diverged", and the replica resets to empty
and re-syncs from scratch.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ReplicationError
from ..storage.log import HEADER
from ..telemetry import DISABLED, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.store import ObjectStore

FRAME_MAGIC = b"PLSB"
FRAME_VERSION = 2
_FRAME_HEAD = struct.Struct(">4sBQQQI")  # magic, version, from, to, epoch, crc
_FRAME_HEAD_V1 = struct.Struct(">4sBQQI")  # magic, version, from, to, crc

#: Bytes of trailing log context hashed into the pull-time prefix check.
PREFIX_CRC_WINDOW = 64

#: Smallest LSN: the log's fixed file header (identical on every node).
BASE_LSN = len(HEADER)

#: Default ceiling on one frame's payload.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


def encode_frame(
    from_lsn: int, to_lsn: int, payload: bytes, epoch: int = 0
) -> bytes:
    return (
        _FRAME_HEAD.pack(
            FRAME_MAGIC,
            FRAME_VERSION,
            from_lsn,
            to_lsn,
            epoch,
            zlib.crc32(payload),
        )
        + payload
    )


def decode_frame(data: bytes) -> tuple[int, int, bytes, int]:
    """Validate and unpack one frame; returns
    ``(from_lsn, to_lsn, payload, epoch)``.

    Raises :class:`~repro.errors.ReplicationError` on any structural
    problem — a torn frame (network cut, fault injection) never reaches
    the apply path.  Version-1 frames decode with ``epoch = 0``.
    """
    if len(data) < _FRAME_HEAD_V1.size:
        raise ReplicationError(
            f"short frame: {len(data)} < {_FRAME_HEAD_V1.size} header bytes"
        )
    version = data[len(FRAME_MAGIC)]
    if version == 1:
        magic, version, from_lsn, to_lsn, crc = _FRAME_HEAD_V1.unpack(
            data[: _FRAME_HEAD_V1.size]
        )
        epoch = 0
        head_size = _FRAME_HEAD_V1.size
    elif version == FRAME_VERSION:
        if len(data) < _FRAME_HEAD.size:
            raise ReplicationError(
                f"short frame: {len(data)} < {_FRAME_HEAD.size} header bytes"
            )
        magic, version, from_lsn, to_lsn, epoch, crc = _FRAME_HEAD.unpack(
            data[: _FRAME_HEAD.size]
        )
        head_size = _FRAME_HEAD.size
    else:
        if data[:len(FRAME_MAGIC)] != FRAME_MAGIC:
            raise ReplicationError(
                f"bad frame magic {data[:len(FRAME_MAGIC)]!r}"
            )
        raise ReplicationError(f"unsupported frame version {version}")
    if magic != FRAME_MAGIC:
        raise ReplicationError(f"bad frame magic {magic!r}")
    payload = data[head_size:]
    if len(payload) != to_lsn - from_lsn:
        raise ReplicationError(
            f"frame length mismatch: payload {len(payload)} bytes for "
            f"range [{from_lsn}, {to_lsn})"
        )
    if zlib.crc32(payload) != crc:
        raise ReplicationError("frame checksum mismatch (torn shipment)")
    return from_lsn, to_lsn, payload, epoch


@dataclass
class ReplicaPullState:
    """What the primary knows about one replica, from its pulls."""

    name: str
    acked_lsn: int = 0  # from_lsn of the latest pull == bytes it holds
    pulls: int = 0
    bytes_shipped: int = 0
    last_pull_at: float = 0.0
    diverged: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "acked_lsn": self.acked_lsn,
            "pulls": self.pulls,
            "bytes_shipped": self.bytes_shipped,
            "last_pull_age_s": (
                round(time.monotonic() - self.last_pull_at, 3)
                if self.last_pull_at
                else None
            ),
            "diverged": self.diverged,
        }


class LogShipper:
    """Primary-side pull server: frames log ranges for replicas.

    One shipper serves every replica; it keeps no per-replica cursors of
    its own (the replica's ``from_lsn`` *is* the cursor), only optional
    bookkeeping for ``/health`` and the lag gauge.  ``pull`` long-polls:
    a caught-up replica parks in :meth:`ObjectStore.wait_for_commit_lsn`
    until the next commit or the wait budget expires.
    """

    def __init__(
        self,
        store: "ObjectStore",
        telemetry: Telemetry | None = None,
        max_wait_s: float = 25.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.store = store
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.max_wait_s = max_wait_s
        self.max_bytes = max_bytes
        self._lock = threading.Condition()
        self._replicas: dict[str, ReplicaPullState] = {}

    @property
    def epoch(self) -> int:
        """The cluster epoch this shipper stamps into every frame."""
        return self.store.cluster_epoch

    # -- replica bookkeeping (for /health and the lag gauge) --------------

    def replicas(self) -> dict[str, ReplicaPullState]:
        with self._lock:
            return dict(self._replicas)

    def _note_pull(
        self, replica: str, from_lsn: int, shipped: int, diverged: bool
    ) -> None:
        if not replica:
            return
        with self._lock:
            state = self._replicas.get(replica)
            if state is None:
                state = self._replicas[replica] = ReplicaPullState(replica)
            # Plain assignment, not max(): a post-compaction re-sync
            # legitimately rewinds the replica's cursor to zero.
            state.acked_lsn = from_lsn
            state.pulls += 1
            state.bytes_shipped += shipped
            state.last_pull_at = time.monotonic()
            if diverged:
                state.diverged += 1
            self._lock.notify_all()

    def _note_ack(self, replica: str, from_lsn: int) -> None:
        """Record the pull cursor as an ack without counting a pull.

        The cursor is an acknowledgement the moment the request
        *arrives*: the replica holds every byte below ``from_lsn``
        whatever this pull ends up returning.  Noting it on entry —
        before any long-poll park — is what lets a semi-synchronous
        commit see the ack now rather than when the empty poll times
        out.
        """
        if not replica:
            return
        with self._lock:
            state = self._replicas.get(replica)
            if state is None:
                state = self._replicas[replica] = ReplicaPullState(replica)
            state.acked_lsn = from_lsn
            self._lock.notify_all()

    def replicated_count(self, lsn: int) -> int:
        """How many replicas have pulled up to (at least) ``lsn``.

        A replica's ``acked_lsn`` is the ``from_lsn`` of its latest
        pull — bytes it already holds — so ``acked_lsn >= lsn`` means
        the range up to ``lsn`` has been shipped and applied there.
        """
        with self._lock:
            return sum(
                1
                for state in self._replicas.values()
                if state.acked_lsn >= lsn
            )

    def wait_replicated(
        self, lsn: int, min_acks: int = 1, timeout_s: float = 5.0
    ) -> bool:
        """Block until ``min_acks`` replicas hold the log up to ``lsn``.

        Semi-synchronous acknowledgement: a replica implicitly acks the
        bytes below its pull cursor, so this parks on the pull-notify
        condition until enough cursors pass ``lsn`` or the budget runs
        out.  Returns ``True`` when the quorum was reached.
        """
        deadline = time.monotonic() + timeout_s
        with self._lock:
            while True:
                acks = sum(
                    1
                    for state in self._replicas.values()
                    if state.acked_lsn >= lsn
                )
                if acks >= min_acks:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._lock.wait(remaining)

    def lag_bytes(self) -> dict[str, int]:
        """Per-replica replication lag: commit LSN minus acked bytes."""
        commit_lsn = self.store.commit_lsn
        with self._lock:
            return {
                name: max(0, commit_lsn - state.acked_lsn)
                for name, state in self._replicas.items()
            }

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Register the scrape-time lag collector (free on the hot path)."""
        self.telemetry = telemetry
        telemetry.registry.add_collector(self._collect)

    def _collect(self, registry: Any) -> None:
        for name, lag in sorted(self.lag_bytes().items()):
            registry.gauge(
                "repro_replication_lag_bytes",
                {"replica": name},
                help="Primary commit LSN minus the replica's acked LSN",
            ).set(lag)

    # -- the pull protocol -------------------------------------------------

    def prefix_crc(self, upto_lsn: int) -> int:
        """CRC of the last ``PREFIX_CRC_WINDOW`` log bytes before ``upto_lsn``."""
        window_start = max(BASE_LSN, upto_lsn - PREFIX_CRC_WINDOW)
        return zlib.crc32(self.store.read_log_bytes(window_start, upto_lsn))

    def pull(
        self,
        from_lsn: int,
        prefix_crc: int | None = None,
        wait_s: float = 0.0,
        max_bytes: int | None = None,
        replica: str = "",
        epoch: int | None = None,
    ) -> tuple[str, bytes | None]:
        """One pull request; returns ``(status, frame_or_None)``.

        Statuses: ``"frame"`` (new bytes, frame attached), ``"empty"``
        (caught up, wait budget spent), ``"diverged"`` (this log is not
        a superset-prefix of the replica's — reset and re-sync),
        ``"stale-primary"`` (the puller has witnessed a newer cluster
        epoch than this node's — this node is a deposed primary and must
        not ship; the caller should surface the fencing to an operator
        or the HA controller).
        """
        if epoch is not None and epoch > self.epoch:
            # Fencing: the replica knows a promotion this node missed.
            # Refusing the pull (rather than shipping from a stale
            # timeline) is what keeps a deposed primary harmless.
            self._count("repro_ha_fenced_pulls_total")
            return "stale-primary", None
        if from_lsn < BASE_LSN:
            from_lsn = BASE_LSN
        ceiling = min(max_bytes or self.max_bytes, self.max_bytes)
        store = self.store
        if from_lsn > store.replication_position:
            # The replica is ahead of this log: it replicated from a
            # longer incarnation (pre-compaction) — diverged.
            self._note_pull(replica, from_lsn, 0, diverged=True)
            self._diverged(replica, from_lsn, "replica-ahead")
            return "diverged", None
        if prefix_crc is not None and from_lsn > BASE_LSN:
            if self.prefix_crc(from_lsn) != prefix_crc:
                self._note_pull(replica, from_lsn, 0, diverged=True)
                self._diverged(replica, from_lsn, "prefix-crc-mismatch")
                return "diverged", None
        self._note_ack(replica, from_lsn)
        commit_lsn = store.commit_lsn
        if commit_lsn <= from_lsn and wait_s > 0:
            commit_lsn = store.wait_for_commit_lsn(
                from_lsn + 1, timeout=min(wait_s, self.max_wait_s)
            )
        if commit_lsn <= from_lsn:
            self._note_pull(replica, from_lsn, 0, diverged=False)
            return "empty", None
        to_lsn = min(commit_lsn, from_lsn + ceiling)
        payload = store.read_log_bytes(from_lsn, to_lsn)
        to_lsn = from_lsn + len(payload)
        frame = encode_frame(from_lsn, to_lsn, payload, epoch=self.epoch)
        self._note_pull(replica, from_lsn, len(payload), diverged=False)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_replication_batches_shipped_total",
                help="Framed log batches served to replicas",
            ).inc()
            tel.registry.counter(
                "repro_replication_bytes_shipped_total",
                help="Log payload bytes served to replicas",
            ).inc(len(payload))
        return "frame", frame

    def _count(self, name: str) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(name).inc()

    def _diverged(self, replica: str, from_lsn: int, reason: str) -> None:
        """Count + journal one divergence detection."""
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_replication_divergences_total"
            ).inc()
            tel.events.record(
                "replication.diverged",
                epoch=self.epoch,
                lsn=from_lsn,
                replica=replica,
                reason=reason,
            )

    def status(self) -> dict[str, Any]:
        store = self.store
        return {
            "commit_lsn": store.commit_lsn,
            "durable_lsn": store.durable_lsn,
            "replication_position": store.replication_position,
            "epoch": self.epoch,
            "replicas": {
                name: state.as_dict()
                for name, state in sorted(self.replicas().items())
            },
            "lag_bytes": self.lag_bytes(),
        }
