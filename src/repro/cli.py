"""Command-line shell for Prometheus databases.

Usage::

    python -m repro --db flora.plog --taxonomy           # interactive POOL
    python -m repro --db flora.plog -e "select count(s) from s in Specimen"
    python -m repro --db flora.plog --taxonomy --serve 8080

The shell speaks POOL plus a few dot-commands:

========================  =======================================
``.help``                 list commands
``.schema``               class inventory
``.class <Name>``         one class's attributes and relationships
``.classifications``      classification names and sizes
``.rules``                installed rules
``.indexes``              declared indexes
``.begin``                open a managed transaction (a real session)
``.commit`` / ``.abort``  transaction control; with an open ``.begin``
                          transaction these commit/abort *it* (a commit
                          lost to a concurrent writer reports the
                          conflict and suggests retrying), otherwise
                          they act on the implicit autocommit session
``.txn``                  show the open transaction's staged state
``.set <oid> <attr> <v>`` assign one attribute (staged when a ``.begin``
                          transaction is open, direct otherwise; the
                          value parses as JSON, falling back to string)
``.integrity``            run the deferred integrity checks
``.asof <lsn>`` / ``off`` time travel: evaluate subsequent POOL
                          queries at that commit LSN (MVCC snapshot);
                          ``.asof`` alone shows the current setting and
                          the retained LSN window
``.lsn``                  the newest queryable snapshot LSN
``.replicas``             replication topology: shipped replicas, or
                          this replica's apply status, or the status of
                          ``--replica NAME=URL`` remotes
``.lag``                  replication lag in bytes per replica
``.cluster``              scatter-gather cluster overview over the
                          ``--peer NAME=URL`` federation (role, epoch,
                          LSNs, lag, breaker, lease per endpoint);
                          ``.cluster metrics`` sums every peer's
                          counters instead
``.quit``                 leave
========================  =======================================

The ``--taxonomy`` flag registers the Prometheus taxonomic schema so an
existing taxonomic database file can be opened directly.

Replication: ``--replica-of URL`` opens the database read-only and
tails the primary at ``URL`` (log shipping); combined with ``--serve``
this node becomes a read replica.  ``--replica NAME=URL`` (repeatable)
points the shell/server at known read replicas for status display.

High availability: ``--ha`` arms a serving node with an
:class:`~repro.ha.node.HAController` (fenced promotion, the ``/ha/*``
API); ``--ha-supervisor --node NAME=URL ...`` runs the failover
coordinator instead of a shell — it probes liveness, renews the
primary's lease, and promotes the best replica when the primary dies.
See ``docs/HA.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO

from .classification import GraphView
from .core.instances import PObject
from .core.metamodel import describe_class
from .core.relationships import RelationshipInstance
from .concurrency import Session
from .engine import PrometheusDB
from .errors import ConflictError, PrometheusError


def format_value(value: object) -> str:
    """Render one query-result value for terminal output."""
    if isinstance(value, RelationshipInstance):
        return (
            f"<{value.pclass.name} #{value.oid} "
            f"{value.origin_oid}->{value.destination_oid}>"
        )
    if isinstance(value, PObject):
        head = ", ".join(
            f"{k}={v!r}"
            for k, v in list(value.attributes())[:4]
            if v is not None
        )
        return f"<{value.pclass.name} #{value.oid} {head}>"
    if isinstance(value, GraphView):
        return (
            f"<graph {value.name!r}: {value.node_count} nodes, "
            f"{value.edge_count} edges>"
        )
    if isinstance(value, dict):
        return "{" + ", ".join(
            f"{k}: {format_value(v)}" for k, v in value.items()
        ) + "}"
    return repr(value)


def format_result(result: object) -> str:
    if isinstance(result, list):
        if not result:
            return "(empty)"
        lines = [format_value(item) for item in result]
        lines.append(f"({len(result)} row{'s' if len(result) != 1 else ''})")
        return "\n".join(lines)
    return format_value(result)


class Shell:
    """Executes shell lines against one database."""

    def __init__(
        self,
        db: PrometheusDB,
        out: IO[str] = sys.stdout,
        shipper: object | None = None,
        replica_client: object | None = None,
        remotes: dict[str, object] | None = None,
        federation: object | None = None,
    ) -> None:
        self.db = db
        self.out = out
        self.running = True
        # Replication wiring for .replicas/.lag: a LogShipper when this
        # node ships, a ReplicationClient when it is a replica, and/or
        # named RemoteDatabase clients from --replica NAME=URL.
        self.shipper = shipper
        self.replica_client = replica_client
        self.remotes = remotes or {}
        # A Federation over --peer NAME=URL endpoints backs .cluster.
        self.federation = federation
        # Lazily-created session backing .begin/.commit/.abort — the
        # shell goes through the same session layer as HTTP clients.
        self._session: Session | None = None
        # Time-travel state: when set, POOL queries run at this LSN.
        self._as_of: int | None = None

    def emit(self, text: str) -> None:
        print(text, file=self.out)

    def execute(self, line: str) -> None:
        """Run one line: a dot-command or a POOL query."""
        line = line.strip()
        if not line or line.startswith("--"):
            return
        if line.startswith("."):
            self._command(line)
            return
        try:
            result = self.db.query(line, as_of=self._as_of)
        except PrometheusError as exc:
            self.emit(f"error: {exc}")
            return
        self.emit(format_result(result))

    # -- dot-commands ---------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split()
        name, args = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{name[1:]}", None)
        if handler is None:
            self.emit(f"unknown command {name!r} (try .help)")
            return
        handler(args)

    def _cmd_help(self, args: list[str]) -> None:
        self.emit(
            "commands: .help .schema .class <Name> .classifications "
            ".rules .indexes .begin .commit .abort .txn .set .integrity "
            ".asof [<lsn>|off] .lsn .shardmap .replicas .lag "
            ".cluster [metrics] .quit\n"
            ".begin opens a managed transaction; .commit/.abort then "
            "apply to it\n"
            ".asof <lsn> time-travels subsequent queries; .asof off "
            "returns to live reads\n"
            "anything else is evaluated as a POOL query"
        )

    def _cmd_schema(self, args: list[str]) -> None:
        for pclass in sorted(self.db.schema.classes(), key=lambda c: c.name):
            kind = "relationship" if pclass.is_relationship_class else "class"
            count = self.db.schema.count(pclass.name, polymorphic=False)
            flags = " (abstract)" if pclass.abstract else ""
            self.emit(f"{kind:13s} {pclass.name}{flags}: {count} instances")

    def _cmd_class(self, args: list[str]) -> None:
        if not args:
            self.emit("usage: .class <Name>")
            return
        try:
            info = describe_class(self.db.schema.get_class(args[0]))
        except PrometheusError as exc:
            self.emit(f"error: {exc}")
            return
        self.emit(f"class {info['name']} ({', '.join(info['superclasses'])})")
        for attr, detail in info["attributes"].items():
            required = " required" if detail["required"] else ""
            self.emit(f"  {attr}: {detail['type']}{required}")
        if "relationship" in info:
            rel = info["relationship"]
            self.emit(
                f"  {rel['origin']} -> {rel['destination']} "
                f"[{rel['kind']}]"
            )

    def _cmd_classifications(self, args: list[str]) -> None:
        manager = self.db.classifications
        if not len(manager):
            self.emit("(none)")
            return
        for classification in manager:
            self.emit(
                f"{classification.name}: {len(classification)} edges, "
                f"author={classification.author or '?'}"
            )

    def _cmd_rules(self, args: list[str]) -> None:
        rules = self.db.rules.rules()
        if not rules:
            self.emit("(none)")
        for rule in rules:
            self.emit(rule.describe())

    def _cmd_indexes(self, args: list[str]) -> None:
        indexes = self.db.indexes.indexes()
        if not indexes:
            self.emit("(none)")
        for index in indexes:
            self.emit(f"{index.name}: {len(index)} entries, {index.probes} probes")

    def _cmd_begin(self, args: list[str]) -> None:
        """Open a managed transaction on the shell's session."""
        if self._session is None:
            self._session = self.db.sessions.create()
        if self._session.in_txn:
            self.emit(
                "a transaction is already open (.commit or .abort it first)"
            )
            return
        txn = self._session.begin()
        self.emit(f"transaction {txn.txn_id} open (session-scoped)")

    def _cmd_txn(self, args: list[str]) -> None:
        if self._session is None or not self._session.in_txn:
            self.emit("no open transaction (implicit autocommit session)")
            return
        txn = self._session.txn
        self.emit(
            f"transaction {txn.txn_id}: {txn.op_count} staged op(s), "
            f"writes={sorted(txn.write_set)}, reads={sorted(txn.read_set)}"
        )

    def _cmd_set(self, args: list[str]) -> None:
        """Assign one attribute, staged in the open transaction if any."""
        if len(args) < 3:
            self.emit("usage: .set <oid> <attr> <value>")
            return
        try:
            oid = int(args[0])
        except ValueError:
            self.emit("error: oid must be an integer")
            return
        attr, raw = args[1], " ".join(args[2:])
        try:
            value = json.loads(raw)
        except ValueError:
            value = raw
        try:
            if self._session is not None and self._session.in_txn:
                self._session.txn.set(oid, attr, value)
                self.emit(f"staged {attr} on {oid} (commit with .commit)")
            else:
                self.db.schema.get_object(oid).set(attr, value)
                self.emit(f"set {attr} on {oid}")
        except PrometheusError as exc:
            self.emit(f"error: {exc}")

    def _cmd_commit(self, args: list[str]) -> None:
        if self._session is not None and self._session.in_txn:
            try:
                ts = self._session.commit()
            except ConflictError as exc:
                self.emit(f"conflict: {exc}")
                self.emit(
                    "the transaction was rolled back — .begin again "
                    "and retry your changes"
                )
                return
            except PrometheusError as exc:
                self.emit(f"error: {exc}")
                return
            self.emit(f"committed (ts {ts})")
            return
        try:
            self.db.commit()
            self.emit("committed")
        except PrometheusError as exc:
            self.emit(f"error: {exc}")

    def _cmd_abort(self, args: list[str]) -> None:
        if self._session is not None and self._session.in_txn:
            self._session.abort()
            self.emit("transaction aborted")
            return
        self.db.abort()
        self.emit("aborted")

    def _cmd_asof(self, args: list[str]) -> None:
        """Pin (or clear) the shell's time-travel LSN."""
        if not args:
            if self._as_of is None:
                self.emit("live reads (no as_of pinned)")
            else:
                self.emit(f"queries run as of lsn {self._as_of}")
            if self.db.mvcc is not None:
                self.emit(
                    f"retained window: lsn {self.db.mvcc.floor} .. "
                    f"{self.db.lsn}"
                )
            return
        if args[0].lower() == "off":
            self._as_of = None
            self.emit("back to live reads")
            return
        if self.db.mvcc is None:
            self.emit("error: this database was opened without MVCC")
            return
        try:
            lsn = int(args[0])
        except ValueError:
            self.emit("usage: .asof <lsn> | .asof off")
            return
        floor, head = self.db.mvcc.floor, self.db.lsn
        if lsn > head or lsn < floor:
            self.emit(
                f"error: lsn {lsn} outside the retained window "
                f"({floor} .. {head})"
            )
            return
        self._as_of = lsn
        self.emit(f"queries now run as of lsn {lsn} (.asof off to return)")

    def _cmd_lsn(self, args: list[str]) -> None:
        self.emit(str(self.db.lsn))

    def _cmd_shardmap(self, args: list[str]) -> None:
        """The shard map stamped into this node's log, if any."""
        store = self.db.store
        if store is None or not store.shard_map_epoch:
            self.emit("(unsharded: no shard-map stamp in the log)")
            return
        from .sharding import ShardMap

        try:
            shard_map = ShardMap.from_blob(store.shard_map_blob)
        except (PrometheusError, ValueError) as exc:
            self.emit(f"error: undecodable shard-map stamp: {exc}")
            return
        self.emit(
            f"epoch {shard_map.epoch} keyed on {shard_map.key_attr!r}, "
            f"{len(shard_map.shards)} shards"
        )
        for shard_range in shard_map.ranges:
            lo = "-inf" if shard_range.lo is None else repr(shard_range.lo)
            hi = "+inf" if shard_range.hi is None else repr(shard_range.hi)
            self.emit(f"  [{lo}, {hi}) -> {shard_range.shard}")

    def _cmd_integrity(self, args: list[str]) -> None:
        problems = self.db.check_integrity()
        if not problems:
            self.emit("ok")
        for problem in problems:
            self.emit(problem)

    def _cmd_replicas(self, args: list[str]) -> None:
        """Replication topology as seen from this node."""
        shown = False
        if self.replica_client is not None:
            status = self.replica_client.status()
            self.emit(
                f"replica {status['name']}: applied_lsn={status['applied_lsn']} "
                f"batches={status['batches_applied']} "
                f"resyncs={status['resyncs']} "
                f"running={status['running']}"
            )
            if status["last_error"]:
                self.emit(f"  last error: {status['last_error']}")
            shown = True
        if self.shipper is not None:
            replicas = self.shipper.replicas()
            self.emit(
                f"shipping from commit_lsn={self.shipper.store.commit_lsn}: "
                f"{len(replicas)} replica(s) seen"
            )
            for name in sorted(replicas):
                state = replicas[name].as_dict()
                self.emit(
                    f"  {name}: acked_lsn={state['acked_lsn']} "
                    f"pulls={state['pulls']} "
                    f"shipped={state['bytes_shipped']}B "
                    f"diverged={state['diverged']}"
                )
            shown = True
        for name in sorted(self.remotes):
            try:
                status = self.remotes[name].replication_status()
            except PrometheusError as exc:
                self.emit(f"  {name}: unreachable ({exc})")
                continue
            self.emit(
                f"  {name}: role={status.get('role')} "
                f"commit_lsn={status.get('commit_lsn')}"
            )
            shown = True
        if not shown:
            self.emit("(no replication configured)")

    def _cmd_lag(self, args: list[str]) -> None:
        """Replication lag in bytes, per replica."""
        shown = False
        if self.shipper is not None:
            for name, lag in sorted(self.shipper.lag_bytes().items()):
                self.emit(f"{name}: {lag} bytes behind")
                shown = True
            if not shown:
                self.emit("(no replica has pulled yet)")
                shown = True
        if self.replica_client is not None:
            status = self.replica_client.status()
            self.emit(
                f"this replica: applied_lsn={status['applied_lsn']}, "
                f"position={status['replication_position']}"
            )
            shown = True
        local = self.db.store.commit_lsn if self.db.store is not None else None
        for name in sorted(self.remotes):
            try:
                status = self.remotes[name].replication_status()
            except PrometheusError as exc:
                self.emit(f"{name}: unreachable ({exc})")
                shown = True
                continue
            remote_lsn = status.get("commit_lsn")
            suffix = ""
            if local is not None and remote_lsn is not None:
                suffix = f" ({max(0, local - int(remote_lsn))} bytes behind us)"
            self.emit(f"{name}: commit_lsn={remote_lsn}{suffix}")
            shown = True
        if not shown:
            self.emit("(no replication configured)")

    def _cmd_cluster(self, args: list[str]) -> None:
        """Scatter-gather cluster view over the --peer federation."""
        if self.federation is None:
            self.emit("(no federation peers; start with --peer NAME=URL)")
            return
        if args and args[0] == "metrics":
            merged = self.federation.cluster_metrics()
            for series, value in sorted(merged["totals"].items()):
                self.emit(f"{series} {value:g}")
            for name, error in sorted(merged["errors"].items()):
                self.emit(f"{name}: unreachable ({error})")
            if merged["partial"]:
                self.emit("(partial: some endpoints did not answer)")
            return
        overview = self.federation.cluster_overview()
        for name, row in sorted(overview["nodes"].items()):
            if "error" in row:
                self.emit(
                    f"{name}: unreachable ({row['error']}) "
                    f"breaker={row['breaker']}"
                )
                continue
            line = (
                f"{name}: role={row.get('role')} epoch={row.get('epoch')} "
                f"commit_lsn={row.get('commit_lsn')} "
                f"applied_lsn={row.get('applied_lsn')} "
                f"lag={row.get('lag_bytes')} breaker={row['breaker']}"
            )
            ha = row.get("ha")
            if ha is not None:
                line += (
                    f" fenced={ha.get('fenced')} "
                    f"writes={ha.get('writes_allowed')}"
                )
                if ha.get("lease_remaining_s") is not None:
                    line += f" lease={ha['lease_remaining_s']}s"
            self.emit(line)
        summary = overview["summary"]
        primaries = ",".join(summary["primaries"]) or "(none)"
        self.emit(
            f"summary: {summary['endpoints']} endpoint(s), "
            f"primary={primaries}, max_epoch={summary['max_epoch']}, "
            f"total_lag={summary['total_lag_bytes']:g}B"
            + (", PARTIAL" if summary["partial"] else "")
        )

    def _cmd_quit(self, args: list[str]) -> None:
        self.running = False


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prometheus database shell (POOL queries + dot-commands)",
    )
    parser.add_argument(
        "--db", metavar="PATH", default=None,
        help="database log file (omit for an in-memory session)",
    )
    parser.add_argument(
        "--taxonomy", action="store_true",
        help="register the Prometheus taxonomic schema before loading",
    )
    parser.add_argument(
        "--schema", metavar="ODL_FILE", default=None,
        help="register classes from a Prometheus ODL file before loading",
    )
    parser.add_argument(
        "--execute", "-e", metavar="QUERY", action="append", default=[],
        help="run one line and exit (repeatable)",
    )
    parser.add_argument(
        "--serve", metavar="PORT", type=int, default=None,
        help="start the HTTP access layer instead of a shell "
        "(asyncio front end: keep-alive, pipelining, backpressure)",
    )
    parser.add_argument(
        "--serve-threaded", action="store_true",
        help="serve with the legacy thread-per-connection front end "
        "instead of the asyncio one",
    )
    parser.add_argument(
        "--serve-workers", metavar="N", type=int, default=8,
        help="worker threads bridging the async front end to the "
        "engine (default 8)",
    )
    parser.add_argument(
        "--replica-of", metavar="URL", default=None,
        help="open read-only and tail the primary at URL (log shipping)",
    )
    parser.add_argument(
        "--replica", metavar="NAME=URL", action="append", default=[],
        help="register a known read replica for .replicas/.lag "
        "(repeatable)",
    )
    parser.add_argument(
        "--replica-name", metavar="NAME", default="replica",
        help="this replica's name, reported to the primary on each pull",
    )
    parser.add_argument(
        "--peer", metavar="NAME=URL", action="append", default=[],
        help="a federation peer for .cluster and the /cluster/* routes "
        "(repeatable; include this node's own URL for a full view)",
    )
    parser.add_argument(
        "--node-name", metavar="NAME", default=None,
        help="this node's name, stamped on trace spans and journal "
        "events (default: --replica-name when replicating, else "
        "'primary')",
    )
    ha = parser.add_argument_group(
        "high availability (repro.ha)",
        "--ha arms a serving node with an HA controller (fencing, "
        "promote/demote API); --ha-supervisor runs the failover "
        "coordinator over --node NAME=URL endpoints instead of a shell",
    )
    ha.add_argument(
        "--ha", action="store_true",
        help="enable the HA controller on this serving node",
    )
    ha.add_argument(
        "--ha-supervisor", action="store_true",
        help="run the failover coordinator (needs --node, no --db)",
    )
    ha.add_argument(
        "--node", metavar="NAME=URL", action="append", default=[],
        help="a supervised cluster node (repeatable; supervisor mode)",
    )
    ha.add_argument(
        "--primary", metavar="NAME", default=None,
        help="which --node is the current primary (default: the first)",
    )
    ha.add_argument(
        "--ha-interval", metavar="SECONDS", type=float, default=1.0,
        help="supervisor probe interval (default 1.0)",
    )
    ha.add_argument(
        "--ha-phi-threshold", metavar="PHI", type=float, default=8.0,
        help="phi-accrual suspicion threshold (default 8.0)",
    )
    ha.add_argument(
        "--ha-lease-ttl", metavar="SECONDS", type=float, default=None,
        help="write-lease TTL; on a node this arms lease fencing, on "
        "the supervisor it sets the granted TTL (default 3.0 there)",
    )
    return parser


def open_database(args: argparse.Namespace) -> PrometheusDB:
    if args.replica_of and not args.db:
        raise PrometheusError(
            "--replica-of needs --db: a replica keeps a local log copy"
        )
    db = PrometheusDB(args.db, read_only=bool(args.replica_of))
    if args.taxonomy:
        from .taxonomy import define_taxonomy_schema

        define_taxonomy_schema(db.schema)
    if args.schema:
        from .core.odl import define_schema

        with open(args.schema, encoding="utf-8") as handle:
            define_schema(db.schema, handle.read())
    db.load()
    return db


def run_supervisor(args: argparse.Namespace, out: IO[str]) -> int:
    """``--ha-supervisor``: probe, renew, fail over.  No database."""
    from .ha import FailoverCoordinator, http_node

    nodes = []
    for spec in args.node:
        name, _, url = spec.partition("=")
        if not url:
            print(f"error: --node wants NAME=URL, got {spec!r}",
                  file=sys.stderr)
            return 1
        nodes.append(http_node(name, url))
    if not nodes:
        print("error: --ha-supervisor needs at least one --node NAME=URL",
              file=sys.stderr)
        return 1
    primary = args.primary or nodes[0].name
    try:
        coordinator = FailoverCoordinator(
            nodes,
            primary,
            interval_s=args.ha_interval,
            phi_threshold=args.ha_phi_threshold,
            lease_ttl_s=(
                args.ha_lease_ttl if args.ha_lease_ttl is not None else 3.0
            ),
        )
    except PrometheusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"supervising {len(nodes)} node(s); primary={primary} "
        "(Ctrl-C to stop)",
        file=out,
        flush=True,
    )
    coordinator.start()
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
        for report in coordinator.failovers:
            print(f"failover: {report.as_dict()}", file=out, flush=True)
    return 0


def main(argv: list[str] | None = None, out: IO[str] = sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.ha_supervisor:
        return run_supervisor(args, out)
    try:
        db = open_database(args)
    except PrometheusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    node_name = args.node_name or (
        args.replica_name if args.replica_of else "primary"
    )
    if db.telemetry.enabled:
        db.telemetry.set_node(node_name)

    shipper = None
    replica_client = None
    remotes: dict[str, object] = {}
    if args.replica_of:
        from .replication import (
            HttpPullTransport,
            ReplicaApplier,
            ReplicationClient,
        )

        replica_client = ReplicationClient(
            ReplicaApplier(db),
            HttpPullTransport(args.replica_of),
            name=args.replica_name,
        )
        replica_client.start()
        print(f"replicating from {args.replica_of}", file=out, flush=True)
    elif db.store is not None:
        # Any node with a persistent log can serve pulls; the shipper
        # costs nothing until a replica asks.
        from .replication import LogShipper

        shipper = LogShipper(db.store)
        if db.telemetry.enabled:
            shipper.attach_telemetry(db.telemetry)
    if args.replica:
        from .engine.federation import RemoteDatabase

        for spec in args.replica:
            name, _, url = spec.partition("=")
            if not url:
                print(f"error: --replica wants NAME=URL, got {spec!r}",
                      file=sys.stderr)
                return 1
            remotes[name] = RemoteDatabase(url)

    federation = None
    if args.peer:
        from .engine.federation import Federation

        federation = Federation(telemetry=db.telemetry)
        for spec in args.peer:
            name, _, url = spec.partition("=")
            if not url:
                print(f"error: --peer wants NAME=URL, got {spec!r}",
                      file=sys.stderr)
                return 1
            federation.add_node(name, url)

    ha = None
    if args.ha:
        if db.store is None:
            print("error: --ha needs --db (fencing lives in the log)",
                  file=sys.stderr)
            return 1
        from .ha import HAController
        from .replication import HttpPullTransport

        ha = HAController(
            db,
            name=args.replica_name,
            shipper=shipper,
            replica_client=replica_client,
            primary_url=args.replica_of,
            lease_ttl_s=args.ha_lease_ttl,
            make_transport=HttpPullTransport,
        )

    shell = Shell(
        db,
        out=out,
        shipper=shipper,
        replica_client=replica_client,
        remotes=remotes,
        federation=federation,
    )
    try:
        if args.serve is not None:
            if args.serve_threaded:
                from .engine import PrometheusServer

                server = PrometheusServer(
                    db,
                    port=args.serve,
                    shipper=shipper,
                    replica_client=replica_client,
                    primary_url=args.replica_of,
                    ha=ha,
                    federation=federation,
                )
            else:
                from .engine import AsyncPrometheusServer

                server = AsyncPrometheusServer(
                    db,
                    port=args.serve,
                    shipper=shipper,
                    replica_client=replica_client,
                    primary_url=args.replica_of,
                    ha=ha,
                    federation=federation,
                    workers=args.serve_workers,
                )
            server.start()
            print(f"serving on {server.url} (Ctrl-C to stop)", file=out, flush=True)
            try:
                import time

                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
            return 0
        if args.execute:
            for line in args.execute:
                shell.execute(line)
            return 0
        print("Prometheus shell — .help for commands, .quit to leave", file=out)
        while shell.running:
            try:
                line = input("pool> ")
            except (EOFError, KeyboardInterrupt):
                print("", file=out)
                break
            shell.execute(line)
        return 0
    finally:
        if ha is not None and ha.replica_client is not None:
            ha.replica_client.stop()
        elif replica_client is not None:
            replica_client.stop()
        db.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
