"""Comparing classifications and discovering synonyms (thesis §2.1.3).

Two taxa from different classifications are *synonyms* when their
circumscriptions — the sets of leaf objects (specimens) reachable below
them — overlap.  The overlap is **full** when the sets are equal,
**pro parte** when it is partial.  Synonyms sharing the same taxonomic
type are **homotypic**, otherwise **heterotypic**.

This module is deliberately generic: it works on any classification of
any objects, taking the "leaf semantics" as parameters.  The taxonomy
substrate instantiates it with specimens and type designations
(:mod:`repro.taxonomy.synonymy`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..core.instances import PObject
from .classification import Classification


class OverlapKind(enum.Enum):
    """Degree of circumscription overlap between two groups."""

    NONE = "none"
    PARTIAL = "pro parte"
    FULL = "full"
    CONTAINS = "contains"      # a's circumscription strictly includes b's
    CONTAINED = "contained"    # a's circumscription strictly inside b's


@dataclass(frozen=True)
class SynonymPair:
    """One discovered synonym relation between two group nodes."""

    taxon_a: int
    taxon_b: int
    kind: OverlapKind
    shared: frozenset[int]
    only_a: frozenset[int]
    only_b: frozenset[int]
    homotypic: bool | None = None

    @property
    def jaccard(self) -> float:
        union = len(self.shared) + len(self.only_a) + len(self.only_b)
        return len(self.shared) / union if union else 0.0


def circumscription(
    classification: Classification,
    node: PObject | int,
    is_leaf: Callable[[PObject], bool] | None = None,
    canonical: Callable[[int], int] | None = None,
) -> frozenset[int]:
    """The set of leaf OIDs reachable at any depth below ``node``.

    Args:
        classification: context in which to recurse.
        node: the group whose circumscription is wanted.
        is_leaf: predicate selecting circumscription members; by default,
            nodes with no children in this classification.
        canonical: optional OID canonicaliser; pass the synonym registry's
            ``canonical`` so instance synonyms (§4.5) count as one
            specimen.
    """
    schema = classification.schema
    oid = node.oid if isinstance(node, PObject) else node
    start = schema.get_object(oid) if schema.has_object(oid) else None
    leaves: set[int] = set()

    def leafp(obj: PObject) -> bool:
        if is_leaf is not None:
            return is_leaf(obj)
        return not classification.children(obj)

    if start is not None and leafp(start):
        leaves.add(canonical(oid) if canonical else oid)
    for descendant in classification.descendants(oid):
        if leafp(descendant):
            found = descendant.oid
            leaves.add(canonical(found) if canonical else found)
    return frozenset(leaves)


def classify_overlap(
    set_a: frozenset[int], set_b: frozenset[int]
) -> OverlapKind:
    """Categorise the overlap between two circumscriptions."""
    if not set_a or not set_b:
        return OverlapKind.NONE
    shared = set_a & set_b
    if not shared:
        return OverlapKind.NONE
    if set_a == set_b:
        return OverlapKind.FULL
    if shared == set_b:
        return OverlapKind.CONTAINS
    if shared == set_a:
        return OverlapKind.CONTAINED
    return OverlapKind.PARTIAL


@dataclass
class ComparisonReport:
    """Result of comparing two classifications."""

    classification_a: str
    classification_b: str
    shared_leaf_oids: frozenset[int]
    synonym_pairs: list[SynonymPair]

    def full_synonyms(self) -> list[SynonymPair]:
        return [p for p in self.synonym_pairs if p.kind is OverlapKind.FULL]

    def pro_parte_synonyms(self) -> list[SynonymPair]:
        return [
            p
            for p in self.synonym_pairs
            if p.kind
            in (OverlapKind.PARTIAL, OverlapKind.CONTAINS, OverlapKind.CONTAINED)
        ]

    def misplacement_suspects(self, threshold: int = 1) -> list[SynonymPair]:
        """Pairs overlapping by <= ``threshold`` specimens — the thesis
        notes a single-specimen overlap "may indicate a misplaced
        specimen or confusion in the groups" (§2.3)."""
        return [
            p
            for p in self.synonym_pairs
            if p.kind is OverlapKind.PARTIAL and len(p.shared) <= threshold
        ]


def compare_classifications(
    a: Classification,
    b: Classification,
    is_leaf: Callable[[PObject], bool] | None = None,
    is_group: Callable[[PObject], bool] | None = None,
    type_of: Callable[[PObject], int | None] | None = None,
    canonical: Callable[[int], int] | None = None,
) -> ComparisonReport:
    """Discover synonym pairs between the groups of two classifications.

    Every non-leaf node of ``a`` is compared, by circumscription, with
    every non-leaf node of ``b``.  ``is_group`` can narrow which nodes
    count as groups (e.g. only Circumscription Taxa).  ``type_of`` maps a
    group to the OID of its taxonomic type so pairs can be flagged
    homotypic/heterotypic.
    """
    schema = a.schema

    def groups(c: Classification) -> list[PObject]:
        out = []
        for node in c.nodes():
            if is_leaf is not None and is_leaf(node):
                continue
            if is_leaf is None and not c.children(node):
                continue
            if is_group is not None and not is_group(node):
                continue
            out.append(node)
        return out

    circ_a = {
        n.oid: circumscription(a, n, is_leaf=is_leaf, canonical=canonical)
        for n in groups(a)
    }
    circ_b = {
        n.oid: circumscription(b, n, is_leaf=is_leaf, canonical=canonical)
        for n in groups(b)
    }
    pairs: list[SynonymPair] = []
    for oid_a, set_a in sorted(circ_a.items()):
        for oid_b, set_b in sorted(circ_b.items()):
            kind = classify_overlap(set_a, set_b)
            if kind is OverlapKind.NONE:
                continue
            homotypic: bool | None = None
            if type_of is not None:
                ta = type_of(schema.get_object(oid_a))
                tb = type_of(schema.get_object(oid_b))
                if ta is not None and tb is not None:
                    if canonical is not None:
                        ta, tb = canonical(ta), canonical(tb)
                    homotypic = ta == tb
            pairs.append(
                SynonymPair(
                    taxon_a=oid_a,
                    taxon_b=oid_b,
                    kind=kind,
                    shared=set_a & set_b,
                    only_a=set_a - set_b,
                    only_b=set_b - set_a,
                    homotypic=homotypic,
                )
            )
    all_a = frozenset().union(*circ_a.values()) if circ_a else frozenset()
    all_b = frozenset().union(*circ_b.values()) if circ_b else frozenset()
    return ComparisonReport(
        classification_a=a.name,
        classification_b=b.name,
        shared_leaf_oids=all_a & all_b,
        synonym_pairs=pairs,
    )
