"""Multiple overlapping classifications over a Prometheus schema.

* :class:`Classification` / :class:`ClassificationManager` — named DAGs of
  relationship instances, with persistent membership (§4.6.1).
* :class:`Context` — classify/query in context (§4.6.2).
* graph operations — extraction, whole-classification copy, subtree moves
  (requirement 1).
* comparison — circumscription overlap and synonym discovery (§2.1.3).
* :class:`TraceLog` — traceability of classification acts (requirement 4).
"""

from .classification import Classification, ClassificationManager
from .comparison import (
    ComparisonReport,
    OverlapKind,
    SynonymPair,
    circumscription,
    classify_overlap,
    compare_classifications,
)
from .context import Context
from .graph import (
    GraphView,
    common_subgraph,
    copy_classification,
    extract_graph,
    move_subtree,
)
from .tracing import TraceEntry, TraceLog

__all__ = [
    "Classification",
    "ClassificationManager",
    "ComparisonReport",
    "Context",
    "GraphView",
    "OverlapKind",
    "SynonymPair",
    "TraceEntry",
    "TraceLog",
    "circumscription",
    "classify_overlap",
    "common_subgraph",
    "compare_classifications",
    "copy_classification",
    "extract_graph",
    "move_subtree",
]
