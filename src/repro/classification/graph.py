"""Graph operations over classifications: extraction, copy, views.

The thesis's requirement 1 asks that classifications can be "seen as an
entity and manipulated as a whole" — copied to start a revision, extracted
as sub-graphs, exported for analysis.  :class:`GraphView` is the detached
value object those operations produce; it can also be converted to a
:mod:`networkx` digraph for external analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core.instances import PObject
from ..core.relationships import RelationshipInstance
from ..errors import ClassificationError
from .classification import Classification, ClassificationManager

if TYPE_CHECKING:  # pragma: no cover
    import networkx


@dataclass
class GraphView:
    """A detached snapshot of (part of) a classification graph.

    ``nodes`` maps OIDs to attribute snapshots; ``edges`` is a list of
    (parent_oid, child_oid, relationship_class, attribute snapshot).
    """

    name: str
    nodes: dict[int, dict[str, Any]] = field(default_factory=dict)
    edges: list[tuple[int, int, str, dict[str, Any]]] = field(
        default_factory=list
    )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def children_of(self, oid: int) -> list[int]:
        return sorted(c for p, c, _, _ in self.edges if p == oid)

    def parents_of(self, oid: int) -> list[int]:
        return sorted(p for p, c, _, _ in self.edges if c == oid)

    def roots(self) -> list[int]:
        with_parent = {c for _, c, _, _ in self.edges}
        return sorted(set(self.nodes) - with_parent)

    def leaves(self) -> list[int]:
        with_children = {p for p, _, _, _ in self.edges}
        return sorted(set(self.nodes) - with_children)

    def to_networkx(self) -> "networkx.DiGraph":
        """Export as a networkx directed graph (lazy import)."""
        import networkx

        graph = networkx.DiGraph(name=self.name)
        for oid, attrs in self.nodes.items():
            graph.add_node(oid, **{k: v for k, v in attrs.items()})
        for parent, child, relname, attrs in self.edges:
            graph.add_edge(parent, child, relationship=relname, **attrs)
        return graph

    def is_acyclic(self) -> bool:
        adjacency: dict[int, list[int]] = {}
        for parent, child, _, _ in self.edges:
            adjacency.setdefault(parent, []).append(child)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[int, int] = {}

        def visit(node: int) -> bool:
            colour[node] = GREY
            for nxt in adjacency.get(node, ()):
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    return False
                if state == WHITE and not visit(nxt):
                    return False
            colour[node] = BLACK
            return True

        return all(
            visit(node)
            for node in list(self.nodes)
            if colour.get(node, WHITE) == WHITE
        )


def _snapshot(obj: PObject) -> dict[str, Any]:
    return {"class": obj.pclass.name, **obj.to_dict()}


def extract_graph(
    classification: Classification,
    start: PObject | int | None = None,
    max_depth: int | None = None,
) -> GraphView:
    """Extract a classification (or the subtree under ``start``) as a view.

    This is POOL's ``extract graph`` primitive (§5.1.1.3) in library form:
    the result is a detached, parameterisable graph value.
    """
    schema = classification.schema
    view = GraphView(name=classification.name)
    if start is None:
        for edge in classification.edges():
            _add_edge_to_view(view, edge, schema)
        return view
    start_oid = start.oid if isinstance(start, PObject) else start
    if schema.has_object(start_oid):
        view.nodes[start_oid] = _snapshot(schema.get_object(start_oid))
    frontier = [(start_oid, 0)]
    seen = {start_oid}
    edges_by_parent: dict[int, list[RelationshipInstance]] = {}
    for edge in classification.edges():
        edges_by_parent.setdefault(edge.origin_oid, []).append(edge)
    while frontier:
        oid, depth = frontier.pop()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge in edges_by_parent.get(oid, ()):
            _add_edge_to_view(view, edge, schema)
            child = edge.destination_oid
            if child not in seen:
                seen.add(child)
                frontier.append((child, depth + 1))
    return view


def _add_edge_to_view(view: GraphView, edge: RelationshipInstance, schema: Any) -> None:
    for endpoint in (edge.origin_oid, edge.destination_oid):
        if endpoint not in view.nodes and schema.has_object(endpoint):
            view.nodes[endpoint] = _snapshot(schema.get_object(endpoint))
    view.edges.append(
        (edge.origin_oid, edge.destination_oid, edge.pclass.name, edge.to_dict())
    )


def copy_classification(
    manager: ClassificationManager,
    source: Classification | str,
    new_name: str,
    copy_nodes: bool = False,
    node_copier: Callable[[PObject], PObject] | None = None,
    author: str = "",
    description: str = "",
) -> Classification:
    """Clone a classification for a revision / what-if scenario (§7.1.4).

    Two modes:

    * ``copy_nodes=False`` (default): the new classification gets *new
      edges* between the *same node objects* — the classifications then
      overlap completely, and the copy can be restructured freely without
      touching the original's edges.
    * ``copy_nodes=True``: interior nodes are duplicated too (leaves are
      always shared — specimens are the objective fixed points, §2.1.3).
      ``node_copier`` may override how a node is duplicated.
    """
    if isinstance(source, str):
        source = manager.get(source)
    schema = manager.schema
    target = manager.create(
        new_name,
        author=author or source.author,
        description=description or f"copy of {source.name}",
    )
    mapping: dict[int, PObject] = {}
    if copy_nodes:
        leaf_oids = {obj.oid for obj in source.leaves()}
        for node in source.nodes():
            if node.oid in leaf_oids:
                mapping[node.oid] = node
            elif node_copier is not None:
                mapping[node.oid] = node_copier(node)
            else:
                mapping[node.oid] = schema.create(
                    node.pclass.name, **node.to_dict()
                )
    try:
        for edge in source.edges():
            parent = (
                mapping.get(edge.origin_oid)
                or schema.get_object(edge.origin_oid)
            )
            child = (
                mapping.get(edge.destination_oid)
                or schema.get_object(edge.destination_oid)
            )
            target.place(edge.pclass.name, parent, child, **edge.to_dict())
    except Exception:
        manager.drop(new_name, delete_edges=True)
        raise
    return target


def move_subtree(
    classification: Classification,
    node: PObject,
    new_parent: PObject,
    relationship: str,
    **attrs: Any,
) -> RelationshipInstance:
    """Re-place ``node`` (with its whole subtree) under ``new_parent``.

    The existing parent edges of ``node`` within this classification are
    removed from the classification (and deleted when no other
    classification uses them); a fresh placement edge is created.  This is
    the core operation of a taxonomic revision.
    """
    if node.oid == new_parent.oid:
        raise ClassificationError("cannot place a node under itself")
    if any(a.oid == node.oid for a in classification.ancestors(new_parent)):
        raise ClassificationError(
            "new parent lies inside the subtree being moved"
        )
    schema = classification.schema
    manager = _manager_of(classification)
    for edge in list(classification.edges()):
        if edge.destination_oid == node.oid:
            classification.remove_edge(edge)
            if manager is None or manager.classifications_of_edge(edge) == []:
                schema.unrelate(edge)
    return classification.place(relationship, new_parent, node, **attrs)


def _manager_of(classification: Classification) -> ClassificationManager | None:
    manager = getattr(classification, "_manager", None)
    return manager if isinstance(manager, ClassificationManager) else None


def common_subgraph(
    a: Classification, b: Classification
) -> GraphView:
    """Edges structurally present in both classifications.

    Two edges are considered the same when they connect the same parent
    and child OIDs through the same relationship class — even if they are
    distinct edge instances (copied classifications).
    """
    def key(edge: RelationshipInstance) -> tuple[int, int, str]:
        return (edge.origin_oid, edge.destination_oid, edge.pclass.name)

    keys_b = {key(e) for e in b.edges()}
    view = GraphView(name=f"{a.name} ∩ {b.name}")
    for edge in a.edges():
        if key(edge) in keys_b:
            _add_edge_to_view(view, edge, a.schema)
    return view
