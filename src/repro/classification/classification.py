"""Classifications as sets of relationship instances (thesis §4.6).

A *classification* is a named, attributed set of relationship instances
(edges).  Because membership is a property of the classification, not of
the classified objects, the same objects — and even the same edges — can
participate in several classifications at once: this is precisely how
Prometheus represents *multiple overlapping classifications*.

Each classification constrains its edge set to a directed acyclic graph
(taxonomic hierarchies are DAGs of placements; a placement cycle would be
meaningless).  Edges are created normally through
:meth:`~repro.core.schema.Schema.relate` and then attached, or created and
attached in one step with :meth:`Classification.place`.

Membership is owned by the :class:`ClassificationManager`, which persists
it in the schema's metadata record, so classifications survive reopening
the database.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..core.instances import PObject
from ..core.relationships import RelationshipInstance
from ..errors import ClassificationError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schema import Schema

_EXTRAS_KEY = "classifications"


class Classification:
    """One classification: a named DAG of relationship instances.

    Attributes:
        name: unique name within the manager (e.g. ``"Tutin 1968"``).
        author / year / publication / description: provenance metadata —
            the traceability the thesis requires of published
            classifications (§2.1.1).
    """

    def __init__(
        self,
        manager: "ClassificationManager",
        name: str,
        author: str = "",
        year: int | None = None,
        publication: str = "",
        description: str = "",
    ) -> None:
        self._manager = manager
        self.name = name
        self.author = author
        self.year = year
        self.publication = publication
        self.description = description
        self._edge_oids: set[int] = set()
        # Adjacency caches: parent oid -> child oids and inverse.
        self._children: dict[int, set[int]] = {}
        self._parents: dict[int, set[int]] = {}

    # -- membership ------------------------------------------------------

    @property
    def schema(self) -> "Schema":
        return self._manager.schema

    def __len__(self) -> int:
        return len(self._edge_oids)

    def __contains__(self, edge: RelationshipInstance | int) -> bool:
        oid = edge.oid if isinstance(edge, RelationshipInstance) else edge
        return oid in self._edge_oids

    def add_edge(self, edge: RelationshipInstance) -> None:
        """Attach an existing relationship instance to this classification.

        Raises:
            ClassificationError: if the edge would create a cycle.
        """
        if edge.oid in self._edge_oids:
            return
        if edge.deleted:
            raise ClassificationError(
                f"cannot classify with deleted edge {edge.oid}"
            )
        if self._would_cycle(edge.origin_oid, edge.destination_oid):
            raise ClassificationError(
                f"classification {self.name!r}: edge "
                f"{edge.origin_oid}->{edge.destination_oid} creates a cycle"
            )
        self._edge_oids.add(edge.oid)
        self._children.setdefault(edge.origin_oid, set()).add(
            edge.destination_oid
        )
        self._parents.setdefault(edge.destination_oid, set()).add(
            edge.origin_oid
        )
        self._manager._note_membership(self.name, edge.oid, added=True)

    def remove_edge(self, edge: RelationshipInstance | int) -> None:
        """Detach an edge from this classification (the edge survives)."""
        oid = edge.oid if isinstance(edge, RelationshipInstance) else edge
        if oid not in self._edge_oids:
            return
        self._edge_oids.discard(oid)
        self._rebuild_adjacency()
        self._manager._note_membership(self.name, oid, added=False)

    def place(
        self,
        relationship: str,
        parent: PObject,
        child: PObject,
        **attrs: Any,
    ) -> RelationshipInstance:
        """Create an edge and attach it in one step.

        Traceability: pass a ``motivation`` attribute if the relationship
        class declares one — the thesis's requirement 4.
        """
        if self._would_cycle(parent.oid, child.oid):
            raise ClassificationError(
                f"classification {self.name!r}: placing {child.oid} under "
                f"{parent.oid} creates a cycle"
            )
        edge = self.schema.relate(relationship, parent, child, **attrs)
        try:
            self.add_edge(edge)
        except ClassificationError:
            self.schema.unrelate(edge)
            raise
        return edge

    def _rebuild_adjacency(self) -> None:
        self._children.clear()
        self._parents.clear()
        for edge in self.edges():
            self._children.setdefault(edge.origin_oid, set()).add(
                edge.destination_oid
            )
            self._parents.setdefault(edge.destination_oid, set()).add(
                edge.origin_oid
            )

    def _would_cycle(self, parent_oid: int, child_oid: int) -> bool:
        """True if adding parent→child closes a directed cycle."""
        if parent_oid == child_oid:
            return True
        # Is parent reachable from child through existing edges?
        stack = [child_oid]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == parent_oid:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children.get(node, ()))
        return False

    # -- graph access ------------------------------------------------------

    def edges(self) -> list[RelationshipInstance]:
        """The live edges of this classification (dead edges pruned)."""
        result: list[RelationshipInstance] = []
        stale: list[int] = []
        for oid in sorted(self._edge_oids):
            if self.schema.has_object(oid):
                obj = self.schema.get_object(oid)
                assert isinstance(obj, RelationshipInstance)
                result.append(obj)
            else:
                stale.append(oid)
        for oid in stale:
            self._edge_oids.discard(oid)
            self._manager._note_membership(self.name, oid, added=False)
        if stale:
            self._rebuild_adjacency()
        return result

    def node_oids(self) -> set[int]:
        """OIDs of every object appearing as an endpoint."""
        oids: set[int] = set()
        for edge in self.edges():
            oids.add(edge.origin_oid)
            oids.add(edge.destination_oid)
        return oids

    def nodes(self) -> list[PObject]:
        return [
            self.schema.get_object(oid)
            for oid in sorted(self.node_oids())
            if self.schema.has_object(oid)
        ]

    def children(self, node: PObject | int) -> list[PObject]:
        """Direct children of ``node`` within this classification."""
        oid = node.oid if isinstance(node, PObject) else node
        return [
            self.schema.get_object(c)
            for c in sorted(self._children.get(oid, ()))
            if self.schema.has_object(c)
        ]

    def parents(self, node: PObject | int) -> list[PObject]:
        """Direct parents of ``node`` within this classification."""
        oid = node.oid if isinstance(node, PObject) else node
        return [
            self.schema.get_object(p)
            for p in sorted(self._parents.get(oid, ()))
            if self.schema.has_object(p)
        ]

    def roots(self) -> list[PObject]:
        """Nodes with no parent in this classification."""
        oids = self.node_oids()
        return [
            self.schema.get_object(oid)
            for oid in sorted(oids)
            if not self._parents.get(oid)
        ]

    def leaves(self) -> list[PObject]:
        """Nodes with no children in this classification."""
        oids = self.node_oids()
        return [
            self.schema.get_object(oid)
            for oid in sorted(oids)
            if not self._children.get(oid)
        ]

    def descendants(self, node: PObject | int) -> Iterator[PObject]:
        """All nodes strictly below ``node``, depth-first, deduplicated."""
        start = node.oid if isinstance(node, PObject) else node
        stack = sorted(self._children.get(start, ()), reverse=True)
        seen: set[int] = set()
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            if self.schema.has_object(oid):
                yield self.schema.get_object(oid)
            stack.extend(sorted(self._children.get(oid, ()), reverse=True))

    def ancestors(self, node: PObject | int) -> Iterator[PObject]:
        """All nodes strictly above ``node``."""
        start = node.oid if isinstance(node, PObject) else node
        stack = sorted(self._parents.get(start, ()), reverse=True)
        seen: set[int] = set()
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            if self.schema.has_object(oid):
                yield self.schema.get_object(oid)
            stack.extend(sorted(self._parents.get(oid, ()), reverse=True))

    def depth(self, node: PObject | int) -> int:
        """Longest path length from any root down to ``node``."""
        oid = node.oid if isinstance(node, PObject) else node
        cache: dict[int, int] = {}

        def longest(n: int) -> int:
            if n in cache:
                return cache[n]
            parents = self._parents.get(n, ())
            value = 0 if not parents else 1 + max(longest(p) for p in parents)
            cache[n] = value
            return value

        return longest(oid)

    def is_tree(self) -> bool:
        """True when every node has at most one parent (a strict hierarchy)."""
        return all(len(ps) <= 1 for ps in self._parents.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Classification {self.name!r}: {len(self)} edges>"


class ClassificationManager:
    """Registry of all classifications over one schema.

    Responsible for name uniqueness, persistence (through the schema's
    metadata extras) and cross-classification queries such as "which
    classifications use this edge?" — the basis of overlap analysis.
    """

    def __init__(self, schema: "Schema") -> None:
        self.schema = schema
        self._classifications: dict[str, Classification] = {}
        self._load()

    # -- lifecycle ----------------------------------------------------------

    def create(
        self,
        name: str,
        author: str = "",
        year: int | None = None,
        publication: str = "",
        description: str = "",
    ) -> Classification:
        if name in self._classifications:
            raise ClassificationError(f"classification {name!r} already exists")
        classification = Classification(
            self,
            name,
            author=author,
            year=year,
            publication=publication,
            description=description,
        )
        self._classifications[name] = classification
        self._save()
        return classification

    def get(self, name: str) -> Classification:
        try:
            return self._classifications[name]
        except KeyError:
            raise ClassificationError(f"unknown classification {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._classifications

    def __iter__(self) -> Iterator[Classification]:
        return iter(
            self._classifications[name] for name in sorted(self._classifications)
        )

    def __len__(self) -> int:
        return len(self._classifications)

    def names(self) -> list[str]:
        return sorted(self._classifications)

    def drop(self, name: str, delete_edges: bool = False) -> None:
        """Remove a classification; optionally delete its exclusive edges.

        Edges shared with other classifications are never deleted.
        """
        classification = self.get(name)
        if delete_edges:
            for edge in classification.edges():
                owners = self.classifications_of_edge(edge)
                if owners == [classification]:
                    self.schema.unrelate(edge)
        del self._classifications[name]
        self._save()

    # -- overlap queries -----------------------------------------------------

    def classifications_of_edge(
        self, edge: RelationshipInstance | int
    ) -> list[Classification]:
        oid = edge.oid if isinstance(edge, RelationshipInstance) else edge
        return [
            c for c in self if oid in c
        ]

    def classifications_of_node(self, node: PObject | int) -> list[Classification]:
        oid = node.oid if isinstance(node, PObject) else node
        return [c for c in self if oid in c.node_oids()]

    def shared_nodes(self, a: str, b: str) -> set[int]:
        return self.get(a).node_oids() & self.get(b).node_oids()

    def shared_edges(self, a: str, b: str) -> set[int]:
        return self.get(a)._edge_oids & self.get(b)._edge_oids

    # -- persistence ------------------------------------------------------------

    def _note_membership(self, name: str, edge_oid: int, added: bool) -> None:
        self._save()

    def _save(self) -> None:
        payload = []
        for name in sorted(self._classifications):
            c = self._classifications[name]
            payload.append(
                {
                    "name": c.name,
                    "author": c.author,
                    "year": c.year,
                    "publication": c.publication,
                    "description": c.description,
                    "edges": sorted(c._edge_oids),
                }
            )
        self.schema.meta_extras[_EXTRAS_KEY] = payload

    def _load(self) -> None:
        payload = self.schema.meta_extras.get(_EXTRAS_KEY, [])
        for item in payload:
            classification = Classification(
                self,
                item["name"],
                author=item.get("author", ""),
                year=item.get("year"),
                publication=item.get("publication", ""),
                description=item.get("description", ""),
            )
            for oid in item.get("edges", []):
                if self.schema.has_object(oid):
                    obj = self.schema.get_object(oid)
                    if isinstance(obj, RelationshipInstance):
                        classification._edge_oids.add(oid)
            classification._rebuild_adjacency()
            self._classifications[item["name"]] = classification
