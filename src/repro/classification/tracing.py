"""Traceability: recording the motivation behind classification acts.

Requirement 4 of the thesis: "a taxonomist should be able to explain why a
particular taxon has been placed in another."  Prometheus supports this in
two complementary ways:

1. **Edge attributes** — placement relationship classes can declare a
   ``motivation`` attribute carried by every edge (this is what the
   taxonomy substrate does).
2. **The trace log** — an append-only journal of classification
   operations (place, move, remove, copy) with actor, timestamp and
   free-text reason, kept per schema and persisted in the metadata
   extras.

The :class:`TraceLog` subscribes to nothing: layers call
:meth:`TraceLog.record` explicitly, keeping "what happened" (events) and
"why it happened" (traces) separate concerns.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schema import Schema

_EXTRAS_KEY = "trace_log"


@dataclass(frozen=True)
class TraceEntry:
    """One recorded classification act."""

    sequence: int
    operation: str
    classification: str
    actor: str
    reason: str
    timestamp: str
    subject_oid: int = 0
    object_oid: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    def to_storable(self) -> dict[str, Any]:
        return {
            "sequence": self.sequence,
            "operation": self.operation,
            "classification": self.classification,
            "actor": self.actor,
            "reason": self.reason,
            "timestamp": self.timestamp,
            "subject_oid": self.subject_oid,
            "object_oid": self.object_oid,
            "details": dict(self.details),
        }

    @classmethod
    def from_storable(cls, data: dict[str, Any]) -> "TraceEntry":
        return cls(
            sequence=int(data["sequence"]),
            operation=str(data["operation"]),
            classification=str(data["classification"]),
            actor=str(data.get("actor", "")),
            reason=str(data.get("reason", "")),
            timestamp=str(data.get("timestamp", "")),
            subject_oid=int(data.get("subject_oid", 0)),
            object_oid=int(data.get("object_oid", 0)),
            details=dict(data.get("details", {})),
        )


class TraceLog:
    """Per-schema journal of classification operations."""

    #: Operations with conventional names, for filtering.
    PLACE = "place"
    MOVE = "move"
    REMOVE = "remove"
    COPY = "copy"
    RENAME = "rename"
    DERIVE = "derive-names"

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        # The storable list lives inside meta_extras and is appended to in
        # place, so recording stays O(1) regardless of journal length.
        self._stored: list[dict] = schema.meta_extras.setdefault(
            _EXTRAS_KEY, []
        )
        self._entries: list[TraceEntry] = [
            TraceEntry.from_storable(item) for item in self._stored
        ]

    def record(
        self,
        operation: str,
        classification: str,
        actor: str = "",
        reason: str = "",
        subject_oid: int = 0,
        object_oid: int = 0,
        **details: Any,
    ) -> TraceEntry:
        """Append one trace entry and persist the journal."""
        entry = TraceEntry(
            sequence=len(self._entries) + 1,
            operation=operation,
            classification=classification,
            actor=actor,
            reason=reason,
            timestamp=_dt.datetime.now(_dt.timezone.utc).isoformat(),
            subject_oid=subject_oid,
            object_oid=object_oid,
            details=details,
        )
        self._entries.append(entry)
        self._stored.append(entry.to_storable())
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def for_classification(self, name: str) -> list[TraceEntry]:
        return [e for e in self._entries if e.classification == name]

    def for_object(self, oid: int) -> list[TraceEntry]:
        return [
            e
            for e in self._entries
            if e.subject_oid == oid or e.object_oid == oid
        ]

    def by_actor(self, actor: str) -> list[TraceEntry]:
        return [e for e in self._entries if e.actor == actor]

    def explain(self, oid: int) -> list[str]:
        """Human-readable history of one object's classification life."""
        lines = []
        for entry in self.for_object(oid):
            line = (
                f"#{entry.sequence} {entry.operation} in "
                f"{entry.classification!r}"
            )
            if entry.actor:
                line += f" by {entry.actor}"
            if entry.reason:
                line += f": {entry.reason}"
            lines.append(line)
        return lines
