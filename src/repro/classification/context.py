"""Classifying and querying *in context* (thesis §4.6.2, §7.1.3.3).

A :class:`Context` scopes operations to one or more classifications.  The
same object can answer "what are your children?" differently depending on
the classification through which it is viewed — the essence of multiple
overlapping classifications.  Contexts compose: a multi-classification
context answers set-union questions ("in which contexts is X placed under
Y?", "who ever classified X?").
"""

from __future__ import annotations

from typing import Iterable

from ..core.instances import PObject
from ..errors import ClassificationError
from .classification import Classification, ClassificationManager


class Context:
    """A query scope over one or several classifications."""

    def __init__(self, classifications: Iterable[Classification]) -> None:
        self._classifications = list(classifications)
        if not self._classifications:
            raise ClassificationError("a context needs at least one classification")

    @classmethod
    def of(
        cls, manager: ClassificationManager, *names: str
    ) -> "Context":
        return cls([manager.get(name) for name in names])

    @property
    def classifications(self) -> list[Classification]:
        return list(self._classifications)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._classifications]

    def __len__(self) -> int:
        return len(self._classifications)

    # -- navigation, per-context --------------------------------------------

    def children(self, node: PObject) -> dict[str, list[PObject]]:
        """Children of ``node`` keyed by classification name."""
        return {
            c.name: c.children(node)
            for c in self._classifications
            if node.oid in c.node_oids()
        }

    def parents(self, node: PObject) -> dict[str, list[PObject]]:
        return {
            c.name: c.parents(node)
            for c in self._classifications
            if node.oid in c.node_oids()
        }

    # -- membership questions -------------------------------------------------

    def appears_in(self, node: PObject) -> list[str]:
        """Names of context classifications that classify ``node``."""
        return [
            c.name for c in self._classifications if node.oid in c.node_oids()
        ]

    def placements_of(self, node: PObject) -> dict[str, list[PObject]]:
        """Where ``node`` sits (its parents) in every context member.

        This answers the motivating taxonomic question: "under which
        groups has this specimen/taxon been placed, according to whom?"
        """
        return {
            name: parents
            for name, parents in self.parents(node).items()
            if parents
        }

    def is_placed_under(self, child: PObject, parent: PObject) -> list[str]:
        """Classifications in which ``child`` is (transitively) below
        ``parent``."""
        result = []
        for c in self._classifications:
            if child.oid in c.node_oids() and any(
                anc.oid == parent.oid for anc in c.ancestors(child)
            ):
                result.append(c.name)
        return result

    def agreement(self, child: PObject) -> bool:
        """True when every context member that classifies ``child`` gives
        it the same direct parents."""
        placements = [
            frozenset(p.oid for p in parents)
            for parents in self.parents(child).values()
        ]
        return len(set(placements)) <= 1

    def disagreements(self) -> list[int]:
        """OIDs classified differently across the context's members."""
        common: set[int] | None = None
        for c in self._classifications:
            oids = c.node_oids()
            common = oids if common is None else (common & oids)
        if not common:
            return []
        out = []
        for oid in sorted(common):
            node = self._classifications[0].schema.get_object(oid)
            if not self.agreement(node):
                out.append(oid)
        return out
