"""Object identity: OIDs and OID allocation.

Every persistent entity in Prometheus — plain objects, relationship
instances, classifications — is identified by an *object identifier* (OID),
a positive integer that never changes and is never reused within one
database.  OID ``0`` is reserved as the null reference.

The thesis (§4.8.1, "the reference problem") argues that references should
be replaced by relationships; internally, however, the storage layer still
needs a stable handle per object, which is what the OID provides.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

NULL_OID = 0


@dataclass(frozen=True, slots=True)
class OidRef:
    """A typed wrapper marking an integer as an object reference.

    Used by the serialization layer to distinguish "the integer 7" from
    "a reference to the object whose OID is 7" inside stored records.
    """

    oid: int

    def __post_init__(self) -> None:
        if self.oid < 0:
            raise ValueError(f"OID must be non-negative, got {self.oid}")

    def __bool__(self) -> bool:
        return self.oid != NULL_OID

    def __int__(self) -> int:
        return self.oid


class OidAllocator:
    """Thread-safe monotonic OID source.

    The allocator starts at ``first`` (default 1) and hands out consecutive
    integers.  The storage layer persists the high-water mark so that a
    reopened database continues after the last allocated OID.
    """

    def __init__(self, first: int = 1) -> None:
        if first < 1:
            raise ValueError("first OID must be >= 1")
        # A single integer is the whole allocator state: every transition
        # happens under the lock, so there is no counter object to swap
        # and no window where allocate() can race a fast_forward().
        self._next = first
        self._lock = threading.Lock()

    def allocate(self) -> int:
        """Return the next unused OID."""
        with self._lock:
            oid = self._next
            self._next += 1
            return oid

    def allocate_many(self, n: int) -> range:
        """Reserve ``n`` consecutive OIDs and return them as a range."""
        if n < 0:
            raise ValueError("cannot allocate a negative number of OIDs")
        with self._lock:
            start = self._next
            self._next += n
            return range(start, start + n)

    @property
    def last_allocated(self) -> int:
        """Highest OID handed out so far (0 if none)."""
        with self._lock:
            return self._next - 1

    def fast_forward(self, oid: int) -> None:
        """Ensure future allocations are strictly greater than ``oid``.

        Called during database recovery with the highest OID found in the
        log, so new objects never collide with recovered ones.
        """
        with self._lock:
            if oid >= self._next:
                self._next = oid + 1
