"""Attribute and method metadata for Prometheus classes.

In the thesis's formalisation (§4.2) a class is a named set of attribute
pairs ``(type, name)``, method signatures, constraints and superclasses.
:class:`Attribute` and :class:`Method` are the metaobjects for the first
two.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SchemaError
from .types import TypeSpec

_IDENT_OK = staticmethod  # placeholder to keep module import cheap


def _check_identifier(name: str, what: str) -> None:
    if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
        raise SchemaError(f"invalid {what} name: {name!r}")


class Attribute:
    """A typed attribute declaration.

    Args:
        name: identifier of the attribute.
        type_spec: the :class:`TypeSpec` values must conform to.
        default: value a new instance starts with (validated eagerly).
        required: when True, ``None`` is rejected on instance creation
            and assignment.
        doc: human documentation shown by schema introspection.
    """

    __slots__ = ("name", "type_spec", "default", "required", "doc")

    def __init__(
        self,
        name: str,
        type_spec: TypeSpec,
        default: Any = None,
        required: bool = False,
        doc: str = "",
    ) -> None:
        _check_identifier(name, "attribute")
        if not isinstance(type_spec, TypeSpec):
            raise SchemaError(
                f"attribute {name!r}: type_spec must be a TypeSpec, got "
                f"{type(type_spec).__name__}"
            )
        type_spec.validate(default)
        if required and default is None:
            # Permitted: the instance constructor must then supply a value.
            pass
        self.name = name
        self.type_spec = type_spec
        self.default = default
        self.required = required
        self.doc = doc

    def validate(self, value: Any) -> None:
        """Check a candidate value against type and requiredness."""
        if value is None and self.required:
            from ..errors import TypeCheckError

            raise TypeCheckError(f"attribute {self.name!r} is required")
        self.type_spec.validate(value)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        req = " required" if self.required else ""
        return f"<Attribute {self.name}: {self.type_spec.name}{req}>"


class Method:
    """A method declaration: a callable plus a documented signature.

    The callable receives the instance (a
    :class:`~repro.core.instances.PObject`) as its first argument, mirroring
    Python methods.  Return/argument types are documentation-level here;
    POOL's type checker consults :attr:`returns` when methods appear in
    queries (§5.1.2.3).
    """

    __slots__ = ("name", "func", "returns", "params", "doc")

    def __init__(
        self,
        name: str,
        func: Callable[..., Any],
        returns: TypeSpec | None = None,
        params: tuple[tuple[str, TypeSpec], ...] = (),
        doc: str = "",
    ) -> None:
        _check_identifier(name, "method")
        if not callable(func):
            raise SchemaError(f"method {name!r}: func must be callable")
        self.name = name
        self.func = func
        self.returns = returns
        self.params = tuple(params)
        self.doc = doc or (func.__doc__ or "")

    def __call__(self, instance: Any, *args: Any, **kwargs: Any) -> Any:
        return self.func(instance, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        sig = ", ".join(f"{n}: {t.name}" for n, t in self.params)
        ret = self.returns.name if self.returns else "any"
        return f"<Method {self.name}({sig}) -> {ret}>"
