"""Relationship templates (thesis §6.2.2, Figure 34).

The prototype's usage chapter shows taxonomists building relationship
classes from *templates* — pre-configured semantic bundles they extend
with their own attributes rather than reasoning about Table 3 from
scratch.  Each template is a named, documented
:class:`~repro.core.semantics.RelationshipSemantics` recipe;
:func:`relationship_from_template` stamps out a
:class:`~repro.core.relationships.RelationshipClass` from one, applying
overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable

from ..errors import SchemaError
from .attributes import Attribute
from .relationships import RelationshipClass
from .semantics import Cardinality, RelationshipSemantics, RelKind


@dataclass(frozen=True)
class RelationshipTemplate:
    """A named semantics recipe with documentation."""

    name: str
    semantics: RelationshipSemantics
    doc: str

    def build(
        self,
        class_name: str,
        origin: str,
        destination: str,
        attributes: Iterable[Attribute] = (),
        participants: dict[str, str] | None = None,
        **overrides: Any,
    ) -> RelationshipClass:
        """Stamp a relationship class from this template.

        ``overrides`` patch individual semantics fields (validated
        against Table 3 as usual), e.g. ``max_in=1`` or
        ``inherited_attributes=("role",)``.
        """
        semantics = self.semantics
        cardinality_fields = {"min_out", "max_out", "min_in", "max_in"}
        card_overrides = {
            k: v for k, v in overrides.items() if k in cardinality_fields
        }
        sem_overrides = {
            k: v for k, v in overrides.items() if k not in cardinality_fields
        }
        if card_overrides:
            sem_overrides["cardinality"] = replace(
                semantics.cardinality, **card_overrides
            )
        if sem_overrides:
            semantics = replace(semantics, **sem_overrides)
        return RelationshipClass(
            class_name,
            origin,
            destination,
            semantics=semantics,
            attributes=attributes,
            participants=participants,
            doc=f"from template {self.name!r}: {self.doc}",
        )


#: Strict whole/part: one owner, parts die with it (UML composition).
COMPOSITION = RelationshipTemplate(
    name="composition",
    semantics=RelationshipSemantics(
        kind=RelKind.AGGREGATION, exclusive=True, lifetime_dependent=True
    ),
    doc="exclusive lifetime-dependent aggregation (UML composition)",
)

#: Whole/part where parts may belong to several wholes and outlive them.
SHARED_AGGREGATION = RelationshipTemplate(
    name="shared-aggregation",
    semantics=RelationshipSemantics(
        kind=RelKind.AGGREGATION, shareable=True
    ),
    doc="shareable aggregation: parts may appear under many wholes",
)

#: The classification edge: shareable aggregation carrying a motivation
#: (requirement 4's traceability lives on the edge).
CLASSIFICATION_EDGE = RelationshipTemplate(
    name="classification-edge",
    semantics=RelationshipSemantics(
        kind=RelKind.AGGREGATION, shareable=True
    ),
    doc="placement edge for overlapping classifications "
    "(add a 'motivation' attribute for traceability)",
)

#: Plain many-to-many association.
ASSOCIATION = RelationshipTemplate(
    name="association",
    semantics=RelationshipSemantics(kind=RelKind.ASSOCIATION),
    doc="unconstrained many-to-many association",
)

#: One-to-one association frozen at creation (e.g. issued identifiers).
IMMUTABLE_LINK = RelationshipTemplate(
    name="immutable-link",
    semantics=RelationshipSemantics(
        kind=RelKind.ASSOCIATION,
        constant=True,
        cardinality=Cardinality(max_out=1, max_in=1),
    ),
    doc="constant one-to-one link; cannot be re-targeted or removed",
)

#: Role-granting association (ADAM-style attribute inheritance): declare
#: the role attribute(s) on the stamped class and pass
#: ``inherited_attributes=...``.
ROLE_GRANT = RelationshipTemplate(
    name="role-grant",
    semantics=RelationshipSemantics(kind=RelKind.ASSOCIATION),
    doc="association whose attributes become roles of the endpoints "
    "(pass inherited_attributes=(...))",
)

TEMPLATES: dict[str, RelationshipTemplate] = {
    template.name: template
    for template in (
        COMPOSITION,
        SHARED_AGGREGATION,
        CLASSIFICATION_EDGE,
        ASSOCIATION,
        IMMUTABLE_LINK,
        ROLE_GRANT,
    )
}


def get_template(name: str) -> RelationshipTemplate:
    try:
        return TEMPLATES[name]
    except KeyError:
        raise SchemaError(
            f"unknown relationship template {name!r}; available: "
            f"{sorted(TEMPLATES)}"
        ) from None


def relationship_from_template(
    template: str | RelationshipTemplate,
    class_name: str,
    origin: str,
    destination: str,
    **kwargs: Any,
) -> RelationshipClass:
    """Convenience: resolve the template by name and build (Figure 34)."""
    if isinstance(template, str):
        template = get_template(template)
    return template.build(class_name, origin, destination, **kwargs)
