"""Built-in relationship semantics and their allowed combinations.

The thesis gives relationships a set of built-in attributes (§4.4.3) and
constraints (§4.4.4) whose combinations are restricted (Table 3, "Allowed
combinations of behaviours").  This module declares those behaviours,
validates declared combinations, and can enumerate the full combination
table, which the test suite prints as the Table 3 reproduction.

Behaviours
----------
* **kind** — ``AGGREGATION`` (whole/part, Figure 17) or ``ASSOCIATION``.
* **exclusive** (Figure 15) — a destination object may be the destination
  of at most one live instance of the relationship class (or of any class
  in the same *exclusivity group*).  Only meaningful for aggregations: a
  part belongs to at most one whole.
* **shareable** (Figure 16) — the explicit opposite: a destination may be
  referenced by many origins.  Mutually exclusive with ``exclusive``.
* **lifetime_dependent** — deleting the whole deletes its parts.
  Aggregations only, and incompatible with ``shareable`` (a shared part
  cannot die with one of its owners).
* **constant** — instances cannot be re-targeted or deleted once created
  (ODMG "changeability" restricted to frozen).
* **inherited_attributes** (§4.4.5) — names of relationship attributes
  that destination objects acquire as role attributes, after ADAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import product
from typing import Iterator

from ..errors import SemanticsError

UNBOUNDED = -1


class RelKind(enum.Enum):
    """The two relationship kinds of the Prometheus model (§4.3)."""

    AGGREGATION = "aggregation"
    ASSOCIATION = "association"


class Behaviour(enum.Enum):
    """Named built-in behaviours, for table generation and diagnostics."""

    EXCLUSIVE = "exclusive"
    SHAREABLE = "shareable"
    LIFETIME_DEPENDENT = "lifetime_dependent"
    CONSTANT = "constant"
    ATTRIBUTE_INHERITANCE = "attribute_inheritance"


@dataclass(frozen=True)
class Cardinality:
    """Bounds on instances per endpoint.

    ``max_out`` limits outgoing instances per origin object; ``max_in``
    limits incoming instances per destination object.  ``UNBOUNDED`` (-1)
    means no limit.  Minima are checked by the deferred integrity check,
    not on every mutation (a graph under construction is legitimately
    incomplete).
    """

    min_out: int = 0
    max_out: int = UNBOUNDED
    min_in: int = 0
    max_in: int = UNBOUNDED

    def __post_init__(self) -> None:
        for low, high, label in (
            (self.min_out, self.max_out, "out"),
            (self.min_in, self.max_in, "in"),
        ):
            if low < 0:
                raise SemanticsError(f"min_{label} must be >= 0")
            if high != UNBOUNDED and high < low:
                raise SemanticsError(
                    f"max_{label} ({high}) below min_{label} ({low})"
                )

    @classmethod
    def many_to_many(cls) -> "Cardinality":
        return cls()

    @classmethod
    def one_to_many(cls) -> "Cardinality":
        """Each destination has at most one origin (a tree edge)."""
        return cls(max_in=1)

    @classmethod
    def one_to_one(cls) -> "Cardinality":
        return cls(max_out=1, max_in=1)


@dataclass(frozen=True)
class RelationshipSemantics:
    """Declared behaviour bundle for a relationship class.

    Raises :class:`SemanticsError` from ``__post_init__`` if the
    combination is not in the allowed set (Table 3).
    """

    kind: RelKind = RelKind.ASSOCIATION
    exclusive: bool = False
    shareable: bool = False
    lifetime_dependent: bool = False
    constant: bool = False
    inherited_attributes: tuple[str, ...] = ()
    cardinality: Cardinality = field(default_factory=Cardinality)
    directed: bool = True
    exclusivity_group: str = ""

    def __post_init__(self) -> None:
        problem = combination_problem(
            self.kind,
            exclusive=self.exclusive,
            shareable=self.shareable,
            lifetime_dependent=self.lifetime_dependent,
        )
        if problem:
            raise SemanticsError(problem)
        if self.exclusivity_group and not self.exclusive:
            raise SemanticsError(
                "exclusivity_group requires exclusive=True"
            )
        if self.exclusive and self.cardinality.max_in not in (UNBOUNDED, 1):
            raise SemanticsError(
                "exclusive relationships already imply max_in == 1; "
                f"declared max_in={self.cardinality.max_in} conflicts"
            )

    @property
    def effective_max_in(self) -> int:
        """Incoming bound after applying exclusivity (exclusive ⇒ 1)."""
        if self.exclusive:
            return 1
        return self.cardinality.max_in

    @property
    def is_aggregation(self) -> bool:
        return self.kind is RelKind.AGGREGATION

    def behaviours(self) -> set[Behaviour]:
        result: set[Behaviour] = set()
        if self.exclusive:
            result.add(Behaviour.EXCLUSIVE)
        if self.shareable:
            result.add(Behaviour.SHAREABLE)
        if self.lifetime_dependent:
            result.add(Behaviour.LIFETIME_DEPENDENT)
        if self.constant:
            result.add(Behaviour.CONSTANT)
        if self.inherited_attributes:
            result.add(Behaviour.ATTRIBUTE_INHERITANCE)
        return result


def combination_problem(
    kind: RelKind,
    exclusive: bool,
    shareable: bool,
    lifetime_dependent: bool,
) -> str | None:
    """Return the reason a behaviour combination is disallowed, or None.

    This function *is* Table 3: every rule of the allowed-combination
    matrix lives here, and :func:`allowed_combinations` renders it.
    """
    if exclusive and shareable:
        return "exclusive and shareable are contradictory"
    if exclusive and kind is not RelKind.AGGREGATION:
        return "exclusivity applies to aggregations only (a part has one whole)"
    if lifetime_dependent and kind is not RelKind.AGGREGATION:
        return "lifetime dependency applies to aggregations only"
    if lifetime_dependent and shareable:
        return "a shareable part cannot be lifetime-dependent on one whole"
    return None


@dataclass(frozen=True)
class CombinationRow:
    """One row of the reproduced Table 3."""

    kind: RelKind
    exclusive: bool
    shareable: bool
    lifetime_dependent: bool
    constant: bool
    allowed: bool
    reason: str


def allowed_combinations() -> Iterator[CombinationRow]:
    """Enumerate every behaviour combination with its verdict (Table 3)."""
    flags = (False, True)
    for kind, exclusive, shareable, dependent, constant in product(
        RelKind, flags, flags, flags, flags
    ):
        problem = combination_problem(
            kind,
            exclusive=exclusive,
            shareable=shareable,
            lifetime_dependent=dependent,
        )
        yield CombinationRow(
            kind=kind,
            exclusive=exclusive,
            shareable=shareable,
            lifetime_dependent=dependent,
            constant=constant,
            allowed=problem is None,
            reason=problem or "allowed",
        )


def format_table3() -> str:
    """Render the combination table as aligned text (Table 3 artefact)."""
    header = (
        f"{'kind':<12} {'excl':<5} {'share':<5} {'dep':<5} {'const':<5} "
        f"{'ok':<3} reason"
    )
    lines = [header, "-" * len(header)]
    for row in allowed_combinations():
        lines.append(
            f"{row.kind.value:<12} {str(row.exclusive):<5} "
            f"{str(row.shareable):<5} {str(row.lifetime_dependent):<5} "
            f"{str(row.constant):<5} {('yes' if row.allowed else 'no'):<3} "
            f"{row.reason}"
        )
    return "\n".join(lines)
