"""ODMG collection types: Set, Bag, List and Dictionary.

The thesis's model supports ODMG collections as attribute values (§4.4.6).
These wrappers behave like the corresponding Python built-ins but carry a
``kind`` tag, know how to serialize themselves through an element
:class:`~repro.core.types.TypeSpec`, and can hold object references.

``PSet`` uses value semantics over hashable elements; object references
are held as OIDs through :class:`~repro.core.identity.OidRef` so sets of
objects hash by identity, matching ODMG semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .types import TypeSpec


class PCollection:
    """Mixin shared by the four collection kinds."""

    kind: str = ""

    def element_values(self) -> Iterator[Any]:
        """Iterate the element values (for dicts: the values)."""
        raise NotImplementedError

    def to_storable(self, element: "TypeSpec") -> dict[str, Any]:
        raise NotImplementedError

    def cardinality(self) -> int:
        """ODMG name for the element count."""
        return len(self)  # type: ignore[arg-type]


class PSet(set, PCollection):
    """An unordered collection without duplicates."""

    kind = "set"

    def element_values(self) -> Iterator[Any]:
        return iter(self)

    def to_storable(self, element: "TypeSpec") -> dict[str, Any]:
        return {"_c": "set", "items": [element.to_storable(v) for v in self]}

    def union_with(self, other: Iterable[Any]) -> "PSet":
        return PSet(set(self) | set(other))

    def intersect_with(self, other: Iterable[Any]) -> "PSet":
        return PSet(set(self) & set(other))

    def difference_with(self, other: Iterable[Any]) -> "PSet":
        return PSet(set(self) - set(other))


class PBag(list, PCollection):
    """An unordered collection allowing duplicates.

    Implemented over a list; equality ignores order but respects
    multiplicity.
    """

    kind = "bag"

    def element_values(self) -> Iterator[Any]:
        return iter(self)

    def to_storable(self, element: "TypeSpec") -> dict[str, Any]:
        return {"_c": "bag", "items": [element.to_storable(v) for v in self]}

    def occurrences(self, value: Any) -> int:
        return sum(1 for item in self if item == value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PBag):
            if len(self) != len(other):
                return False
            remaining = list(other)
            for item in self:
                try:
                    remaining.remove(item)
                except ValueError:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]


class PList(list, PCollection):
    """An ordered collection allowing duplicates."""

    kind = "list"

    def element_values(self) -> Iterator[Any]:
        return iter(self)

    def to_storable(self, element: "TypeSpec") -> dict[str, Any]:
        return {"_c": "list", "items": [element.to_storable(v) for v in self]}


class PDict(dict, PCollection):
    """A dictionary keyed by strings (ODMG Dictionary)."""

    kind = "dict"

    def element_values(self) -> Iterator[Any]:
        return iter(self.values())

    def to_storable(self, element: "TypeSpec") -> dict[str, Any]:
        return {
            "_c": "dict",
            "items": [[k, element.to_storable(v)] for k, v in self.items()],
        }
