"""First-class relationships: the primary contribution of the thesis.

A :class:`RelationshipClass` is a class metaobject whose instances are
*edges*: each :class:`RelationshipInstance` links an origin object to a
destination object and can carry its own attributes (weights, motivations,
dates...).  Relationships are orthogonal to the classified data — the
endpoint objects need not declare anything to participate (§4.3), which is
what makes classification of "non co-operating data" possible.

The :class:`RelationshipRegistry` is the schema-side index of all edges:
by class, by origin and by destination.  It enforces the declared
semantics (exclusivity, cardinality, constancy) at mutation time and
implements ADAM-style attribute inheritance (§4.4.5) for role acquisition.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import (
    CardinalityError,
    ConstancyError,
    ExclusivityError,
    RelationshipError,
)
from .attributes import Attribute, Method
from .classes import PClass
from .instances import PObject, _MISSING
from .semantics import UNBOUNDED, RelationshipSemantics, RelKind

if TYPE_CHECKING:  # pragma: no cover
    from .schema import Schema

#: Reserved storage keys on relationship records.
ORIGIN_KEY = "_origin"
DESTINATION_KEY = "_destination"
PARTICIPANTS_KEY = "_participants"


class RelationshipClass(PClass):
    """Metaobject for a relationship class (Figure 10).

    Args:
        name: relationship class name.
        origin: name of the class of allowed origin objects.
        destination: name of the class of allowed destination objects.
        semantics: behaviour bundle (validated against Table 3).
        attributes / methods / superclasses / doc: as for :class:`PClass`;
            superclasses must themselves be relationship classes.
    """

    def __init__(
        self,
        name: str,
        origin: str,
        destination: str,
        semantics: RelationshipSemantics | None = None,
        attributes: Iterable[Attribute] = (),
        methods: Iterable[Method] = (),
        superclasses: Iterable[str] = (),
        participants: dict[str, str] | None = None,
        doc: str = "",
    ) -> None:
        super().__init__(
            name,
            attributes=tuple(attributes),
            methods=tuple(methods),
            superclasses=tuple(superclasses),
            doc=doc,
        )
        self.origin_class_name = origin
        self.destination_class_name = destination
        self.semantics = semantics or RelationshipSemantics()
        #: Extra named endpoints making the relationship n-ary (the
        #: dotted arrows of Figure 10): role name → required class name.
        self.participant_roles: dict[str, str] = dict(participants or {})
        for role in self.participant_roles:
            if role in ("origin", "destination"):
                raise RelationshipError(
                    f"{name}: participant role {role!r} shadows a built-in "
                    "endpoint"
                )

    @property
    def is_relationship_class(self) -> bool:
        return True

    @property
    def kind(self) -> RelKind:
        return self.semantics.kind

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<RelationshipClass {self.name}: {self.origin_class_name} -> "
            f"{self.destination_class_name} ({self.semantics.kind.value})>"
        )


class RelationshipInstance(PObject):
    """One edge: origin → destination, plus user attributes.

    Created through :meth:`Schema.relate`, never directly.
    """

    __slots__ = ("origin_oid", "destination_oid", "participant_oids")

    def __init__(
        self,
        oid: int,
        pclass: RelationshipClass,
        schema: "Schema",
        values: dict[str, Any],
        origin_oid: int,
        destination_oid: int,
        participant_oids: dict[str, int] | None = None,
    ) -> None:
        super().__init__(oid, pclass, schema, values)
        self.origin_oid = origin_oid
        self.destination_oid = destination_oid
        #: Named extra endpoints (n-ary relationships): role → OID.
        self.participant_oids: dict[str, int] = dict(participant_oids or {})

    @property
    def relationship_class(self) -> RelationshipClass:
        assert isinstance(self.pclass, RelationshipClass)
        return self.pclass

    def origin_object(self) -> PObject:
        return self.schema.get_object(self.origin_oid)

    def destination_object(self) -> PObject:
        return self.schema.get_object(self.destination_oid)

    def participant(self, role: str) -> PObject | None:
        """The named extra endpoint, or None when the role is unfilled."""
        if role not in self.relationship_class.participant_roles:
            raise RelationshipError(
                f"{self.pclass.name}: no participant role {role!r}"
            )
        oid = self.participant_oids.get(role)
        if oid is None or not self.schema.has_object(oid):
            return None
        return self.schema.get_object(oid)

    def endpoints(self) -> dict[str, int]:
        """All endpoint OIDs keyed by role (incl. origin/destination)."""
        return {
            "origin": self.origin_oid,
            "destination": self.destination_oid,
            **self.participant_oids,
        }

    def other_end(self, oid: int) -> int:
        """OID of the opposite endpoint to ``oid``."""
        if oid == self.origin_oid:
            return self.destination_oid
        if oid == self.destination_oid:
            return self.origin_oid
        raise RelationshipError(
            f"object {oid} is not an endpoint of relationship {self.oid}"
        )

    def set(self, name: str, value: Any) -> None:
        if self.relationship_class.semantics.constant:
            raise ConstancyError(
                f"relationship class {self.pclass.name!r} is constant; "
                f"instance {self.oid} cannot be modified"
            )
        super().set(name, value)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<{self.pclass.name} oid={self.oid} "
            f"{self.origin_oid}->{self.destination_oid}>"
        )


class RelationshipRegistry:
    """Schema-side index and semantics enforcer for all edges.

    The registry does not own edge storage (the schema's object table
    does); it maintains secondary indexes and performs the semantic
    checks that creation/removal must satisfy.
    """

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        # class name -> set of relationship-instance oids
        self._by_class: dict[str, set[int]] = defaultdict(set)
        # (endpoint oid, class name) -> set of relationship oids
        self._out: dict[tuple[int, str], set[int]] = defaultdict(set)
        self._in: dict[tuple[int, str], set[int]] = defaultdict(set)
        # endpoint oid -> set of relationship oids (any class)
        self._touching: dict[int, set[int]] = defaultdict(set)

    # -- index maintenance -------------------------------------------------

    def index(self, rel: RelationshipInstance) -> None:
        name = rel.pclass.name
        self._by_class[name].add(rel.oid)
        self._out[(rel.origin_oid, name)].add(rel.oid)
        self._in[(rel.destination_oid, name)].add(rel.oid)
        self._touching[rel.origin_oid].add(rel.oid)
        self._touching[rel.destination_oid].add(rel.oid)
        for oid in rel.participant_oids.values():
            self._touching[oid].add(rel.oid)

    def unindex(self, rel: RelationshipInstance) -> None:
        name = rel.pclass.name
        self._by_class[name].discard(rel.oid)
        self._out[(rel.origin_oid, name)].discard(rel.oid)
        self._in[(rel.destination_oid, name)].discard(rel.oid)
        self._touching[rel.origin_oid].discard(rel.oid)
        self._touching[rel.destination_oid].discard(rel.oid)
        for oid in rel.participant_oids.values():
            self._touching[oid].discard(rel.oid)

    # -- semantic checks ------------------------------------------------------

    def check_creation(
        self,
        relclass: RelationshipClass,
        origin: PObject,
        destination: PObject,
        participants: dict[str, PObject] | None = None,
    ) -> None:
        """Validate endpoint classes, exclusivity and cardinality bounds."""
        schema = self._schema
        origin_type = schema.get_class(relclass.origin_class_name)
        dest_type = schema.get_class(relclass.destination_class_name)
        for role, obj in (participants or {}).items():
            if role not in relclass.participant_roles:
                raise RelationshipError(
                    f"{relclass.name}: unknown participant role {role!r}"
                )
            role_type = schema.get_class(relclass.participant_roles[role])
            if not obj.pclass.is_subclass_of(role_type):
                raise RelationshipError(
                    f"{relclass.name}: participant {role!r} must be "
                    f"{role_type.name}, got {obj.pclass.name}"
                )
        if not origin.pclass.is_subclass_of(origin_type):
            raise RelationshipError(
                f"{relclass.name}: origin must be {origin_type.name}, got "
                f"{origin.pclass.name}"
            )
        if not destination.pclass.is_subclass_of(dest_type):
            raise RelationshipError(
                f"{relclass.name}: destination must be {dest_type.name}, "
                f"got {destination.pclass.name}"
            )
        sem = relclass.semantics
        if sem.exclusive:
            rivals = self._exclusivity_rivals(relclass)
            for rival in rivals:
                if self._in[(destination.oid, rival.name)]:
                    raise ExclusivityError(
                        f"object {destination.oid} already owned through "
                        f"exclusive relationship {rival.name!r}"
                    )
        max_out = sem.cardinality.max_out
        if max_out != UNBOUNDED:
            current = len(self._out[(origin.oid, relclass.name)])
            if current >= max_out:
                raise CardinalityError(
                    f"{relclass.name}: origin {origin.oid} already has "
                    f"{current} outgoing instances (max {max_out})"
                )
        max_in = sem.effective_max_in
        if max_in != UNBOUNDED:
            current = len(self._in[(destination.oid, relclass.name)])
            if current >= max_in:
                raise CardinalityError(
                    f"{relclass.name}: destination {destination.oid} "
                    f"already has {current} incoming instances (max {max_in})"
                )

    def check_removal(self, rel: RelationshipInstance) -> None:
        if rel.relationship_class.semantics.constant:
            raise ConstancyError(
                f"relationship class {rel.pclass.name!r} is constant; "
                f"instance {rel.oid} cannot be removed"
            )

    def _exclusivity_rivals(
        self, relclass: RelationshipClass
    ) -> list[RelationshipClass]:
        """Exclusive classes competing for the same destinations.

        The class itself, plus every exclusive relationship class sharing
        a non-empty ``exclusivity_group`` label (Figure 12's cross-class
        exclusivity).
        """
        rivals = [relclass]
        group = relclass.semantics.exclusivity_group
        if group:
            for other in self._schema.relationship_classes():
                if (
                    other is not relclass
                    and other.semantics.exclusive
                    and other.semantics.exclusivity_group == group
                ):
                    rivals.append(other)
        return rivals

    # -- queries --------------------------------------------------------------

    def _load(self, oids: Iterable[int]) -> list[RelationshipInstance]:
        out: list[RelationshipInstance] = []
        for oid in sorted(oids):
            obj = self._schema.get_object(oid)
            assert isinstance(obj, RelationshipInstance)
            out.append(obj)
        return out

    def _class_names_under(self, relationship: str | None) -> list[str]:
        """The relationship class plus its subclasses (polymorphic query)."""
        if relationship is None:
            return list(self._by_class.keys())
        klass = self._schema.get_class(relationship)
        return [c.name for c in klass.descendants()]

    def outgoing(
        self, oid: int, relationship: str | None = None
    ) -> list[RelationshipInstance]:
        names = self._class_names_under(relationship)
        found: set[int] = set()
        for name in names:
            found |= self._out.get((oid, name), set())
        return self._load(found)

    def incoming(
        self, oid: int, relationship: str | None = None
    ) -> list[RelationshipInstance]:
        names = self._class_names_under(relationship)
        found: set[int] = set()
        for name in names:
            found |= self._in.get((oid, name), set())
        return self._load(found)

    def touching(self, oid: int) -> list[RelationshipInstance]:
        """All edges having ``oid`` as either endpoint."""
        return self._load(self._touching.get(oid, set()))

    def instances_of(
        self, relationship: str, polymorphic: bool = True
    ) -> list[RelationshipInstance]:
        if polymorphic:
            names = self._class_names_under(relationship)
        else:
            names = [relationship]
        found: set[int] = set()
        for name in names:
            found |= self._by_class.get(name, set())
        return self._load(found)

    def count(self, relationship: str | None = None) -> int:
        names = self._class_names_under(relationship)
        return sum(len(self._by_class.get(name, set())) for name in names)

    # -- attribute inheritance (roles, §4.4.5) -----------------------------------

    def inherited_attribute(self, obj: PObject, name: str) -> Any:
        """Value of a role attribute acquired via relationships.

        Searches incoming edges first (the ADAM direction: attributes flow
        to the targeted object), then outgoing.  Returns the ``_MISSING``
        sentinel when no relationship grants the attribute.
        """
        for edges in (
            self.incoming(obj.oid),
            self.outgoing(obj.oid),
        ):
            for rel in edges:
                sem = rel.relationship_class.semantics
                if name in sem.inherited_attributes and rel.pclass.has_attribute(
                    name
                ):
                    return rel.get(name)
        return _MISSING

    def roles_of(self, obj: PObject) -> dict[str, Any]:
        """All role attributes currently acquired by ``obj``."""
        roles: dict[str, Any] = {}
        for rel in self.touching(obj.oid):
            sem = rel.relationship_class.semantics
            for name in sem.inherited_attributes:
                if rel.pclass.has_attribute(name) and name not in roles:
                    roles[name] = rel.get(name)
        return roles

    # -- integrity ----------------------------------------------------------------

    def minimum_cardinality_violations(self) -> list[str]:
        """Deferred check of declared minima; returns human messages."""
        problems: list[str] = []
        for relclass in self._schema.relationship_classes():
            card = relclass.semantics.cardinality
            if card.min_out == 0 and card.min_in == 0:
                continue
            origin_type = self._schema.get_class(relclass.origin_class_name)
            dest_type = self._schema.get_class(relclass.destination_class_name)
            if card.min_out:
                for obj in self._schema.extent(origin_type.name):
                    n = len(self._out.get((obj.oid, relclass.name), ()))
                    if n < card.min_out:
                        problems.append(
                            f"{relclass.name}: origin {obj.oid} has {n} "
                            f"outgoing (min {card.min_out})"
                        )
            if card.min_in:
                for obj in self._schema.extent(dest_type.name):
                    n = len(self._in.get((obj.oid, relclass.name), ()))
                    if n < card.min_in:
                        problems.append(
                            f"{relclass.name}: destination {obj.oid} has "
                            f"{n} incoming (min {card.min_in})"
                        )
        return problems
