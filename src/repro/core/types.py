"""The Prometheus attribute type system.

ODMG distinguishes atomic literal types, reference types and collection
types.  A :class:`TypeSpec` validates values assigned to attributes and
converts them to/from the storable representation used by the storage
layer.  Object references are stored as :class:`~repro.core.identity.OidRef`
values; in the live model they appear as :class:`~repro.core.instances.PObject`
handles.

Type checks are strict (``bool`` is *not* accepted where an integer is
declared), matching the thesis's position that queries must be type-checkable
in advance (§5.1.2.4).
"""

from __future__ import annotations

import datetime as _dt
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import TypeCheckError
from .identity import NULL_OID, OidRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schema import Schema


class TypeSpec:
    """Base class of all attribute type specifications."""

    name: str = "any"

    def validate(self, value: Any) -> None:
        """Raise :class:`TypeCheckError` unless ``value`` conforms."""
        raise NotImplementedError

    def to_storable(self, value: Any) -> Any:
        """Convert a validated live value to its stored representation."""
        return value

    def from_storable(self, value: Any, schema: "Schema | None" = None) -> Any:
        """Convert a stored representation back to the live value."""
        return value

    def accepts_none(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self), self.name))


class _AtomicType(TypeSpec):
    """Shared machinery for atomic literal types."""

    python_types: tuple[type, ...] = ()
    reject_bool = False

    def validate(self, value: Any) -> None:
        if value is None:
            return
        if self.reject_bool and isinstance(value, bool):
            raise TypeCheckError(
                f"expected {self.name}, got bool {value!r}"
            )
        if not isinstance(value, self.python_types):
            raise TypeCheckError(
                f"expected {self.name}, got {type(value).__name__} {value!r}"
            )


class IntegerType(_AtomicType):
    name = "integer"
    python_types = (int,)
    reject_bool = True


class FloatType(_AtomicType):
    name = "float"
    python_types = (int, float)
    reject_bool = True

    def to_storable(self, value: Any) -> Any:
        return float(value) if value is not None else None


class StringType(_AtomicType):
    name = "string"
    python_types = (str,)


class BooleanType(_AtomicType):
    name = "boolean"
    python_types = (bool,)


class BytesType(_AtomicType):
    name = "bytes"
    python_types = (bytes,)


class DateType(_AtomicType):
    name = "date"
    python_types = (_dt.date,)

    def validate(self, value: Any) -> None:
        if value is not None and isinstance(value, _dt.datetime):
            raise TypeCheckError("expected date, got datetime")
        super().validate(value)


class DateTimeType(_AtomicType):
    name = "datetime"
    python_types = (_dt.datetime,)


class AnyType(TypeSpec):
    """Escape hatch: any storable value (used by generic extents)."""

    name = "any"

    def validate(self, value: Any) -> None:
        return None


class RefType(TypeSpec):
    """A reference to an instance of a named class (or any subclass).

    The target class is named, not held directly, so schemas can declare
    mutually-referencing classes in any order; resolution happens against
    the schema when instances are validated.
    """

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        self.name = f"ref<{class_name}>"

    def validate(self, value: Any) -> None:
        # Structural check only; class conformance is checked with a schema
        # via validate_against (instances.py calls that path).
        from .instances import PObject

        if value is None or isinstance(value, (OidRef, PObject)):
            return
        raise TypeCheckError(
            f"expected {self.name}, got {type(value).__name__}"
        )

    def validate_against(self, value: Any, schema: "Schema") -> None:
        from .instances import PObject

        self.validate(value)
        if isinstance(value, PObject):
            target = schema.get_class(self.class_name)
            if not value.pclass.is_subclass_of(target):
                raise TypeCheckError(
                    f"expected instance of {self.class_name}, got "
                    f"{value.pclass.name}"
                )

    def to_storable(self, value: Any) -> Any:
        from .instances import PObject

        if value is None:
            return OidRef(NULL_OID)
        if isinstance(value, PObject):
            return OidRef(value.oid)
        return value

    def from_storable(self, value: Any, schema: "Schema | None" = None) -> Any:
        if isinstance(value, OidRef):
            if not value:
                return None
            if schema is not None:
                return schema.get_object(value.oid)
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RefType) and other.class_name == self.class_name

    def __hash__(self) -> int:
        return hash(("ref", self.class_name))


class CollectionTypeSpec(TypeSpec):
    """A homogeneous collection (set, bag, list or dict) of an element type."""

    KINDS = ("set", "bag", "list", "dict")

    def __init__(self, kind: str, element: TypeSpec) -> None:
        if kind not in self.KINDS:
            raise TypeCheckError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.element = element
        self.name = f"{kind}<{element.name}>"

    def validate(self, value: Any) -> None:
        from .collections import PBag, PDict, PList, PSet

        if value is None:
            return
        expected = {"set": PSet, "bag": PBag, "list": PList, "dict": PDict}[
            self.kind
        ]
        plain_ok = {
            "set": (set, frozenset),
            "bag": (list, tuple),
            "list": (list, tuple),
            "dict": (dict,),
        }[self.kind]
        if isinstance(value, expected):
            for item in value.element_values():
                self.element.validate(item)
            return
        if isinstance(value, plain_ok):
            items: Iterable[Any]
            items = value.values() if isinstance(value, dict) else value
            for item in items:
                self.element.validate(item)
            return
        raise TypeCheckError(
            f"expected {self.name}, got {type(value).__name__}"
        )

    def to_storable(self, value: Any) -> Any:
        from .collections import PCollection

        if value is None:
            return None
        if isinstance(value, PCollection):
            return value.to_storable(self.element)
        if isinstance(value, (set, frozenset)):
            return {
                "_c": "set",
                "items": [self.element.to_storable(v) for v in value],
            }
        if isinstance(value, (list, tuple)):
            return {
                "_c": self.kind if self.kind in ("bag", "list") else "list",
                "items": [self.element.to_storable(v) for v in value],
            }
        if isinstance(value, dict):
            return {
                "_c": "dict",
                "items": [
                    [k, self.element.to_storable(v)] for k, v in value.items()
                ],
            }
        raise TypeCheckError(f"cannot store {type(value).__name__} as {self.name}")

    def from_storable(self, value: Any, schema: "Schema | None" = None) -> Any:
        from .collections import PBag, PDict, PList, PSet

        if value is None:
            return None
        kind = value["_c"]
        items = value["items"]
        element = self.element
        if kind == "set":
            return PSet(element.from_storable(v, schema) for v in items)
        if kind == "bag":
            return PBag(element.from_storable(v, schema) for v in items)
        if kind == "list":
            return PList(element.from_storable(v, schema) for v in items)
        if kind == "dict":
            return PDict(
                (k, element.from_storable(v, schema)) for k, v in items
            )
        raise TypeCheckError(f"unknown stored collection kind {kind!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CollectionTypeSpec)
            and other.kind == self.kind
            and other.element == self.element
        )

    def __hash__(self) -> int:
        return hash(("coll", self.kind, self.element))


# Singleton instances for convenience in schema definitions.
INTEGER = IntegerType()
FLOAT = FloatType()
STRING = StringType()
BOOLEAN = BooleanType()
BYTES = BytesType()
DATE = DateType()
DATETIME = DateTimeType()
ANY = AnyType()


def ref(class_name: str) -> RefType:
    """Shorthand for a reference type to ``class_name``."""
    return RefType(class_name)


def set_of(element: TypeSpec) -> CollectionTypeSpec:
    return CollectionTypeSpec("set", element)


def bag_of(element: TypeSpec) -> CollectionTypeSpec:
    return CollectionTypeSpec("bag", element)


def list_of(element: TypeSpec) -> CollectionTypeSpec:
    return CollectionTypeSpec("list", element)


def dict_of(element: TypeSpec) -> CollectionTypeSpec:
    return CollectionTypeSpec("dict", element)
