"""The event layer (thesis §6.1.1).

Every state change in the database — object creation, attribute update,
deletion, relationship creation/removal, transaction boundaries — is
announced on an :class:`EventBus`.  The rules layer, the index layer and
the views layer are all subscribers; none of them is wired directly into
the object layer, which keeps the architecture layered as in Figure 26.

Events come in *before* and *after* flavours.  ``before_*`` subscribers
may veto the change by raising; ``after_*`` subscribers observe the
already-applied change.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..telemetry import DISABLED, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from .instances import PObject


class EventKind(enum.Enum):
    """Primitive event kinds raised by the object layer."""

    BEFORE_CREATE = "before_create"
    AFTER_CREATE = "after_create"
    BEFORE_UPDATE = "before_update"
    AFTER_UPDATE = "after_update"
    BEFORE_DELETE = "before_delete"
    AFTER_DELETE = "after_delete"
    BEFORE_RELATE = "before_relate"
    AFTER_RELATE = "after_relate"
    BEFORE_UNRELATE = "before_unrelate"
    AFTER_UNRELATE = "after_unrelate"
    BEFORE_COMMIT = "before_commit"
    AFTER_COMMIT = "after_commit"
    AFTER_ABORT = "after_abort"
    METHOD_CALL = "method_call"


@dataclass(slots=True)
class Event:
    """One event instance.

    Attributes:
        kind: the primitive event kind.
        target: the object concerned (None for transaction events).
        class_name: name of the target's class (relationship class name
            for relate/unrelate events).
        attribute: attribute name for update events.
        old_value / new_value: attribute transition for update events.
        origin / destination: endpoint objects for relate/unrelate events.
        payload: free-form extras (method name and args, etc.).
    """

    kind: EventKind
    target: "PObject | None" = None
    class_name: str = ""
    attribute: str = ""
    old_value: Any = None
    new_value: Any = None
    origin: "PObject | None" = None
    destination: "PObject | None" = None
    payload: dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatcher for :class:`Event`.

    Subscribers register for a set of kinds (or all kinds).  Dispatch is
    in registration order; an exception from a ``before_*`` subscriber
    propagates to the caller and thereby vetoes the change.
    """

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._subscribers: list[tuple[frozenset[EventKind] | None, Subscriber]] = []
        self._muted = 0
        self.published = 0
        #: Telemetry facade; swap in a live one to count publishes and
        #: time handlers.  Defaults to the shared disabled facade so the
        #: publish hot path pays exactly one branch when off.
        self.telemetry = telemetry if telemetry is not None else DISABLED

    def subscribe(
        self,
        handler: Subscriber,
        kinds: frozenset[EventKind] | set[EventKind] | None = None,
    ) -> Callable[[], None]:
        """Register ``handler``; returns an unsubscribe callable."""
        entry = (frozenset(kinds) if kinds is not None else None, handler)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to all matching subscribers, in order."""
        if self._muted:
            return
        self.published += 1
        tel = self.telemetry
        if not tel.enabled:
            for kinds, handler in list(self._subscribers):
                if kinds is None or event.kind in kinds:
                    handler(event)
            return
        registry = tel.registry
        registry.counter(
            "repro_events_published_total",
            help="Events published on the bus",
        ).inc()
        registry.counter(
            "repro_events_by_kind_total",
            {"kind": event.kind.value},
            help="Events published on the bus, by kind",
        ).inc()
        latency = registry.histogram(
            "repro_event_handler_ms",
            help="Per-subscriber event handling latency (ms)",
        )
        for kinds, handler in list(self._subscribers):
            if kinds is None or event.kind in kinds:
                started = time.perf_counter_ns()
                handler(event)
                latency.observe((time.perf_counter_ns() - started) / 1e6)

    class _Muted:
        def __init__(self, bus: "EventBus") -> None:
            self._bus = bus

        def __enter__(self) -> None:
            self._bus._muted += 1

        def __exit__(self, *exc: object) -> None:
            self._bus._muted -= 1

    def muted(self) -> "EventBus._Muted":
        """Context manager suppressing publication (bulk loads, recovery)."""
        return EventBus._Muted(self)
