"""Class metaobjects with multiple inheritance and extents.

A :class:`PClass` is the Prometheus metaobject for an ODMG class: a named
collection of attributes, methods and constraints plus a list of
superclasses (§4.2).  Classes are registered with a
:class:`~repro.core.schema.Schema`, which resolves superclass names, owns
extents and performs consistency checks.

Method resolution follows C3 linearization, the same algorithm Python
uses, so diamond hierarchies behave predictably.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..errors import AttributeUnknownError, SchemaError
from .attributes import Attribute, Method

if TYPE_CHECKING:  # pragma: no cover
    from ..rules.rule import Rule
    from .schema import Schema


def _c3_merge(sequences: list[list["PClass"]]) -> list["PClass"]:
    """C3 linearization merge; raises SchemaError on inconsistency."""
    result: list[PClass] = []
    seqs = [list(s) for s in sequences if s]
    while seqs:
        for seq in seqs:
            head = seq[0]
            if not any(head in s[1:] for s in seqs):
                break
        else:
            raise SchemaError(
                "inconsistent class hierarchy (C3 linearization failed): "
                + ", ".join(s[0].name for s in seqs)
            )
        result.append(head)
        for seq in seqs:
            if seq and seq[0] is head:
                del seq[0]
        seqs = [s for s in seqs if s]
    return result


class PClass:
    """Metaobject describing one Prometheus class.

    Instances of the class are :class:`~repro.core.instances.PObject`
    handles created through :meth:`Schema.create`.

    Args:
        name: unique class name within a schema.
        attributes: own (non-inherited) attribute declarations.
        methods: own method declarations.
        superclasses: names of direct superclasses (resolved at
            registration time; empty means the implicit root ``Object``).
        abstract: abstract classes cannot be instantiated.
        doc: human documentation.
    """

    def __init__(
        self,
        name: str,
        attributes: list[Attribute] | tuple[Attribute, ...] = (),
        methods: list[Method] | tuple[Method, ...] = (),
        superclasses: list[str] | tuple[str, ...] = (),
        abstract: bool = False,
        doc: str = "",
    ) -> None:
        if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
            raise SchemaError(f"invalid class name: {name!r}")
        self.name = name
        self.abstract = abstract
        self.doc = doc
        self._own_attributes: dict[str, Attribute] = {}
        for attr in attributes:
            if attr.name in self._own_attributes:
                raise SchemaError(
                    f"class {name!r}: duplicate attribute {attr.name!r}"
                )
            self._own_attributes[attr.name] = attr
        self._own_methods: dict[str, Method] = {}
        for method in methods:
            if method.name in self._own_methods:
                raise SchemaError(
                    f"class {name!r}: duplicate method {method.name!r}"
                )
            if method.name in self._own_attributes:
                raise SchemaError(
                    f"class {name!r}: {method.name!r} is both attribute and "
                    "method"
                )
            self._own_methods[method.name] = method
        self.superclass_names: tuple[str, ...] = tuple(superclasses)
        # Filled in by Schema.register_class:
        self.schema: "Schema | None" = None
        self.superclasses: tuple[PClass, ...] = ()
        self.subclasses: list[PClass] = []
        self._mro: tuple[PClass, ...] = ()
        self._all_attributes: dict[str, Attribute] | None = None
        self._all_methods: dict[str, Method] | None = None
        self.constraints: list["Rule"] = []

    # -- wiring (called by Schema) -------------------------------------------

    def _bind(self, schema: "Schema", supers: tuple["PClass", ...]) -> None:
        self.schema = schema
        self.superclasses = supers
        for sup in supers:
            sup.subclasses.append(self)
        self._mro = tuple(
            _c3_merge(
                [[self]]
                + [list(sup.mro) for sup in supers]
                + [list(supers)]
            )
        )
        self._all_attributes = None
        self._all_methods = None

    # -- introspection ---------------------------------------------------------

    @property
    def mro(self) -> tuple["PClass", ...]:
        """Method resolution order, most-derived first."""
        if not self._mro:
            return (self,)
        return self._mro

    def is_subclass_of(self, other: "PClass") -> bool:
        """True if ``self`` is ``other`` or inherits from it."""
        return other in self.mro

    def all_attributes(self) -> dict[str, Attribute]:
        """Own plus inherited attributes, most-derived declaration wins."""
        if self._all_attributes is None:
            merged: dict[str, Attribute] = {}
            for klass in reversed(self.mro):
                merged.update(klass._own_attributes)
            self._all_attributes = merged
        return self._all_attributes

    def all_methods(self) -> dict[str, Method]:
        if self._all_methods is None:
            merged: dict[str, Method] = {}
            for klass in reversed(self.mro):
                merged.update(klass._own_methods)
            self._all_methods = merged
        return self._all_methods

    def get_attribute(self, name: str) -> Attribute:
        try:
            return self.all_attributes()[name]
        except KeyError:
            raise AttributeUnknownError(self.name, name) from None

    def has_attribute(self, name: str) -> bool:
        return name in self.all_attributes()

    def get_method(self, name: str) -> Method:
        try:
            return self.all_methods()[name]
        except KeyError:
            raise AttributeUnknownError(self.name, name) from None

    def has_method(self, name: str) -> bool:
        return name in self.all_methods()

    def own_attributes(self) -> Iterator[Attribute]:
        return iter(self._own_attributes.values())

    def all_constraints(self) -> list["Rule"]:
        """Constraints of this class and all superclasses (nearest first)."""
        seen: list["Rule"] = []
        for klass in self.mro:
            seen.extend(klass.constraints)
        return seen

    def descendants(self) -> Iterator["PClass"]:
        """Yield this class and all (transitive) subclasses."""
        stack: list[PClass] = [self]
        visited: set[int] = set()
        while stack:
            klass = stack.pop()
            if id(klass) in visited:
                continue
            visited.add(id(klass))
            yield klass
            stack.extend(klass.subclasses)

    def defaults(self) -> dict[str, Any]:
        """Initial attribute values for a fresh instance."""
        return {
            name: attr.default for name, attr in self.all_attributes().items()
        }

    @property
    def is_relationship_class(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        supers = ",".join(s.name for s in self.superclasses) or "Object"
        return f"<PClass {self.name}({supers})>"
