"""Prometheus ODL: textual schema definition (ODMG's ODL role, §4.2).

The thesis's model is ODMG-based, and ODMG schemas are declared in ODL.
This module provides the Prometheus dialect, covering the extended
model's features — relationship classes with their full semantics::

    abstract class TaxonomicObject {};

    class Specimen extends TaxonomicObject {
        attribute string collector;
        attribute date collected;
        attribute set<string> duplicates;
    };

    class Name {
        attribute string epithet required;
        attribute integer year default 1753;
    };

    relationship HasType (Name -> Specimen) {
        kind association;
        attribute string type_kind required;
        inherit type_kind;
        participant designator Name;
    };

    relationship Includes (Name -> Specimen) {
        kind aggregation;
        shareable;
        cardinality max_out 100;
    };

Declarations are processed in order (superclasses before subclasses,
matching the thesis's "schema is code" stance); ``define_schema`` applies
a whole document to a :class:`~repro.core.schema.Schema`.
"""

from __future__ import annotations

import re
from typing import Any

from ..errors import SchemaError
from . import types as T
from .attributes import Attribute
from .classes import PClass
from .relationships import RelationshipClass
from .schema import Schema
from .semantics import Cardinality, RelationshipSemantics, RelKind


class OdlError(SchemaError):
    """ODL text could not be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>->|[{}();,<>=])
    """,
    re.VERBOSE,
)

_ATOMIC_TYPES = {
    "string": T.STRING,
    "integer": T.INTEGER,
    "int": T.INTEGER,
    "float": T.FLOAT,
    "double": T.FLOAT,
    "boolean": T.BOOLEAN,
    "bool": T.BOOLEAN,
    "bytes": T.BYTES,
    "date": T.DATE,
    "datetime": T.DATETIME,
    "any": T.ANY,
}

_COLLECTIONS = {"set": T.set_of, "bag": T.bag_of, "list": T.list_of,
                "dict": T.dict_of}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise OdlError(f"ODL: unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _OdlParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0

    # -- plumbing ---------------------------------------------------------

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._pos]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        if token[0] != "eof":
            self._pos += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._peek()
        if text != value:
            raise OdlError(f"ODL: expected {value!r}, got {text!r}")
        self._advance()

    def _ident(self, what: str) -> str:
        kind, text = self._peek()
        if kind != "ident":
            raise OdlError(f"ODL: expected {what}, got {text!r}")
        self._advance()
        return text

    def _match(self, value: str) -> bool:
        if self._peek()[1] == value:
            self._advance()
            return True
        return False

    # -- declarations ------------------------------------------------------------

    def parse(self) -> list[PClass]:
        declarations: list[PClass] = []
        while self._peek()[0] != "eof":
            kind, text = self._peek()
            if text == "abstract" or text == "class":
                declarations.append(self._class_decl())
            elif text == "relationship":
                declarations.append(self._relationship_decl())
            else:
                raise OdlError(
                    f"ODL: expected 'class' or 'relationship', got {text!r}"
                )
        return declarations

    def _class_decl(self) -> PClass:
        abstract = self._match("abstract")
        self._expect("class")
        name = self._ident("class name")
        supers: list[str] = []
        if self._match("extends"):
            supers.append(self._ident("superclass"))
            while self._match(","):
                supers.append(self._ident("superclass"))
        self._expect("{")
        attributes: list[Attribute] = []
        while not self._match("}"):
            attributes.append(self._attribute_decl())
        self._expect(";")
        return PClass(
            name,
            attributes=attributes,
            superclasses=tuple(supers),
            abstract=abstract,
        )

    def _attribute_decl(self) -> Attribute:
        self._expect("attribute")
        type_spec = self._type()
        attr_name = self._ident("attribute name")
        required = False
        default: Any = None
        while not self._match(";"):
            kind, text = self._peek()
            if text == "required":
                self._advance()
                required = True
            elif text == "default":
                self._advance()
                default = self._literal()
            else:
                raise OdlError(
                    f"ODL: unexpected token {text!r} in attribute declaration"
                )
        return Attribute(attr_name, type_spec, default=default,
                         required=required)

    def _type(self) -> T.TypeSpec:
        name = self._ident("type")
        if name in _ATOMIC_TYPES:
            return _ATOMIC_TYPES[name]
        if name in _COLLECTIONS:
            self._expect("<")
            element = self._type()
            self._expect(">")
            return _COLLECTIONS[name](element)
        if name == "ref":
            self._expect("<")
            target = self._ident("class name")
            self._expect(">")
            return T.ref(target)
        raise OdlError(f"ODL: unknown type {name!r}")

    def _literal(self) -> Any:
        kind, text = self._advance()
        if kind == "string":
            return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        if kind == "number":
            return float(text) if "." in text else int(text)
        if text == "true":
            return True
        if text == "false":
            return False
        if text == "null":
            return None
        raise OdlError(f"ODL: expected literal, got {text!r}")

    def _relationship_decl(self) -> RelationshipClass:
        self._expect("relationship")
        name = self._ident("relationship name")
        self._expect("(")
        origin = self._ident("origin class")
        self._expect("->")
        destination = self._ident("destination class")
        self._expect(")")
        supers: list[str] = []
        if self._match("extends"):
            supers.append(self._ident("superclass"))
            while self._match(","):
                supers.append(self._ident("superclass"))
        self._expect("{")
        attributes: list[Attribute] = []
        participants: dict[str, str] = {}
        inherited: list[str] = []
        flags: dict[str, Any] = {
            "kind": RelKind.ASSOCIATION,
            "exclusive": False,
            "shareable": False,
            "lifetime_dependent": False,
            "constant": False,
            "exclusivity_group": "",
        }
        cardinality: dict[str, int] = {}
        while not self._match("}"):
            kind, text = self._peek()
            if text == "attribute":
                attributes.append(self._attribute_decl())
                continue
            self._advance()
            if text == "kind":
                value = self._ident("'aggregation' or 'association'")
                try:
                    flags["kind"] = RelKind(value)
                except ValueError:
                    raise OdlError(f"ODL: unknown relationship kind {value!r}")
            elif text in ("exclusive", "shareable", "lifetime_dependent",
                          "constant"):
                flags[text] = True
            elif text == "exclusivity_group":
                kind2, group = self._advance()
                if kind2 != "string":
                    raise OdlError("ODL: exclusivity_group needs a string")
                flags["exclusivity_group"] = group[1:-1]
            elif text == "cardinality":
                bound = self._ident("cardinality bound")
                if bound not in ("min_out", "max_out", "min_in", "max_in"):
                    raise OdlError(f"ODL: unknown cardinality bound {bound!r}")
                kind2, value = self._advance()
                if kind2 != "number":
                    raise OdlError("ODL: cardinality bound needs a number")
                cardinality[bound] = int(value)
            elif text == "inherit":
                inherited.append(self._ident("attribute name"))
            elif text == "participant":
                role = self._ident("participant role")
                participants[role] = self._ident("participant class")
            else:
                raise OdlError(
                    f"ODL: unexpected token {text!r} in relationship body"
                )
            self._expect(";")
        self._expect(";")
        for inherited_name in inherited:
            if inherited_name not in {a.name for a in attributes}:
                raise OdlError(
                    f"ODL: {name}: inherit names unknown attribute "
                    f"{inherited_name!r}"
                )
        semantics = RelationshipSemantics(
            kind=flags["kind"],
            exclusive=flags["exclusive"],
            shareable=flags["shareable"],
            lifetime_dependent=flags["lifetime_dependent"],
            constant=flags["constant"],
            inherited_attributes=tuple(inherited),
            cardinality=Cardinality(**cardinality),
            exclusivity_group=flags["exclusivity_group"],
        )
        return RelationshipClass(
            name,
            origin,
            destination,
            semantics=semantics,
            attributes=attributes,
            superclasses=tuple(supers),
            participants=participants,
        )


def parse_odl(text: str) -> list[PClass]:
    """Parse ODL text into unregistered class metaobjects, in order."""
    return _OdlParser(text).parse()


def define_schema(schema: Schema, text: str) -> list[PClass]:
    """Parse ODL and register every declaration on ``schema``."""
    declarations = parse_odl(text)
    for declaration in declarations:
        schema.register_class(declaration)
    return declarations
