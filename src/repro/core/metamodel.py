"""Meta-model introspection (thesis Figure 14 / Figure 28).

Prometheus exposes its own schema as data: classes, attributes, methods,
relationship classes and their semantics can all be inspected, serialized
and compared.  The query layer uses this for type checking; the HTTP
server exposes it to clients; the test suite uses it to assert schema
shape.
"""

from __future__ import annotations

from typing import Any

from .classes import PClass
from .relationships import RelationshipClass
from .schema import Schema
from .types import CollectionTypeSpec, RefType


def describe_type(spec: Any) -> dict[str, Any]:
    """Describe a :class:`TypeSpec` as a plain dict."""
    if isinstance(spec, RefType):
        return {"kind": "ref", "target": spec.class_name}
    if isinstance(spec, CollectionTypeSpec):
        return {
            "kind": "collection",
            "collection": spec.kind,
            "element": describe_type(spec.element),
        }
    return {"kind": "atomic", "name": spec.name}


def describe_class(pclass: PClass) -> dict[str, Any]:
    """Describe one class metaobject as a plain dict."""
    info: dict[str, Any] = {
        "name": pclass.name,
        "abstract": pclass.abstract,
        "doc": pclass.doc,
        "superclasses": [s.name for s in pclass.superclasses],
        "attributes": {
            name: {
                "type": describe_type(attr.type_spec),
                "required": attr.required,
                "doc": attr.doc,
            }
            for name, attr in pclass.all_attributes().items()
        },
        "methods": sorted(pclass.all_methods()),
        "constraints": [rule.name for rule in pclass.constraints],
    }
    if isinstance(pclass, RelationshipClass):
        sem = pclass.semantics
        info["relationship"] = {
            "origin": pclass.origin_class_name,
            "destination": pclass.destination_class_name,
            "kind": sem.kind.value,
            "exclusive": sem.exclusive,
            "shareable": sem.shareable,
            "lifetime_dependent": sem.lifetime_dependent,
            "constant": sem.constant,
            "directed": sem.directed,
            "inherited_attributes": list(sem.inherited_attributes),
            "cardinality": {
                "min_out": sem.cardinality.min_out,
                "max_out": sem.cardinality.max_out,
                "min_in": sem.cardinality.min_in,
                "max_in": sem.cardinality.max_in,
            },
        }
    return info


def describe_schema(schema: Schema) -> dict[str, Any]:
    """Snapshot the whole schema (classes + instance counts)."""
    return {
        "name": schema.name,
        "classes": {
            pclass.name: describe_class(pclass) for pclass in schema.classes()
        },
        "counts": {
            pclass.name: schema.count(pclass.name, polymorphic=False)
            for pclass in schema.classes()
        },
    }


def diff_schemas(a: Schema, b: Schema) -> list[str]:
    """Human-readable structural differences between two schemas."""
    da, db = describe_schema(a)["classes"], describe_schema(b)["classes"]
    problems: list[str] = []
    for name in sorted(set(da) | set(db)):
        if name not in da:
            problems.append(f"class {name!r} only in {b.name}")
        elif name not in db:
            problems.append(f"class {name!r} only in {a.name}")
        else:
            ca, cb = da[name], db[name]
            if ca["superclasses"] != cb["superclasses"]:
                problems.append(f"class {name!r}: different superclasses")
            attrs_a, attrs_b = set(ca["attributes"]), set(cb["attributes"])
            for missing in sorted(attrs_a - attrs_b):
                problems.append(f"class {name!r}: attribute {missing!r} only in {a.name}")
            for missing in sorted(attrs_b - attrs_a):
                problems.append(f"class {name!r}: attribute {missing!r} only in {b.name}")
            for common in sorted(attrs_a & attrs_b):
                if ca["attributes"][common]["type"] != cb["attributes"][common]["type"]:
                    problems.append(
                        f"class {name!r}: attribute {common!r} has different types"
                    )
            if ca.get("relationship") != cb.get("relationship"):
                problems.append(f"class {name!r}: different relationship semantics")
    return problems
