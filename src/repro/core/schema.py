"""The schema: class registry, object table, extents and transactions.

A :class:`Schema` is the live database session.  It owns:

* the **class registry** — Prometheus classes and relationship classes,
  rooted at the implicit ``Object`` class (ODMG's inheritance root, §4.2);
* the **object table** — every live :class:`~repro.core.instances.PObject`
  handle, keyed by OID, loaded eagerly from the persistent store on open;
* **extents** — per-class instance sets, queried polymorphically;
* the **relationship registry** — edge indexes and semantics enforcement;
* the **event bus** — every mutation is announced for rules/views/indexes;
* the **undo journal** — in-memory rollback for :meth:`abort`, independent
  of whether a persistent store is attached;
* the **synonym registry** (§4.5).

Persistence model: schema *definitions* live in application code (the
ODMG ODL role); the store holds *instances* only.  ``commit()`` writes all
dirty objects and tombstones in one storage transaction; ``abort()``
rolls back in-memory state via the journal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import (
    InstanceDeletedError,
    SchemaError,
    TransactionError,
    UnknownOidError,
)
from ..storage.store import ObjectStore
from .attributes import Attribute
from .classes import PClass
from .events import Event, EventBus, EventKind
from .identity import OidAllocator
from .instances import PObject
from .relationships import (
    DESTINATION_KEY,
    ORIGIN_KEY,
    PARTICIPANTS_KEY,
    RelationshipClass,
    RelationshipInstance,
    RelationshipRegistry,
)
from .synonyms import SynonymRegistry
from .types import RefType

if TYPE_CHECKING:  # pragma: no cover
    pass

_META_CLASS = "__meta__"


class _Journal:
    """Undo log for in-memory rollback between commits."""

    def __init__(self) -> None:
        self._entries: list[Callable[[], None]] = []

    def record(self, undo: Callable[[], None]) -> None:
        self._entries.append(undo)

    def clear(self) -> None:
        self._entries.clear()

    def rollback(self) -> None:
        for undo in reversed(self._entries):
            undo()
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class TxnScope:
    """Journal scope for one managed transaction's replay.

    While a scope is active on the schema, every undo entry and every
    touched object is captured here instead of in the implicit-session
    journal, so a failed managed commit rolls back exactly the ops it
    replayed — the implicit session's own pending changes survive.
    ``touched`` is also what the transaction manager flushes and
    version-stamps after a successful replay.
    """

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        self.journal = _Journal()
        #: Every object the replay created, updated, deleted, related or
        #: unrelated (including cascade-deleted dependents), by OID.
        self.touched: dict[int, PObject] = {}

    def note(self, obj: PObject) -> None:
        self.touched.setdefault(obj.oid, obj)

    def rollback(self) -> None:
        """Undo the scope's ops (idempotent: the journal self-clears).

        Undo closures restore object table, extents, relationship
        indexes and pending-delete bookkeeping.  An attribute-update
        undo leaves its object in the dirty set; that costs at most one
        redundant (value-identical) write at a later commit, never
        corruption.
        """
        self.journal.rollback()


class Schema:
    """A live Prometheus database session.

    Args:
        store: persistent backing store, or None for a purely in-memory
            database (examples, tests, raw-model benchmarks).
        name: label used in diagnostics.
    """

    def __init__(self, store: ObjectStore | None = None, name: str = "db") -> None:
        self.name = name
        self.store = store
        self.events = EventBus()
        self.synonyms = SynonymRegistry()
        #: Free-form storable payloads persisted with the schema metadata
        #: record; higher layers (classifications, views) keep their
        #: registries here.
        self.meta_extras: dict[str, Any] = {}
        #: Bumped on every class registration; part of the query-plan
        #: cache key so cached plans never survive schema evolution.
        self.version = 0
        self.relationships = RelationshipRegistry(self)
        self._classes: dict[str, PClass] = {}
        self._objects: dict[int, PObject] = {}
        self._extents: dict[str, set[int]] = {}
        self._dirty: dict[int, PObject] = {}
        self._pending_deletes: dict[int, PObject] = {}
        self._journal = _Journal()
        self._scope: TxnScope | None = None
        self._allocator = OidAllocator()
        self._meta_oid: int | None = None
        #: MVCC hook (set by the engine): called after every implicit
        #: commit with ``(records, deleted_oids, (meta_oid, meta_record)
        #: | None)`` so the version chains track direct schema commits
        #: too — including ones that bypass the transaction manager.
        self._mvcc_sink: Callable[
            [dict[int, dict[str, Any]], list[int], tuple[int, dict[str, Any]] | None],
            None,
        ] | None = None
        root = PClass("Object", abstract=True, doc="ODMG inheritance root")
        self._register_root(root)
        if store is not None:
            self._allocator = None  # type: ignore[assignment]  # store allocates

    # ------------------------------------------------------------------
    # class registry
    # ------------------------------------------------------------------

    def _register_root(self, root: PClass) -> None:
        root._bind(self, ())
        self._classes[root.name] = root
        self._extents[root.name] = set()

    def register_class(self, pclass: PClass) -> PClass:
        """Register a class (or relationship class) with the schema.

        Superclass names must already be registered.  Returns the class
        for chaining.
        """
        if pclass.name in self._classes:
            raise SchemaError(f"class {pclass.name!r} already registered")
        super_names = pclass.superclass_names or ("Object",)
        supers: list[PClass] = []
        for super_name in super_names:
            try:
                sup = self._classes[super_name]
            except KeyError:
                raise SchemaError(
                    f"class {pclass.name!r}: unknown superclass "
                    f"{super_name!r}"
                ) from None
            supers.append(sup)
        if isinstance(pclass, RelationshipClass):
            for sup in supers:
                if sup.name != "Object" and not isinstance(
                    sup, RelationshipClass
                ):
                    raise SchemaError(
                        f"relationship class {pclass.name!r} cannot inherit "
                        f"from plain class {sup.name!r}"
                    )
        else:
            for sup in supers:
                if isinstance(sup, RelationshipClass):
                    raise SchemaError(
                        f"plain class {pclass.name!r} cannot inherit from "
                        f"relationship class {sup.name!r}"
                    )
        pclass._bind(self, tuple(supers))
        self._classes[pclass.name] = pclass
        self._extents[pclass.name] = set()
        self.version += 1
        return pclass

    def define_class(
        self,
        name: str,
        attributes: list[Attribute] | tuple[Attribute, ...] = (),
        **kwargs: Any,
    ) -> PClass:
        """Convenience: build and register a :class:`PClass` in one call."""
        return self.register_class(PClass(name, attributes=attributes, **kwargs))

    def define_relationship(
        self,
        name: str,
        origin: str,
        destination: str,
        **kwargs: Any,
    ) -> RelationshipClass:
        """Convenience: build and register a :class:`RelationshipClass`."""
        return self.register_class(  # type: ignore[return-value]
            RelationshipClass(name, origin, destination, **kwargs)
        )

    def get_class(self, name: str) -> PClass:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def classes(self) -> Iterator[PClass]:
        return iter(self._classes.values())

    def relationship_classes(self) -> Iterator[RelationshipClass]:
        for klass in self._classes.values():
            if isinstance(klass, RelationshipClass):
                yield klass

    # ------------------------------------------------------------------
    # OIDs
    # ------------------------------------------------------------------

    def _new_oid(self) -> int:
        if self.store is not None:
            return self.store.new_oid()
        return self._allocator.allocate()

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def create(
        self, class_name: str, *, _oid: int | None = None, **attrs: Any
    ) -> PObject:
        """Create a new instance of ``class_name`` with initial attributes.

        ``_oid`` lets the transaction layer replay a creation under the
        OID it already promised the client; normal callers omit it.
        """
        pclass = self.get_class(class_name)
        if pclass.abstract:
            raise SchemaError(f"class {class_name!r} is abstract")
        if isinstance(pclass, RelationshipClass):
            raise SchemaError(
                f"use relate() to create instances of relationship class "
                f"{class_name!r}"
            )
        oid = self._new_oid() if _oid is None else _oid
        obj = PObject(oid, pclass, self, pclass.defaults())
        self.events.publish(
            Event(
                kind=EventKind.BEFORE_CREATE,
                target=obj,
                class_name=class_name,
                payload={"attrs": attrs},
            )
        )
        self._install(obj)
        try:
            for name, value in attrs.items():
                obj.set(name, value)
            # Required attributes without defaults must now hold a value.
            for name, attr in pclass.all_attributes().items():
                if attr.required and obj.get(name) is None:
                    raise SchemaError(
                        f"{class_name}.{name} is required but was not given"
                    )
            self.events.publish(
                Event(
                    kind=EventKind.AFTER_CREATE,
                    target=obj,
                    class_name=class_name,
                )
            )
        except Exception:
            self._uninstall(obj)
            raise
        self._record_undo(lambda: self._uninstall(obj), obj)
        return obj

    def _install(self, obj: PObject) -> None:
        self._objects[obj.oid] = obj
        self._extents[obj.pclass.name].add(obj.oid)
        self._dirty[obj.oid] = obj
        obj._dirty = True

    def _uninstall(self, obj: PObject) -> None:
        self._objects.pop(obj.oid, None)
        self._extents[obj.pclass.name].discard(obj.oid)
        self._dirty.pop(obj.oid, None)
        obj._mark_deleted()

    def get_object(self, oid: int) -> PObject:
        """Return the live handle for ``oid``."""
        try:
            obj = self._objects[oid]
        except KeyError:
            raise UnknownOidError(oid) from None
        if obj.deleted:
            raise InstanceDeletedError(f"object {oid} is deleted")
        return obj

    def has_object(self, oid: int) -> bool:
        obj = self._objects.get(oid)
        return obj is not None and not obj.deleted

    def delete(self, obj: PObject, cascade: bool = True) -> None:
        """Delete an object, honouring lifetime dependency (§4.4.4).

        All relationship instances touching the object are removed.  For
        each outgoing edge of a *lifetime-dependent* aggregation class,
        the destination part is deleted too (recursively) — unless
        ``cascade`` is False, in which case a dependent part blocks the
        deletion with an error.
        """
        if obj.deleted:
            return
        if isinstance(obj, RelationshipInstance):
            self.unrelate(obj)
            return
        self.events.publish(
            Event(
                kind=EventKind.BEFORE_DELETE,
                target=obj,
                class_name=obj.pclass.name,
            )
        )
        dependents: list[PObject] = []
        for rel in self.relationships.outgoing(obj.oid):
            if rel.relationship_class.semantics.lifetime_dependent:
                if not cascade:
                    raise SchemaError(
                        f"object {obj.oid} has lifetime-dependent parts; "
                        "delete with cascade=True"
                    )
                dependents.append(rel.destination_object())
        for rel in self.relationships.touching(obj.oid):
            self.unrelate(rel, _force=True)
        self._remove_object(obj)
        for part in dependents:
            # A shared part could have been reached twice; skip dead ones.
            if not part.deleted:
                self.delete(part, cascade=True)
        self.events.publish(
            Event(
                kind=EventKind.AFTER_DELETE,
                target=obj,
                class_name=obj.pclass.name,
            )
        )

    def _delete_needs_tracking(self, oid: int) -> bool:
        """Whether a deletion must survive until the next commit.

        Store-backed deletions are tracked when the store still holds
        the oid (so the commit can tombstone it).  In-memory schemas
        with an MVCC sink track every deletion: the version chains may
        hold a committed version that needs a tombstone, and a spurious
        tombstone for a never-committed oid reads as absence anyway.
        """
        if self.store is not None:
            return oid in self.store
        return self._mvcc_sink is not None

    def _remove_object(self, obj: PObject) -> None:
        self._extents[obj.pclass.name].discard(obj.oid)
        self._dirty.pop(obj.oid, None)
        if self._delete_needs_tracking(obj.oid):
            self._pending_deletes[obj.oid] = obj
        self._objects.pop(obj.oid, None)
        obj._mark_deleted()
        self.synonyms.forget(obj.oid)

        def undo() -> None:
            obj._deleted = False
            self._objects[obj.oid] = obj
            self._extents[obj.pclass.name].add(obj.oid)
            self._dirty[obj.oid] = obj
            self._pending_deletes.pop(obj.oid, None)

        self._record_undo(undo, obj)

    # ------------------------------------------------------------------
    # relationships
    # ------------------------------------------------------------------

    def relate(
        self,
        relationship: str,
        origin: PObject,
        destination: PObject,
        participants: dict[str, PObject] | None = None,
        _oid: int | None = None,
        **attrs: Any,
    ) -> RelationshipInstance:
        """Create a relationship instance origin → destination.

        ``participants`` fills the named extra endpoints of an n-ary
        relationship class (Figure 10's dotted arrows).  ``_oid`` lets
        the transaction layer replay under a preallocated OID.
        """
        relclass = self.get_class(relationship)
        if not isinstance(relclass, RelationshipClass):
            raise SchemaError(f"{relationship!r} is not a relationship class")
        if relclass.abstract:
            raise SchemaError(f"relationship class {relationship!r} is abstract")
        origin._require_live()
        destination._require_live()
        for obj in (participants or {}).values():
            obj._require_live()
        self.relationships.check_creation(
            relclass, origin, destination, participants
        )
        self.events.publish(
            Event(
                kind=EventKind.BEFORE_RELATE,
                class_name=relationship,
                origin=origin,
                destination=destination,
                payload={"attrs": attrs},
            )
        )
        oid = self._new_oid() if _oid is None else _oid
        rel = RelationshipInstance(
            oid,
            relclass,
            self,
            relclass.defaults(),
            origin_oid=origin.oid,
            destination_oid=destination.oid,
            participant_oids={
                role: obj.oid for role, obj in (participants or {}).items()
            },
        )
        self._objects[oid] = rel
        self._extents[relclass.name].add(oid)
        self._dirty[oid] = rel
        rel._dirty = True
        self.relationships.index(rel)
        try:
            # Constant relationship classes still allow initial attributes.
            for name, value in attrs.items():
                PObject.set(rel, name, value)
            self.events.publish(
                Event(
                    kind=EventKind.AFTER_RELATE,
                    target=rel,
                    class_name=relationship,
                    origin=origin,
                    destination=destination,
                )
            )
        except Exception:
            self.relationships.unindex(rel)
            self._uninstall(rel)
            raise

        def undo() -> None:
            self.relationships.unindex(rel)
            self._uninstall(rel)

        self._record_undo(undo, rel)
        return rel

    def unrelate(self, rel: RelationshipInstance, _force: bool = False) -> None:
        """Remove a relationship instance (checks constancy unless forced).

        ``_force`` is used internally when deleting an endpoint object:
        an object deletion removes even constant edges, since a dangling
        edge would be worse.
        """
        if rel.deleted:
            return
        if not _force:
            self.relationships.check_removal(rel)
        self.events.publish(
            Event(
                kind=EventKind.BEFORE_UNRELATE,
                target=rel,
                class_name=rel.pclass.name,
                origin=self._objects.get(rel.origin_oid),
                destination=self._objects.get(rel.destination_oid),
            )
        )
        self.relationships.unindex(rel)
        self._extents[rel.pclass.name].discard(rel.oid)
        self._dirty.pop(rel.oid, None)
        if self._delete_needs_tracking(rel.oid):
            self._pending_deletes[rel.oid] = rel
        self._objects.pop(rel.oid, None)
        rel._mark_deleted()

        def undo() -> None:
            rel._deleted = False
            self._objects[rel.oid] = rel
            self._extents[rel.pclass.name].add(rel.oid)
            self._dirty[rel.oid] = rel
            self._pending_deletes.pop(rel.oid, None)
            self.relationships.index(rel)

        self._record_undo(undo, rel)
        self.events.publish(
            Event(
                kind=EventKind.AFTER_UNRELATE,
                target=rel,
                class_name=rel.pclass.name,
            )
        )

    # ------------------------------------------------------------------
    # extents
    # ------------------------------------------------------------------

    def extent(self, class_name: str, polymorphic: bool = True) -> list[PObject]:
        """Instances of ``class_name`` (and subclasses unless disabled)."""
        pclass = self.get_class(class_name)
        oids: set[int] = set()
        if polymorphic:
            for klass in pclass.descendants():
                oids |= self._extents.get(klass.name, set())
        else:
            oids |= self._extents.get(class_name, set())
        return [self._objects[oid] for oid in sorted(oids) if oid in self._objects]

    def count(self, class_name: str, polymorphic: bool = True) -> int:
        pclass = self.get_class(class_name)
        if polymorphic:
            return sum(
                len(self._extents.get(k.name, ())) for k in pclass.descendants()
            )
        return len(self._extents.get(class_name, ()))

    def all_objects(self) -> Iterator[PObject]:
        for oid in sorted(self._objects):
            yield self._objects[oid]

    # ------------------------------------------------------------------
    # dirtiness / transactions
    # ------------------------------------------------------------------

    def _note_dirty(self, obj: PObject) -> None:
        self._dirty[obj.oid] = obj

    def _record_undo(self, undo: Callable[[], None], obj: PObject) -> None:
        """Journal one undo step into the active scope (or the implicit
        session's journal when no managed transaction is replaying)."""
        scope = self._scope
        if scope is None:
            self._journal.record(undo)
        else:
            scope.note(obj)
            scope.journal.record(undo)

    # -- managed-transaction scopes (repro.concurrency) ------------------

    def begin_txn_scope(self) -> TxnScope:
        """Route journal entries into a fresh per-transaction scope.

        Used by the transaction manager while replaying a managed
        transaction's ops; exactly one scope can be active (replays are
        serialized behind the manager's commit lock).
        """
        if self._scope is not None:
            raise TransactionError("a transaction scope is already active")
        self._scope = TxnScope(self)
        return self._scope

    def end_txn_scope(self) -> None:
        self._scope = None

    @property
    def in_txn_scope(self) -> bool:
        return self._scope is not None

    def _journal_update(self, obj: PObject, attr: str, old: Any) -> None:
        def undo() -> None:
            if not obj.deleted:
                obj._values[attr] = old

        self._record_undo(undo, obj)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def commit(self) -> None:
        """Persist all pending changes; clears the undo journal.

        This is the *implicit session's* commit: direct mutations made
        through the schema API outside any managed transaction.  Managed
        transactions commit through their
        :class:`~repro.concurrency.TransactionManager` instead.
        """
        if self._scope is not None:
            raise TransactionError(
                "cannot commit the implicit session while a managed "
                "transaction is replaying"
            )
        self.events.publish(Event(kind=EventKind.BEFORE_COMMIT))
        sink = self._mvcc_sink
        records: dict[int, Any] = {}
        meta: tuple[int, dict[str, Any]] | None = None
        changed = bool(
            self._dirty or self._pending_deletes or self._meta_dirty()
        )
        if changed and (self.store is not None or sink is not None):
            records = {
                obj.oid: self._to_record(obj) for obj in self._dirty.values()
            }
        if self.store is not None and changed:
            with self.store.begin() as txn:
                for oid, record in records.items():
                    txn.write(oid, record)
                for oid in self._pending_deletes:
                    if oid in self.store:
                        txn.delete(oid)
                meta = self._write_meta(txn)
        elif sink is not None and changed:
            meta_record = self._meta_record()
            if meta_record is not None:
                if self._meta_oid is None:
                    self._meta_oid = self._new_oid()
                meta = (self._meta_oid, meta_record)
        deleted = list(self._pending_deletes)
        for obj in self._dirty.values():
            obj._mark_clean()
        self._dirty.clear()
        self._pending_deletes.clear()
        self._journal.clear()
        if sink is not None and changed:
            sink(records, deleted, meta)
        self.events.publish(Event(kind=EventKind.AFTER_COMMIT))

    def abort(self) -> None:
        """Discard all pending changes, restoring in-memory state.

        With a managed-transaction scope active, only that scope's
        replayed ops are rolled back (the rule engine calls this when a
        deferred rule vetoes the committing transaction); the implicit
        session's own pending changes are untouched.
        """
        scope = self._scope
        if scope is not None:
            scope.rollback()
            return
        self._journal.rollback()
        for obj in list(self._dirty.values()):
            obj._mark_clean()
        self._dirty.clear()
        self._pending_deletes.clear()
        self.events.publish(Event(kind=EventKind.AFTER_ABORT))

    # ------------------------------------------------------------------
    # persistence mapping
    # ------------------------------------------------------------------

    def _to_record(self, obj: PObject) -> dict[str, Any]:
        values: dict[str, Any] = {}
        for name, attr in obj.pclass.all_attributes().items():
            raw = obj._values.get(name)
            values[name] = attr.type_spec.to_storable(raw)
        record: dict[str, Any] = {"class": obj.pclass.name, "values": values}
        if isinstance(obj, RelationshipInstance):
            record[ORIGIN_KEY] = obj.origin_oid
            record[DESTINATION_KEY] = obj.destination_oid
            if obj.participant_oids:
                record[PARTICIPANTS_KEY] = dict(obj.participant_oids)
        return record

    def _from_record(self, oid: int, record: dict[str, Any]) -> PObject:
        pclass = self.get_class(record["class"])
        values: dict[str, Any] = {}
        for name, attr in pclass.all_attributes().items():
            raw = record["values"].get(name)
            if isinstance(attr.type_spec, RefType):
                values[name] = raw  # keep OidRef; resolve via get_ref
            else:
                values[name] = attr.type_spec.from_storable(raw, self)
        if isinstance(pclass, RelationshipClass):
            stored_participants = record.get(PARTICIPANTS_KEY) or {}
            return RelationshipInstance(
                oid,
                pclass,
                self,
                values,
                origin_oid=int(record[ORIGIN_KEY]),
                destination_oid=int(record[DESTINATION_KEY]),
                participant_oids={
                    str(role): int(p_oid)
                    for role, p_oid in stored_participants.items()
                },
            )
        return PObject(oid, pclass, self, values)

    def _meta_dirty(self) -> bool:
        return (
            bool(self.synonyms.sets())
            or bool(self.meta_extras)
            or self._meta_oid is not None
        )

    def _meta_record(self) -> dict[str, Any] | None:
        data = self.synonyms.to_storable()
        if not data and not self.meta_extras and self._meta_oid is None:
            return None
        return {
            "class": _META_CLASS,
            "synonyms": data,
            "extras": dict(self.meta_extras),
        }

    def _write_meta(self, txn: Any) -> tuple[int, dict[str, Any]] | None:
        record = self._meta_record()
        if record is None:
            return None
        if self._meta_oid is None:
            self._meta_oid = self.store.new_oid()  # type: ignore[union-attr]
        txn.write(self._meta_oid, record)
        return (self._meta_oid, record)

    def load_all(self) -> int:
        """Load every stored object into the session (call after classes
        are registered).  Returns the number of objects loaded."""
        if self.store is None:
            return 0
        loaded = 0
        relationship_instances: list[RelationshipInstance] = []
        with self.events.muted():
            for oid, record in self.store.items():
                if record.get("class") == _META_CLASS:
                    self._meta_oid = oid
                    self.synonyms.load_storable(record.get("synonyms", []))
                    extras = record.get("extras", {})
                    if isinstance(extras, dict):
                        self.meta_extras.update(extras)
                    continue
                obj = self._from_record(oid, record)
                self._objects[oid] = obj
                self._extents[obj.pclass.name].add(oid)
                if isinstance(obj, RelationshipInstance):
                    relationship_instances.append(obj)
                loaded += 1
            for rel in relationship_instances:
                self.relationships.index(rel)
        return loaded

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def check_integrity(self) -> list[str]:
        """Deferred integrity check: cardinality minima, dangling edges."""
        problems = self.relationships.minimum_cardinality_violations()
        for klass in self.relationship_classes():
            for rel in self.relationships.instances_of(klass.name, polymorphic=False):
                for endpoint in (rel.origin_oid, rel.destination_oid):
                    if not self.has_object(endpoint):
                        problems.append(
                            f"{klass.name} instance {rel.oid}: dangling "
                            f"endpoint {endpoint}"
                        )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Schema {self.name}: {len(self._classes)} classes, "
            f"{len(self._objects)} objects>"
        )
