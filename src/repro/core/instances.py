"""Live object handles (the object layer, thesis §6.1.2).

A :class:`PObject` is the in-memory handle for one persistent object.  It
holds the current attribute values, validates assignments against the
class metaobject, publishes events around every change, and tracks
dirtiness so the schema can write only modified objects at commit.

Attribute access is explicit (``obj.get("name")`` / ``obj.set(...)``) with
item-style sugar (``obj["name"]``); we deliberately avoid ``__getattr__``
magic per the style guide's "avoid the magical wand".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..errors import (
    AttributeUnknownError,
    InstanceDeletedError,
    TypeCheckError,
)
from .events import Event, EventKind
from .types import RefType

if TYPE_CHECKING:  # pragma: no cover
    from .classes import PClass
    from .relationships import RelationshipInstance
    from .schema import Schema


class PObject:
    """Handle for one persistent Prometheus object.

    Never constructed directly — use :meth:`Schema.create` (new object) or
    :meth:`Schema.get_object` (load existing).
    """

    __slots__ = ("oid", "pclass", "schema", "_values", "_dirty", "_deleted")

    def __init__(
        self,
        oid: int,
        pclass: "PClass",
        schema: "Schema",
        values: dict[str, Any],
    ) -> None:
        self.oid = oid
        self.pclass = pclass
        self.schema = schema
        self._values = values
        self._dirty = False
        self._deleted = False

    # -- state flags -----------------------------------------------------------

    @property
    def dirty(self) -> bool:
        return self._dirty

    @property
    def deleted(self) -> bool:
        return self._deleted

    def _require_live(self) -> None:
        if self._deleted:
            raise InstanceDeletedError(
                f"object {self.oid} ({self.pclass.name}) is deleted"
            )

    def _mark_dirty(self) -> None:
        self._dirty = True
        self.schema._note_dirty(self)

    def _mark_clean(self) -> None:
        self._dirty = False

    def _mark_deleted(self) -> None:
        self._deleted = True

    # -- attribute access --------------------------------------------------------

    def get(self, name: str) -> Any:
        """Return an attribute value (own, inherited or role-acquired).

        Role-acquired attributes (§4.4.5, attribute inheritance from
        relationships) are consulted when the class itself does not
        declare the attribute.
        """
        self._require_live()
        if self.pclass.has_attribute(name):
            return self._values.get(name)
        inherited = self.schema.relationships.inherited_attribute(self, name)
        if inherited is not _MISSING:
            return inherited
        raise AttributeUnknownError(self.pclass.name, name)

    def get_ref(self, name: str) -> "PObject | None":
        """Like :meth:`get` but resolves a stored reference to a handle."""
        value = self.get(name)
        attr = self.pclass.get_attribute(name)
        if isinstance(attr.type_spec, RefType):
            return attr.type_spec.from_storable(value, self.schema)
        return value

    def set(self, name: str, value: Any) -> None:
        """Assign an attribute, with validation, events and constraints."""
        self._require_live()
        attr = self.pclass.get_attribute(name)
        attr.validate(value)
        if isinstance(attr.type_spec, RefType):
            attr.type_spec.validate_against(value, self.schema)
            value = attr.type_spec.to_storable(value)
        old = self._values.get(name)
        if old == value and type(old) is type(value):
            return
        bus = self.schema.events
        bus.publish(
            Event(
                kind=EventKind.BEFORE_UPDATE,
                target=self,
                class_name=self.pclass.name,
                attribute=name,
                old_value=old,
                new_value=value,
            )
        )
        self._values[name] = value
        self._mark_dirty()
        self.schema._journal_update(self, name, old)
        try:
            bus.publish(
                Event(
                    kind=EventKind.AFTER_UPDATE,
                    target=self,
                    class_name=self.pclass.name,
                    attribute=name,
                    old_value=old,
                    new_value=value,
                )
            )
        except Exception:
            # An after-update veto (immediate constraint) rolls the single
            # assignment back before propagating.
            self._values[name] = old
            raise

    def update(self, **values: Any) -> "PObject":
        """Assign several attributes; returns self for chaining."""
        for name, value in values.items():
            self.set(name, value)
        return self

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __setitem__(self, name: str, value: Any) -> None:
        self.set(name, value)

    def attributes(self) -> Iterator[tuple[str, Any]]:
        """Iterate declared (name, value) pairs."""
        self._require_live()
        for name in self.pclass.all_attributes():
            yield name, self._values.get(name)

    def to_dict(self) -> dict[str, Any]:
        """Plain dict snapshot of declared attribute values."""
        return dict(self.attributes())

    # -- methods -------------------------------------------------------------

    def call(self, method_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a declared method, publishing a METHOD_CALL event."""
        self._require_live()
        method = self.pclass.get_method(method_name)
        self.schema.events.publish(
            Event(
                kind=EventKind.METHOD_CALL,
                target=self,
                class_name=self.pclass.name,
                attribute=method_name,
                payload={"args": args, "kwargs": kwargs},
            )
        )
        return method(self, *args, **kwargs)

    # -- relationships ----------------------------------------------------------

    def outgoing(
        self, relationship: str | None = None
    ) -> list["RelationshipInstance"]:
        """Relationship instances whose origin is this object."""
        return self.schema.relationships.outgoing(self.oid, relationship)

    def incoming(
        self, relationship: str | None = None
    ) -> list["RelationshipInstance"]:
        """Relationship instances whose destination is this object."""
        return self.schema.relationships.incoming(self.oid, relationship)

    def related(
        self, relationship: str, direction: str = "out"
    ) -> list["PObject"]:
        """Objects reached through one hop of ``relationship``.

        ``direction`` is ``"out"`` (follow origin→destination) or ``"in"``
        (follow destination→origin).
        """
        if direction == "out":
            return [r.destination_object() for r in self.outgoing(relationship)]
        if direction == "in":
            return [r.origin_object() for r in self.incoming(relationship)]
        raise TypeCheckError(f"direction must be 'out' or 'in', got {direction!r}")

    # -- lifecycle ----------------------------------------------------------------

    def delete(self, cascade: bool = True) -> None:
        """Delete this object via the schema (see :meth:`Schema.delete`)."""
        self.schema.delete(self, cascade=cascade)

    # -- identity ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PObject) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(("pobject", self.oid))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flag = " deleted" if self._deleted else (" dirty" if self._dirty else "")
        return f"<{self.pclass.name} oid={self.oid}{flag}>"


class _Missing:
    """Sentinel distinct from None for 'attribute not found'."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
