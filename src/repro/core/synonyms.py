"""Instance synonyms (thesis §4.5).

Taxonomy sometimes needs two distinct instances to be declared *the same
entity seen differently* — e.g. one specimen recorded independently by two
herbaria.  Prometheus supports this with *instance synonyms*: a
partitioning of OIDs into synonym sets.  Queries may then resolve an
object to its whole synonym set, and graph comparison can treat synonymous
specimens as a single fixed point.

Synonymy is an equivalence relation, implemented as a union-find with
explicit set listing (the sets are small; listing matters more than
asymptotic merge cost).
"""

from __future__ import annotations

from typing import Iterable


class SynonymRegistry:
    """Union-find over OIDs with set enumeration."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._members: dict[int, set[int]] = {}

    def _find(self, oid: int) -> int:
        root = oid
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(oid, oid) != root:
            self._parent[oid], oid = root, self._parent[oid]
        return root

    def declare(self, a: int, b: int) -> None:
        """Declare OIDs ``a`` and ``b`` synonymous (merging their sets)."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            self._parent.setdefault(a, ra)
            self._parent.setdefault(b, rb)
            self._members.setdefault(ra, {ra}).update((a, b))
            return
        # Merge smaller set into larger.
        sa = self._members.pop(ra, {ra})
        sb = self._members.pop(rb, {rb})
        if len(sa) < len(sb):
            ra, rb = rb, ra
            sa, sb = sb, sa
        self._parent[rb] = ra
        self._parent.setdefault(ra, ra)
        sa |= sb
        sa.update((a, b))
        self._members[ra] = sa
        for member in sb:
            self._parent[member] = ra

    def declare_all(self, oids: Iterable[int]) -> None:
        """Declare every OID in ``oids`` pairwise synonymous."""
        it = iter(oids)
        try:
            first = next(it)
        except StopIteration:
            return
        for other in it:
            self.declare(first, other)

    def are_synonyms(self, a: int, b: int) -> bool:
        if a == b:
            return True
        if a not in self._parent or b not in self._parent:
            return False
        return self._find(a) == self._find(b)

    def synonyms_of(self, oid: int) -> frozenset[int]:
        """The full synonym set of ``oid`` (always contains ``oid``)."""
        if oid not in self._parent:
            return frozenset((oid,))
        return frozenset(self._members[self._find(oid)])

    def canonical(self, oid: int) -> int:
        """A stable representative of the synonym set (smallest OID)."""
        return min(self.synonyms_of(oid))

    def sets(self) -> list[frozenset[int]]:
        """All non-trivial synonym sets."""
        return [frozenset(s) for s in self._members.values() if len(s) > 1]

    def forget(self, oid: int) -> None:
        """Remove ``oid`` from its synonym set (object deletion)."""
        if oid not in self._parent:
            return
        root = self._find(oid)
        members = self._members.get(root, {root})
        members.discard(oid)
        self._parent.pop(oid, None)
        if root == oid and members:
            # Re-root the remaining set.
            new_root = min(members)
            self._members.pop(root, None)
            for member in members:
                self._parent[member] = new_root
            self._members[new_root] = set(members)
        elif not members:
            self._members.pop(root, None)

    def to_storable(self) -> list[list[int]]:
        return [sorted(s) for s in self.sets()]

    def load_storable(self, data: Iterable[Iterable[int]]) -> None:
        for group in data:
            self.declare_all(group)
