"""Prometheus core object model: ODMG classes extended with relationships.

This package implements chapter 4 of the thesis — the ODMG-based object
model (§4.2), first-class relationships with explicit semantics (§4.3–4.4),
instance synonyms (§4.5) and the schema/meta-model (Figure 14).
"""

from .attributes import Attribute
from .classes import PClass
from .collections import PBag, PDict, PList, PSet
from .identity import NULL_OID, OidAllocator, OidRef
from .instances import PObject
from .odl import OdlError, define_schema as define_schema_odl, parse_odl
from .relationships import RelationshipClass, RelationshipInstance, RelKind
from .semantics import Behaviour, RelationshipSemantics
from .schema import Schema
from .synonyms import SynonymRegistry
from .templates import (
    RelationshipTemplate,
    TEMPLATES,
    get_template,
    relationship_from_template,
)
from .types import (
    AnyType,
    BooleanType,
    BytesType,
    CollectionTypeSpec,
    DateType,
    DateTimeType,
    FloatType,
    IntegerType,
    RefType,
    StringType,
    TypeSpec,
)

__all__ = [
    "Attribute",
    "AnyType",
    "Behaviour",
    "BooleanType",
    "BytesType",
    "CollectionTypeSpec",
    "DateTimeType",
    "DateType",
    "FloatType",
    "IntegerType",
    "NULL_OID",
    "OdlError",
    "OidAllocator",
    "OidRef",
    "PBag",
    "PClass",
    "PDict",
    "PList",
    "PObject",
    "PSet",
    "RefType",
    "RelKind",
    "RelationshipClass",
    "RelationshipInstance",
    "RelationshipSemantics",
    "RelationshipTemplate",
    "Schema",
    "StringType",
    "SynonymRegistry",
    "TypeSpec",
    "TEMPLATES",
    "define_schema_odl",
    "get_template",
    "parse_odl",
    "relationship_from_template",
]
