"""Cost-based POOL query planner with an LRU plan cache.

The planner compiles a parsed ``SELECT`` into a physical plan tree
(:mod:`repro.query.plans`), choosing per-binding access paths — extent
scan, index equality probe, B-tree range probe, index-ordered scan that
elides the sort — from a simple cost model fed by live extent and index
cardinality statistics.  WHERE conjuncts are pushed down to the earliest
binding that can evaluate them; everything downstream of the bindings is
a lazy generator pipeline, so ``LIMIT`` stops pulling early.

Plan caching: the AST is *normalized* — every literal is replaced by a
synthetic parameter slot (``$__plan_lit_N``) — so queries differing only
in constants share one cached plan.  The cache key is the normalized
AST; each entry is stamped with ``(schema.version, catalog.epoch,
as_of)`` and is rebuilt when either stat component moves (class
registration, index create/drop).  The ``as_of`` component keeps
time-travel evaluation honest: a snapshot query is compiled (and cached)
under its own snapshot LSN, with live-index access paths disabled —
it can never hit a plan compiled against newer index statistics, and a
live query can never hit a scan-only snapshot plan.
``AFTER_ABORT`` on the event bus evicts the whole cache: a rollback
rebuilds the index layer behind the planner's back (see
``IndexManager._on_event``), so cached access paths are re-derived from
the restored state — cached plans never serve stale access paths under
the transaction manager.

Plan choice never affects results, only speed: index probes seed
candidate sets but the full WHERE clause is still applied, and the
ordered scan is only chosen when index order provably equals the sort
order.  ``tests/query/test_differential.py`` fuzzes this claim against
the retained naive evaluator.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import OrderedDict
from typing import Any

from ..core.events import EventKind
from ..telemetry import DISABLED, Telemetry
from .nodes import (
    AttributeAccess,
    Binary,
    Literal,
    Node,
    OrderItem,
    Parameter,
    SelectQuery,
    Traversal,
    Variable,
)
from .plans import (
    BindExpr,
    BindExtent,
    BindIndexEq,
    BindIndexRange,
    BindOrderedScan,
    BindTraverse,
    ConstRow,
    Filter,
    PlanOp,
    SelectPlan,
    _Describe,
    aggregate_projection,
    free_variables,
    split_conjuncts,
)

__all__ = ["Planner", "normalize_query"]

#: Cost units (arbitrary; only the ranking matters).
_PROBE_COST = 2.0
_ROW_COST = 1.0
_FILTER_COST = 0.05
_SORT_FACTOR = 0.2

_LIT_PREFIX = "__plan_lit_"

_RANGE_OPS = {"<", "<=", ">", ">="}
#: Mirror of an operator when its operands are swapped (5 < x  ⇔  x > 5).
_SWAPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ---------------------------------------------------------------------------
# AST normalization (literals -> parameter slots)
# ---------------------------------------------------------------------------

def normalize_query(query: Node) -> tuple[Node, dict[str, Any]]:
    """Replace every literal with a synthetic parameter slot.

    Returns ``(skeleton, literals)``: the skeleton is the cache key and
    the AST the plan is built from; ``literals`` maps slot names to the
    original constants and is overlaid on the query parameters for the
    duration of one execution.  Traversal order is deterministic
    (dataclass field order), so equal-shaped queries produce equal
    skeletons.
    """
    values: list[Any] = []
    skeleton = _normalize_node(query, values)
    literals = {f"{_LIT_PREFIX}{i}": v for i, v in enumerate(values)}
    return skeleton, literals


def _normalize_node(node: Node, values: list[Any]) -> Node:
    if isinstance(node, Literal):
        name = f"{_LIT_PREFIX}{len(values)}"
        values.append(node.value)
        return Parameter(name)
    kwargs: dict[str, Any] = {}
    for field in dataclasses.fields(node):  # all concrete nodes are dataclasses
        kwargs[field.name] = _normalize_field(getattr(node, field.name), values)
    return type(node)(**kwargs)


def _normalize_field(value: Any, values: list[Any]) -> Any:
    if isinstance(value, Node):
        return _normalize_node(value, values)
    if isinstance(value, tuple):
        return tuple(_normalize_field(item, values) for item in value)
    return value


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class Planner:
    """Compiles SELECT ASTs to physical plans, with an LRU plan cache.

    Args:
        schema: live schema (extent cardinalities, class registry).
        catalog: the index layer (duck-typed: ``lookup`` / ``probe`` /
            ``range_probe`` / ``ordered_scan`` / ``epoch``), or None to
            plan without index access paths.
        telemetry: facade for planner counters (cache hit/miss, plans
            built, access-path histogram); defaults to disabled.
        cache_size: LRU capacity in plans.
    """

    def __init__(
        self,
        schema: Any,
        catalog: Any = None,
        telemetry: Telemetry | None = None,
        cache_size: int = 256,
    ) -> None:
        self.schema = schema
        self.catalog = catalog
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.cache_size = cache_size
        self._cache: OrderedDict[
            Node, tuple[tuple[Any, int, int | None], SelectPlan]
        ] = OrderedDict()
        # Front cache keyed on the *raw* AST: equal queries carry equal
        # literals, so a front hit skips normalization entirely.  Cleared
        # with every main-cache eviction so it can never outlive an entry.
        self._front: OrderedDict[
            Node,
            tuple[tuple[Any, int, int | None], SelectPlan, dict[str, Any], Node],
        ] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.built = 0
        self.evictions = 0
        self.failures = 0

    # -- cache plumbing -------------------------------------------------

    def attach(self, bus: Any) -> None:
        """Subscribe to the event bus: a rollback rebuilds indexes from
        live state, so every cached plan is evicted with it."""
        bus.subscribe(self._on_event, kinds={EventKind.AFTER_ABORT})

    def _on_event(self, event: Any) -> None:
        self.invalidate()

    def invalidate(self) -> None:
        """Drop every cached plan (schema rollback, manual reset)."""
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
            self._front.clear()
            self.evictions += dropped
        tel = self.telemetry
        if tel.enabled and dropped:
            tel.registry.counter(
                "repro_planner_cache_evictions_total",
                help="Cached plans evicted (rollbacks, capacity)",
            ).inc(dropped)

    def _stamp(self, as_of: int | None = None) -> tuple[Any, int, int | None]:
        version = getattr(self.schema, "version", 0)
        epoch = getattr(self.catalog, "epoch", 0) if self.catalog else 0
        return (version, epoch, as_of)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            size = len(self._cache)
        return {
            "cache_size": size,
            "cache_capacity": self.cache_size,
            "hits": self.hits,
            "misses": self.misses,
            "built": self.built,
            "evictions": self.evictions,
            "failures": self.failures,
        }

    # -- entry point ----------------------------------------------------

    def plan_select(
        self, query: SelectQuery, as_of: int | None = None
    ) -> tuple[SelectPlan, dict[str, Any], str] | None:
        """Plan (or fetch from cache) one SELECT.

        Returns ``(plan, literal_bindings, "hit" | "miss")``, or None
        when the query cannot be planned — the caller falls back to the
        naive evaluator, so planning failures can never lose results.

        ``as_of`` marks a time-travel compilation: the snapshot LSN
        becomes part of the cache stamp and index access paths are not
        considered (live indexes describe current state, not the
        snapshot's).
        """
        tel = self.telemetry
        try:
            stamp = self._stamp(as_of)
            with self._lock:
                front = self._front.get(query)
                if front is not None and front[0] == stamp:
                    self._front.move_to_end(query)
                    if front[3] in self._cache:  # keep main LRU order honest
                        self._cache.move_to_end(front[3])
                    self.hits += 1
                else:
                    front = None
            if front is not None:
                if tel.enabled:
                    tel.registry.counter(
                        "repro_planner_cache_hits_total",
                        help="Plan-cache hits",
                    ).inc()
                return front[1], front[2], "hit"
            skeleton, literals = normalize_query(query)
            with self._lock:
                entry = self._cache.get(skeleton)
                if entry is not None and entry[0] == stamp:
                    self._cache.move_to_end(skeleton)
                    self.hits += 1
                    hit_plan = entry[1]
                    self._front[query] = (stamp, hit_plan, literals, skeleton)
                    while len(self._front) > self.cache_size:
                        self._front.popitem(last=False)
                else:
                    hit_plan = None
            if hit_plan is not None:
                if tel.enabled:
                    tel.registry.counter(
                        "repro_planner_cache_hits_total",
                        help="Plan-cache hits",
                    ).inc()
                return hit_plan, literals, "hit"
            plan = self._build(skeleton, as_of=as_of)
            with self._lock:
                self.misses += 1
                self.built += 1
                self._cache[skeleton] = (stamp, plan)
                self._cache.move_to_end(skeleton)
                evicted = False
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.evictions += 1
                    evicted = True
                if evicted:
                    self._front.clear()
                else:
                    self._front[query] = (stamp, plan, literals, skeleton)
                    while len(self._front) > self.cache_size:
                        self._front.popitem(last=False)
            if tel.enabled:
                registry = tel.registry
                registry.counter(
                    "repro_planner_cache_misses_total", help="Plan-cache misses"
                ).inc()
                registry.counter(
                    "repro_planner_plans_built_total", help="Plans compiled"
                ).inc()
            return plan, literals, "miss"
        except Exception:
            self.failures += 1
            if tel.enabled:
                tel.registry.counter(
                    "repro_planner_failures_total",
                    help="Queries the planner could not compile "
                    "(naive fallback)",
                ).inc()
            return None

    # -- plan construction ----------------------------------------------

    def _build(
        self, query: SelectQuery, as_of: int | None = None
    ) -> SelectPlan:
        schema = self.schema
        # Time-travel plans are scan-only: the live catalog's indexes
        # describe current state, not the snapshot's.
        catalog = self.catalog if as_of is None else None
        binding_vars = {b.variable for b in query.bindings}

        def needed(node: Node) -> frozenset[str]:
            """Env names a conjunct needs: binding vars plus names that
            are neither bindings nor extents (outer/unknown)."""
            return frozenset(
                v
                for v in free_variables(node)
                if v in binding_vars or not schema.has_class(v)
            )

        pending = list(split_conjuncts(query.where))
        considered: list[str] = []
        notes: list[str] = []
        bound: set[str] = set()

        def pull_applicable() -> list[Node]:
            got = [c for c in pending if needed(c) <= bound]
            for c in got:
                pending.remove(c)
            return got

        op: PlanOp = ConstRow()
        op.est_rows = 1.0
        op.est_cost = 0.0
        pre = pull_applicable()
        if pre:
            op = self._filter(op, pre, counting=False)

        grouped = bool(query.group_by) or aggregate_projection(query) is not None
        order_elided = False
        last = len(query.bindings) - 1
        for i, binding in enumerate(query.bindings):
            elide_wanted = (
                i == 0
                and last == 0
                and not grouped
                and self._order_key(query) is not None
            )
            op, elided = self._bind(
                op, binding, bound, pending, considered, notes, query,
                try_ordered=elide_wanted, catalog=catalog,
            )
            order_elided = order_elided or elided
            bound.add(binding.variable)
            if i < last:
                got = pull_applicable()
                if got:
                    op = self._filter(op, got, counting=False)
        # Residual filter: everything left, including conjuncts that
        # reference outer-scope variables.  Always present — it owns the
        # rows_examined / rows_matched counters.
        op = self._filter(op, pending, counting=True)

        display, total_cost = self._tail(query, op, order_elided)
        return SelectPlan(
            query=query,
            source=op,
            display=display,
            order_elided=order_elided,
            considered=tuple(considered),
            notes=tuple(notes),
            est_cost=total_cost,
        )

    def _filter(
        self, child: PlanOp, conjuncts: list[Node], counting: bool
    ) -> PlanOp:
        op = Filter(child, tuple(conjuncts), counting)
        selectivity = 1.0
        for conjunct in conjuncts:
            if isinstance(conjunct, Binary) and conjunct.op == "=":
                selectivity *= 0.25
            elif isinstance(conjunct, Binary) and conjunct.op in _RANGE_OPS:
                selectivity *= 0.4
            else:
                selectivity *= 0.6
        op.est_rows = max(child.est_rows * selectivity, 0.1)
        op.est_cost = child.est_cost + child.est_rows * _FILTER_COST * max(
            len(conjuncts), 1
        )
        return op

    def _order_key(self, query: SelectQuery) -> OrderItem | None:
        """The single ``var.attr`` ORDER BY key, if that is the shape."""
        if len(query.order_by) != 1:
            return None
        item = query.order_by[0]
        expr = item.expression
        if (
            isinstance(expr, AttributeAccess)
            and isinstance(expr.target, Variable)
            and expr.target.name == query.bindings[0].variable
        ):
            return item
        return None

    def _bind(
        self,
        child: PlanOp,
        binding: Any,
        bound: set[str],
        pending: list[Node],
        considered: list[str],
        notes: list[str],
        query: SelectQuery,
        try_ordered: bool,
        catalog: Any = None,
    ) -> tuple[PlanOp, bool]:
        """Choose the cheapest access path for one FROM binding."""
        source = binding.source
        var = binding.variable
        schema = self.schema
        if (
            isinstance(source, Variable)
            and source.name not in bound
            and schema.has_class(source.name)
        ):
            return self._bind_extent(
                child, var, source.name, bound, pending, considered, notes,
                query, try_ordered, catalog,
            )
        if isinstance(source, Traversal):
            op: PlanOp = BindTraverse(child, var, source)
            op.est_rows = child.est_rows * 4.0
            op.est_cost = child.est_cost + child.est_rows * 4.0 * _ROW_COST
            self._count_path("traverse")
            return op, False
        op = BindExpr(child, var, source)
        fanout = 8.0 if isinstance(source, SelectQuery) else 2.0
        op.est_rows = child.est_rows * fanout
        op.est_cost = child.est_cost + child.est_rows * fanout * _ROW_COST
        self._count_path("expr")
        return op, False

    def _bind_extent(
        self,
        child: PlanOp,
        var: str,
        class_name: str,
        bound: set[str],
        pending: list[Node],
        considered: list[str],
        notes: list[str],
        query: SelectQuery,
        try_ordered: bool,
        catalog: Any = None,
    ) -> tuple[PlanOp, bool]:
        schema = self.schema
        binding_vars = {b.variable for b in query.bindings}

        def seed_value_ok(value: Node) -> bool:
            """A seed value must be computable before this binding."""
            for name in free_variables(value):
                if name in binding_vars and name not in bound:
                    return False
                if name not in bound and not schema.has_class(name):
                    # outer/unknown variable: not available at seed time
                    # from a cached, context-free plan
                    return False
            return True

        extent_rows = float(max(schema.count(class_name), 1))
        candidates: list[tuple[float, float, str, PlanOp]] = []
        scan = BindExtent(child, var, class_name)
        scan_rows = child.est_rows * extent_rows
        scan_cost = child.est_cost + _ROW_COST + scan_rows
        candidates.append((scan_cost, scan_rows, "extent_scan", scan))

        eq_seeds: list[tuple[str, Node]] = []
        bounds: dict[str, dict[str, tuple[Node, bool]]] = {}
        for conjunct in pending:
            if not isinstance(conjunct, Binary):
                continue
            sides = (
                (conjunct.op, conjunct.left, conjunct.right),
                (_SWAPPED.get(conjunct.op, conjunct.op), conjunct.right,
                 conjunct.left),
            )
            for op_name, attr_side, value_side in sides:
                if not (
                    isinstance(attr_side, AttributeAccess)
                    and isinstance(attr_side.target, Variable)
                    and attr_side.target.name == var
                ):
                    continue
                if not seed_value_ok(value_side):
                    continue
                if conjunct.op == "=":
                    eq_seeds.append((attr_side.name, value_side))
                    break
                if op_name in _RANGE_OPS:
                    slot = bounds.setdefault(attr_side.name, {})
                    if op_name in (">", ">="):
                        slot.setdefault("low", (value_side, op_name == ">="))
                    else:
                        slot.setdefault("high", (value_side, op_name == "<="))
                    break

        if catalog is not None:
            for attr, value_node in eq_seeds:
                considered.append(f"{class_name}.{attr}")
                stats = catalog.lookup(class_name, attr)
                if stats is None:
                    notes.append(f"no index on {class_name}.{attr}")
                    continue
                per_key = max(stats["entries"] / max(stats["distinct"], 1), 1.0)
                rows = child.est_rows * per_key
                cost = child.est_cost + child.est_rows * (_PROBE_COST + per_key)
                probe = BindIndexEq(child, var, class_name, attr, value_node)
                candidates.append((cost, rows, "index_eq", probe))
            for attr, slot in bounds.items():
                considered.append(f"{class_name}.{attr}")
                stats = catalog.lookup(class_name, attr)
                if stats is None or stats["kind"] != "btree":
                    notes.append(
                        f"no btree index on {class_name}.{attr} for range"
                    )
                    continue
                est = max(extent_rows * 0.3, 1.0)
                rows = child.est_rows * est
                cost = child.est_cost + child.est_rows * (_PROBE_COST + est)
                low = slot.get("low")
                high = slot.get("high")
                probe = BindIndexRange(
                    child,
                    var,
                    class_name,
                    attr,
                    low[0] if low else None,
                    high[0] if high else None,
                    low[1] if low else True,
                    high[1] if high else True,
                )
                candidates.append((cost, rows, "index_range", probe))
        elif eq_seeds or bounds:
            notes.append(f"{class_name}: no index layer attached")

        cost, rows, kind, best = min(candidates, key=lambda c: c[0])

        # Sort elision: only worth replacing a full scan — a seeded
        # candidate set is small enough that sorting it is cheap.
        if try_ordered and kind == "extent_scan" and catalog is not None:
            item = self._order_key(query)
            if item is not None:
                attr = item.expression.name  # type: ignore[union-attr]
                stats = catalog.lookup(class_name, attr)
                if stats is not None and stats["kind"] == "btree":
                    ordered = BindOrderedScan(
                        child, var, class_name, attr, item.descending
                    )
                    ordered.est_rows = scan_rows
                    ordered.est_cost = scan_cost + scan_rows * 0.2
                    notes.append(
                        f"order by {class_name}.{attr} satisfied by index"
                    )
                    self._count_path("index_ordered")
                    return ordered, True

        best.est_rows = rows
        best.est_cost = cost
        self._count_path(kind)
        return best, False

    def _tail(
        self, query: SelectQuery, source: PlanOp, order_elided: bool
    ) -> tuple[PlanOp, float]:
        """Wrap the source in display-only result-shaping operators and
        finish the cost estimate."""
        display = source
        cost = source.est_cost
        rows = source.est_rows

        def wrap(op_name: str, **extra: Any) -> None:
            nonlocal display
            display = _Describe(op_name, display, **extra)
            display.est_rows = rows
            display.est_cost = cost

        aggregate = aggregate_projection(query)
        if query.group_by:
            cost += rows * _ROW_COST
            wrap("group", keys=", ".join(g.unparse() for g in query.group_by))
        elif aggregate is not None:
            cost += rows * _ROW_COST
            wrap("aggregate", fn=aggregate.name)
        else:
            if query.order_by and not order_elided:
                cost += rows * max(math.log2(max(rows, 2.0)), 1.0) * _SORT_FACTOR
                wrap("sort", keys=", ".join(o.unparse() for o in query.order_by))
            cost += rows * _FILTER_COST
            wrap(
                "project",
                items=", ".join(p.unparse() for p in query.projection) or "*",
            )
        if query.distinct:
            wrap("distinct")
        if query.limit is not None:
            rows = min(rows, float(query.limit))
            wrap("limit", n=query.limit)
        return display, cost

    def _count_path(self, kind: str) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_planner_access_paths_total",
                {"path": kind},
                help="Access paths chosen by the planner, by kind",
            ).inc()
