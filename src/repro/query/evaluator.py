"""POOL evaluator: executes a parsed query against a schema.

Semantics highlights (thesis §5.1):

* **uniform treatment of relationships and objects** — relationship
  classes are extents like any other; ``r.origin`` / ``r.destination``
  navigate an edge's endpoints; object attributes and edge attributes
  read identically;
* **traversal** — ``x->Rel`` yields the destination objects of Rel edges
  leaving ``x``; ``x<-Rel`` the origins of edges arriving at ``x``;
  closures ``*``, ``+`` and ``{m,n}`` walk transitively with depth
  control; ``->Rel["name"]`` restricts edges to one classification;
* **selective downcast** — ``(Species) x`` filters a value or collection
  to instances of a class;
* **object conservation** (§5.1.2.2) — queries return the objects
  themselves, never copies, so results can be fed to further operations;
* **select-only** (§5.1.2.1) — evaluation never mutates the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..classification import ClassificationManager, GraphView
from ..core.instances import PObject
from ..core.relationships import RelationshipInstance
from ..core.schema import Schema
from ..errors import AttributeUnknownError, EvaluationError
from ..telemetry import DISABLED, Telemetry
from .functions import FUNCTIONS, call_value_method
from .nodes import (
    AttributeAccess,
    Binary,
    Downcast,
    ExistsExpr,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    Parameter,
    QueryPlanInfo,
    SelectQuery,
    SetOperation,
    Traversal,
    Unary,
    Variable,
)
from .parser import parse
from .plans import _Run as _PlanRun

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Optional fast path: (class_name, attribute, value) -> objects or None.
IndexProbe = Callable[[str, str, Any], "list[PObject] | None"]


@dataclass
class QueryContext:
    """Everything a query evaluation needs besides the AST."""

    schema: Schema
    classifications: ClassificationManager | None = None
    params: dict[str, Any] = field(default_factory=dict)
    index_probe: IndexProbe | None = None
    plan: QueryPlanInfo = field(default_factory=QueryPlanInfo)
    telemetry: Telemetry = DISABLED
    #: Cost-based planner (repro.query.planner.Planner); None selects
    #: the naive AST interpreter — the differential-testing reference.
    planner: Any = None
    #: Per-query adjacency memo (repro.query.plans.AdjacencyCache);
    #: populated by the database layer alongside the planner.
    adjacency: Any = None
    #: Snapshot LSN for time-travel evaluation; ``schema`` is then a
    #: read-only SnapshotSchema and plan-cache keys must include it so
    #: an as_of query never reuses a plan compiled against live stats.
    as_of: int | None = None


class Evaluator:
    """Evaluates POOL ASTs within a :class:`QueryContext`."""

    def __init__(self, context: QueryContext) -> None:
        self.context = context
        # Resolved once so every hot-path hook is one load + one branch;
        # None when telemetry is off, the live tracer when on.
        tel = context.telemetry
        self._tracer = tel.tracer if tel.enabled else None

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run(self, query: "SelectQuery | ExtractGraphQuery | SetOperation") -> Any:
        if isinstance(query, SelectQuery):
            return self._run_select(query, {})
        if isinstance(query, ExtractGraphQuery):
            return self._run_extract(query, {})
        if isinstance(query, SetOperation):
            return self._run_setop(query, {})
        raise EvaluationError(f"not a query: {query!r}")

    def _run_setop(
        self, query: "SetOperation", env: dict[str, Any]
    ) -> list[Any]:
        """OQL set operators with identity semantics on objects."""
        def results(side: Any) -> list[Any]:
            if isinstance(side, SetOperation):
                return self._run_setop(side, env)
            return self._run_select(side, env)

        left = results(query.left)
        right = results(query.right)
        right_keys = {_result_key(item) for item in right}
        if query.op == "union":
            out = list(left)
            seen = {_result_key(item) for item in left}
            for item in right:
                key = _result_key(item)
                if key not in seen:
                    seen.add(key)
                    out.append(item)
            return out
        if query.op == "intersect":
            return _distinct(
                [item for item in left if _result_key(item) in right_keys]
            )
        if query.op == "except":
            return _distinct(
                [item for item in left if _result_key(item) not in right_keys]
            )
        raise EvaluationError(f"unknown set operator {query.op!r}")

    def evaluate(self, node: Node, env: dict[str, Any] | None = None) -> Any:
        return self._eval(node, env or {})

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    #: Aggregates that, projected alone over a query, fold all rows.
    _AGGREGATES = ("count", "size", "sum", "avg", "min", "max")

    def _run_select(
        self, query: SelectQuery, outer_env: dict[str, Any]
    ) -> list[Any]:
        planner = self.context.planner
        if planner is not None:
            planned = planner.plan_select(query, as_of=self.context.as_of)
            if planned is not None:
                return self._run_planned(planned, outer_env)
        return self._run_select_naive(query, outer_env)

    def _run_planned(
        self, planned: tuple[Any, dict[str, Any], str], outer_env: dict[str, Any]
    ) -> list[Any]:
        """Execute a compiled plan (see :mod:`repro.query.planner`).

        The plan is cached and literal-free; its literals travel in
        ``literals`` and are overlaid on the query parameters for the
        duration of this execution (save/restore, so nested planned
        subqueries compose).
        """
        plan, literals, cache_status = planned
        ctx = self.context
        info = ctx.plan
        info.cache = cache_status
        saved = ctx.params
        if literals:
            ctx.params = {**saved, **literals}
        try:
            query = plan.query
            if query.group_by:
                plan.annotate(self)
                run = _PlanRun()
                result = self._run_grouped(
                    query, plan.stream(self, dict(outer_env), run)
                )
                plan.finish_stream(self, run)
                return result
            aggregate = self._aggregate_projection(query)
            if aggregate is not None:
                plan.annotate(self)
                run = _PlanRun()
                result = self._run_aggregate(
                    query, aggregate, plan.stream(self, dict(outer_env), run)
                )
                plan.finish_stream(self, run)
                return result if isinstance(result, list) else [result]
            tracer = self._tracer
            span = (
                tracer.span("pool.select", clause=query.unparse()[:120])
                if tracer is not None
                else None
            )
            if span is not None:
                span.__enter__()
            try:
                return plan.execute(self, dict(outer_env))
            finally:
                if span is not None:
                    span.set("rows_examined", info.rows_examined)
                    span.set("rows_matched", info.rows_matched)
                    span.__exit__(None, None, None)
        finally:
            ctx.params = saved

    def _run_select_naive(
        self, query: SelectQuery, outer_env: dict[str, Any]
    ) -> list[Any]:
        if query.group_by:
            return self._run_grouped(query, self._naive_rows(query, outer_env))
        aggregate = self._aggregate_projection(query)
        if aggregate is not None:
            result = self._run_aggregate(
                query, aggregate, self._naive_rows(query, outer_env)
            )
            return result if isinstance(result, list) else [result]
        tracer = self._tracer
        span = (
            tracer.span("pool.select", clause=query.unparse()[:120])
            if tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        plan = self.context.plan
        try:
            kept: list[tuple[tuple[_SortKey, ...], Any]] = []
            for env in self._naive_rows(query, outer_env):
                # ORDER BY keys are computed against the binding environment,
                # before projection, so they may use any bound variable.
                keys = tuple(
                    _SortKey(self._eval(item.expression, env), item.descending)
                    for item in query.order_by
                )
                kept.append((keys, self._project(query, env)))
            if query.order_by:
                kept.sort(key=lambda pair: pair[0])
            results = [value for _, value in kept]
            if query.distinct:
                results = _distinct(results)
            if query.limit is not None:
                results = results[: query.limit]
            return results
        finally:
            if span is not None:
                span.set("rows_examined", plan.rows_examined)
                span.set("rows_matched", plan.rows_matched)
                span.__exit__(None, None, None)

    def _naive_rows(
        self, query: SelectQuery, outer_env: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """Post-WHERE binding environments, naive interpretation."""
        plan = self.context.plan
        for env in self._bind_rows(query, outer_env):
            plan.rows_examined += 1
            if query.where is not None and not _truthy(
                self._eval(query.where, env)
            ):
                continue
            plan.rows_matched += 1
            yield env

    def _run_grouped(
        self, query: SelectQuery, rows_in: Iterator[dict[str, Any]]
    ) -> list[Any]:
        """GROUP BY evaluation (OQL-flavoured subset).

        Rows surviving the WHERE clause are partitioned by the group-key
        expressions.  In the projection, HAVING and ORDER BY clauses,
        top-level aggregate calls fold over each group's rows; any other
        expression is evaluated against a representative row (so it
        should be functionally dependent on the group keys).
        """
        if not query.projection:
            raise EvaluationError("group by requires an explicit projection")
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        order: list[tuple[Any, ...]] = []
        for env in rows_in:
            key = tuple(
                _result_key(self._eval(expr, env)) for expr in query.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        kept: list[tuple[tuple[_SortKey, ...], Any]] = []
        for key in order:
            rows = groups[key]
            if query.having is not None and not _truthy(
                self._eval_grouped(query.having, rows)
            ):
                continue
            alias_values: dict[str, Any] = {}
            if len(query.projection) == 1 and query.projection[0].alias is None:
                projected: Any = self._eval_grouped(
                    query.projection[0].expression, rows
                )
            else:
                projected = {}
                for index, item in enumerate(query.projection):
                    label = item.alias or f"col{index}"
                    projected[label] = self._eval_grouped(item.expression, rows)
                alias_values = projected
            # ORDER BY may name projection aliases or group expressions.
            sort_keys = tuple(
                _SortKey(
                    alias_values[item.expression.name]
                    if isinstance(item.expression, Variable)
                    and item.expression.name in alias_values
                    else self._eval_grouped(item.expression, rows),
                    item.descending,
                )
                for item in query.order_by
            )
            kept.append((sort_keys, projected))
        if query.order_by:
            kept.sort(key=lambda pair: pair[0])
        results = [value for _, value in kept]
        if query.distinct:
            results = _distinct(results)
        if query.limit is not None:
            results = results[: query.limit]
        return results

    def _eval_grouped(
        self, expr: Node, rows: list[dict[str, Any]]
    ) -> Any:
        """Evaluate one expression over a group of rows.

        Aggregate calls anywhere in the expression fold the per-row
        values of their argument (``having count(t) > 5``,
        ``max(n.year) - min(n.year)``); non-aggregate subexpressions use
        the group's first row.
        """
        if not rows:
            return None
        if (
            isinstance(expr, FunctionCall)
            and expr.name in self._AGGREGATES
            and len(expr.args) == 1
        ):
            values = [self._eval(expr.args[0], env) for env in rows]
            return FUNCTIONS[expr.name](values)
        if isinstance(expr, Binary):
            if expr.op == "and":
                return _truthy(self._eval_grouped(expr.left, rows)) and _truthy(
                    self._eval_grouped(expr.right, rows)
                )
            if expr.op == "or":
                return _truthy(self._eval_grouped(expr.left, rows)) or _truthy(
                    self._eval_grouped(expr.right, rows)
                )
            return _apply_binary(
                expr.op,
                self._eval_grouped(expr.left, rows),
                self._eval_grouped(expr.right, rows),
            )
        if isinstance(expr, Unary):
            value = self._eval_grouped(expr.operand, rows)
            if expr.op == "not":
                return not _truthy(value)
            return None if value is None else -value
        return self._eval(expr, rows[0])

    def _aggregate_projection(self, query: SelectQuery) -> FunctionCall | None:
        """Detect ``select count(expr) from ...``-style aggregation.

        A single, unaliased projection that is a call to an aggregate
        function folds the whole result set (OQL semantics) rather than
        mapping per row.
        """
        if len(query.projection) != 1 or query.projection[0].alias is not None:
            return None
        expr = query.projection[0].expression
        if isinstance(expr, FunctionCall) and expr.name in self._AGGREGATES:
            if len(expr.args) == 1:
                return expr
        return None

    def _run_aggregate(
        self,
        query: SelectQuery,
        aggregate: FunctionCall,
        rows_in: Iterator[dict[str, Any]],
    ) -> Any:
        """Aggregate projection semantics.

        ``select count(x) ...`` / ``select min(x.year) ...`` fold all
        rows to one value (OQL).  When the argument evaluates to a
        *collection* per row (``count(t->Includes)``), the aggregate maps
        per row instead — the per-node fan-out question.
        """
        values: list[Any] = []
        for env in rows_in:
            values.append(self._eval(aggregate.args[0], env))
        if query.distinct:
            values = _distinct(values)
        fn = FUNCTIONS[aggregate.name]
        if values and all(isinstance(v, (list, tuple)) for v in values):
            return [fn(v) for v in values]
        return fn(values)

    def _bind_rows(
        self, query: SelectQuery, outer_env: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """Generate variable environments from the FROM clause.

        Bindings may reference earlier binding variables, so the product
        is built left-to-right, re-evaluating dependent sources per row.
        """
        def expand(
            index: int, env: dict[str, Any]
        ) -> Iterator[dict[str, Any]]:
            if index == len(query.bindings):
                yield env
                return
            binding = query.bindings[index]
            source = self._eval_source(binding.source, env, query)
            for value in source:
                child = dict(env)
                child[binding.variable] = value
                yield from expand(index + 1, child)

        yield from expand(0, dict(outer_env))

    def _eval_source(
        self, source: Node, env: dict[str, Any], query: SelectQuery
    ) -> list[Any]:
        # An extent name used as a source gets the index fast path when
        # the WHERE clause is a simple equality on that binding.
        if isinstance(source, Variable) and source.name not in env:
            if self.context.schema.has_class(source.name):
                plan = self.context.plan
                fast = self._try_index(source.name, query)
                if fast is not None:
                    plan.access_paths.append(f"index:{plan.index_used}")
                    plan.rows_from_index += len(fast)
                    return fast
                plan.extent_scans += 1
                plan.access_paths.append(f"scan:{source.name}")
                return list(self.context.schema.extent(source.name))
        value = self._eval(source, env)
        if value is None:
            return []
        if isinstance(value, (list, tuple, set, frozenset)):
            return list(value)
        return [value]

    def _try_index(
        self, class_name: str, query: SelectQuery
    ) -> list[PObject] | None:
        """Index fast path for the extent source (§6.1.5.2–6.1.5.3).

        Any equality conjunct ``var.attr = literal`` (or with a bound
        parameter) reachable through the top-level AND chain of the WHERE
        clause can seed the candidate set from an index; the full WHERE
        clause is still evaluated afterwards, so this is purely an access
        path optimisation.
        """
        probe = self.context.index_probe
        plan = self.context.plan
        if probe is None or query.where is None:
            if query.where is not None and probe is None:
                plan.notes.append(f"{class_name}: no index layer attached")
            return None
        if len(query.bindings) != 1:
            plan.notes.append(
                f"{class_name}: multi-binding FROM disables the index path"
            )
            return None
        binding = query.bindings[0]
        if (
            not isinstance(binding.source, Variable)
            or binding.source.name != class_name
        ):
            return None
        considered = False
        for attr, value in self._indexable_conjuncts(
            query.where, binding.variable
        ):
            considered = True
            plan.indexes_considered.append(f"{class_name}.{attr}")
            hit = probe(class_name, attr, value)
            if hit is not None:
                plan.index_used = f"{class_name}.{attr}"
                return hit
            plan.notes.append(f"no index on {class_name}.{attr}")
        if not considered:
            plan.notes.append(
                f"{class_name}: WHERE has no indexable equality conjunct"
            )
        return None

    def _indexable_conjuncts(
        self, condition: Node, variable: str
    ) -> Iterator[tuple[str, Any]]:
        """Yield (attribute, constant) for equality conjuncts on
        ``variable`` in the top-level AND chain."""
        if isinstance(condition, Binary) and condition.op == "and":
            yield from self._indexable_conjuncts(condition.left, variable)
            yield from self._indexable_conjuncts(condition.right, variable)
            return
        if not (isinstance(condition, Binary) and condition.op == "="):
            return
        for lhs, rhs in (
            (condition.left, condition.right),
            (condition.right, condition.left),
        ):
            if (
                isinstance(lhs, AttributeAccess)
                and isinstance(lhs.target, Variable)
                and lhs.target.name == variable
            ):
                if isinstance(rhs, Literal):
                    yield (lhs.name, rhs.value)
                elif isinstance(rhs, Parameter):
                    if rhs.name in self.context.params:
                        yield (lhs.name, self.context.params[rhs.name])

    def _project(self, query: SelectQuery, env: dict[str, Any]) -> Any:
        if not query.projection:
            # '*': the whole binding environment (single var → the object).
            if len(query.bindings) == 1:
                return env[query.bindings[0].variable]
            return {b.variable: env[b.variable] for b in query.bindings}
        if len(query.projection) == 1 and query.projection[0].alias is None:
            return self._eval(query.projection[0].expression, env)
        row: dict[str, Any] = {}
        for index, item in enumerate(query.projection):
            key = item.alias or f"col{index}"
            row[key] = self._eval(item.expression, env)
        return row

    # ------------------------------------------------------------------
    # EXTRACT GRAPH
    # ------------------------------------------------------------------

    def _run_extract(
        self, query: ExtractGraphQuery, env: dict[str, Any]
    ) -> GraphView:
        start = self._eval(query.start, env)
        starts: list[PObject] = []
        for value in start if isinstance(start, list) else [start]:
            if not isinstance(value, PObject):
                raise EvaluationError(
                    "extract graph: start must evaluate to object(s)"
                )
            starts.append(value)
        view = GraphView(name=f"extract via {query.relationship}")
        schema = self.context.schema
        edges_allowed: set[int] | None = None
        if query.classification is not None:
            manager = self._manager()
            classification = manager.get(query.classification)
            edges_allowed = {e.oid for e in classification.edges()}
            view.name += f" in {query.classification!r}"
        seen_edges: set[int] = set()
        frontier = [(obj, 0) for obj in starts]
        seen_nodes = {obj.oid for obj in starts}
        adjacency = self.context.adjacency
        for obj in starts:
            view.nodes[obj.oid] = {"class": obj.pclass.name, **obj.to_dict()}
        while frontier:
            obj, depth = frontier.pop()
            if query.depth is not None and depth >= query.depth:
                continue
            outgoing = (
                adjacency.edges(obj.oid, query.relationship, False)
                if adjacency is not None
                else schema.relationships.outgoing(obj.oid, query.relationship)
            )
            for edge in outgoing:
                if edges_allowed is not None and edge.oid not in edges_allowed:
                    continue
                if edge.oid in seen_edges:
                    continue
                seen_edges.add(edge.oid)
                dest_oid = edge.destination_oid
                if schema.has_object(dest_oid) and dest_oid not in view.nodes:
                    dest = schema.get_object(dest_oid)
                    view.nodes[dest_oid] = {
                        "class": dest.pclass.name,
                        **dest.to_dict(),
                    }
                view.edges.append(
                    (edge.origin_oid, dest_oid, edge.pclass.name, edge.to_dict())
                )
                if dest_oid not in seen_nodes and schema.has_object(dest_oid):
                    seen_nodes.add(dest_oid)
                    frontier.append((schema.get_object(dest_oid), depth + 1))
        return view

    def _manager(self) -> ClassificationManager:
        if self.context.classifications is None:
            raise EvaluationError(
                "query uses classification scope but no ClassificationManager "
                "was provided"
            )
        return self.context.classifications

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _eval(self, node: Node, env: dict[str, Any]) -> Any:
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, Parameter):
            try:
                return self.context.params[node.name]
            except KeyError:
                raise EvaluationError(
                    f"missing query parameter ${node.name}"
                ) from None
        if isinstance(node, Variable):
            if node.name in env:
                return env[node.name]
            if self.context.schema.has_class(node.name):
                self.context.plan.extent_scans += 1
                return list(self.context.schema.extent(node.name))
            raise EvaluationError(f"unbound variable {node.name!r}")
        if isinstance(node, AttributeAccess):
            return self._attribute(self._eval(node.target, env), node.name)
        if isinstance(node, MethodCall):
            target = self._eval(node.target, env)
            args = tuple(self._eval(a, env) for a in node.args)
            return self._method(target, node.name, args)
        if isinstance(node, FunctionCall):
            args = tuple(self._eval(a, env) for a in node.args)
            return self._function(node.name, args)
        if isinstance(node, Traversal):
            return self._traverse(node, env)
        if isinstance(node, Downcast):
            return self._downcast(node.class_name, self._eval(node.target, env))
        if isinstance(node, Unary):
            value = self._eval(node.operand, env)
            if node.op == "not":
                return not _truthy(value)
            if value is None:
                return None
            return -value
        if isinstance(node, Binary):
            return self._binary(node, env)
        if isinstance(node, SelectQuery):
            return self._run_select(node, env)
        if isinstance(node, ExistsExpr):
            return len(self._run_select(node.subquery, env)) > 0
        raise EvaluationError(f"cannot evaluate node {type(node).__name__}")

    def _attribute(self, target: Any, name: str) -> Any:
        if target is None:
            return None
        if isinstance(target, (list, tuple, set, frozenset)):
            return [self._attribute(item, name) for item in target]
        if isinstance(target, RelationshipInstance):
            if name == "origin":
                return target.origin_object()
            if name == "destination":
                return target.destination_object()
            if name in target.relationship_class.participant_roles:
                return target.participant(name)
        if isinstance(target, PObject):
            if name == "oid":
                return target.oid
            try:
                return target.get(name)
            except AttributeUnknownError:
                # Null semantics for polymorphic navigation: a member of a
                # mixed collection that lacks the attribute yields null
                # (static typos are the type checker's job, §5.1.2.4).
                return None
        if isinstance(target, dict):
            if name in target:
                return target[name]
            raise EvaluationError(f"row has no column {name!r}")
        if isinstance(target, GraphView):
            if name == "nodes":
                return list(target.nodes)
            if name == "edges":
                return target.edges
            if name == "name":
                return target.name
        raise EvaluationError(
            f"cannot read attribute {name!r} of {type(target).__name__}"
        )

    def _method(self, target: Any, name: str, args: tuple[Any, ...]) -> Any:
        if target is None:
            return None
        if isinstance(target, PObject) and target.pclass.has_method(name):
            return target.call(name, *args)
        return call_value_method(target, name, args)

    def _function(self, name: str, args: tuple[Any, ...]) -> Any:
        if name == "roles":
            obj = args[0] if args else None
            if not isinstance(obj, PObject):
                raise EvaluationError("roles(): argument must be an object")
            return self.context.schema.relationships.roles_of(obj)
        if name == "synonyms_of":
            obj = args[0] if args else None
            if not isinstance(obj, PObject):
                raise EvaluationError("synonyms_of(): argument must be an object")
            schema = self.context.schema
            return [
                schema.get_object(oid)
                for oid in sorted(schema.synonyms.synonyms_of(obj.oid))
                if schema.has_object(oid)
            ]
        try:
            fn = FUNCTIONS[name]
        except KeyError:
            raise EvaluationError(f"unknown function {name!r}") from None
        return fn(*args)

    def _traverse(self, node: Traversal, env: dict[str, Any]) -> list[PObject]:
        value = self._eval(node.target, env)
        starts: list[PObject] = []
        for item in value if isinstance(value, (list, tuple)) else [value]:
            if item is None:
                continue
            if not isinstance(item, PObject):
                raise EvaluationError(
                    f"traversal ->{node.relationship} on non-object "
                    f"{type(item).__name__}"
                )
            starts.append(item)
        schema = self.context.schema
        if not schema.has_class(node.relationship):
            raise EvaluationError(
                f"unknown relationship class {node.relationship!r}"
            )
        allowed: set[int] | None = None
        if node.scope is not None:
            classification = self._manager().get(node.scope)
            allowed = classification._edge_oids

        adjacency = self.context.adjacency

        def neighbours(obj: PObject) -> list[PObject]:
            if adjacency is not None:
                edges = adjacency.edges(obj.oid, node.relationship, node.inverse)
            elif node.inverse:
                edges = schema.relationships.incoming(obj.oid, node.relationship)
            else:
                edges = schema.relationships.outgoing(obj.oid, node.relationship)
            out = []
            for edge in edges:
                if allowed is not None and edge.oid not in allowed:
                    continue
                other = edge.other_end(obj.oid)
                if schema.has_object(other):
                    out.append(schema.get_object(other))
            return out

        result: list[PObject] = []
        result_oids: set[int] = set()
        max_depth = node.max_depth
        plan = self.context.plan
        tracer = self._tracer
        span = (
            tracer.span(
                "pool.traverse",
                relationship=node.relationship,
                inverse=node.inverse,
            )
            if tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()

        def collect(obj: PObject) -> None:
            if obj.oid not in result_oids:
                result_oids.add(obj.oid)
                result.append(obj)

        deepest = 0
        visited_total = 0
        for start in starts:
            if node.min_depth == 0:
                collect(start)
            frontier = [start]
            visited = {start.oid}
            depth = 0
            while frontier and (max_depth is None or depth < max_depth):
                depth += 1
                next_frontier: list[PObject] = []
                for obj in frontier:
                    for nb in neighbours(obj):
                        if nb.oid in visited:
                            continue
                        visited.add(nb.oid)
                        next_frontier.append(nb)
                        if depth >= node.min_depth:
                            collect(nb)
                if next_frontier and depth > deepest:
                    deepest = depth
                frontier = next_frontier
            visited_total += len(visited)
        if deepest > plan.traversal_max_depth:
            plan.traversal_max_depth = deepest
        plan.traversal_nodes_visited += visited_total
        if span is not None:
            span.set("depth_reached", deepest)
            span.set("nodes_visited", visited_total)
            span.set("results", len(result))
            span.__exit__(None, None, None)
        return result

    def _downcast(self, class_name: str, value: Any) -> Any:
        schema = self.context.schema
        target_class = schema.get_class(class_name)

        def keep(item: Any) -> bool:
            return isinstance(item, PObject) and item.pclass.is_subclass_of(
                target_class
            )

        if isinstance(value, (list, tuple)):
            return [item for item in value if keep(item)]
        return value if keep(value) else None

    def _binary(self, node: Binary, env: dict[str, Any]) -> Any:
        op = node.op
        if op == "and":
            left = self._eval(node.left, env)
            if not _truthy(left):
                return False
            return _truthy(self._eval(node.right, env))
        if op == "or":
            left = self._eval(node.left, env)
            if _truthy(left):
                return True
            return _truthy(self._eval(node.right, env))
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return _apply_binary(op, left, right)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

class _SortKey:
    """Total-order key tolerating None and mixed types, with direction."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def _rank(self) -> tuple[int, Any]:
        v = self.value
        if v is None:
            return (0, 0)
        if isinstance(v, bool):
            return (1, int(v))
        if isinstance(v, (int, float)):
            return (2, v)
        if isinstance(v, str):
            return (3, v)
        if isinstance(v, PObject):
            return (4, v.oid)
        return (5, repr(v))

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self._rank(), other._rank()
        if self.descending:
            a, b = b, a
        if a[0] != b[0]:
            return a[0] < b[0]
        return a[1] < b[1]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self._rank() == other._rank()


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    """Value-level binary operator semantics (no short-circuit ops)."""
    if op == "in":
        if right is None:
            return False
        if isinstance(right, str):
            return isinstance(left, str) and left in right
        return left in list(right)
    if op == "like":
        return _like(left, right)
    if op in ("=", "!="):
        equal = _equal(left, right)
        return equal if op == "=" else not equal
    if left is None or right is None:
        return None
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EvaluationError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise EvaluationError("modulo by zero")
        return left % right
    raise EvaluationError(f"unknown operator {op!r}")


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, (list, tuple, set, frozenset, dict, str)):
        return len(value) > 0
    return bool(value)


def _equal(left: Any, right: Any) -> bool:
    if isinstance(left, PObject) and isinstance(right, PObject):
        return left.oid == right.oid
    return left == right


def _like(value: Any, pattern: Any) -> bool:
    """SQL-style LIKE: ``%`` any run, ``_`` one char."""
    if not isinstance(value, str) or not isinstance(pattern, str):
        return False
    import re

    regex = "^"
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    regex += "$"
    return re.match(regex, value) is not None


def _result_key(value: Any) -> Any:
    """Hashable identity key: OID for objects, value for scalars."""
    if isinstance(value, PObject):
        return ("obj", value.oid)
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def _distinct(values: list[Any]) -> list[Any]:
    out: list[Any] = []
    seen: set[Any] = set()
    for value in values:
        key = _result_key(value)
        if key in seen:
            continue
        seen.add(key)
        out.append(value)
    return out


def execute(
    schema: Schema,
    text: str,
    classifications: ClassificationManager | None = None,
    params: dict[str, Any] | None = None,
    index_probe: IndexProbe | None = None,
    telemetry: Telemetry | None = None,
) -> Any:
    """Parse and evaluate POOL ``text`` against ``schema``.

    Returns a list of results for SELECT queries, a
    :class:`~repro.classification.GraphView` for EXTRACT GRAPH queries.

    This entry point always uses the *naive* AST interpreter — it is the
    reference implementation the differential query-fuzzing harness
    checks the cost-based planner against.  Planned execution is wired
    up by :class:`~repro.engine.database.PrometheusDB`.
    """
    context = QueryContext(
        schema=schema,
        classifications=classifications,
        params=params or {},
        index_probe=index_probe,
        telemetry=telemetry if telemetry is not None else DISABLED,
    )
    return Evaluator(context).run(parse(text))
