"""Physical plan operators for POOL (§6.1.5.2–6.1.5.3 made explicit).

The cost-based planner (:mod:`repro.query.planner`) compiles a parsed
``SELECT`` into a tree of the operators in this module; the evaluator
then *executes the plan* instead of interpreting the AST.  Operators are
lazy generator pipelines over binding environments (dicts mapping
variable names to values), so ``LIMIT`` stops pulling as soon as it is
satisfied and nothing is materialised before it has to be.

Access-path operators (the leaves of a binding chain):

* :class:`BindExtent` — full extent scan of a class;
* :class:`BindIndexEq` — hash/B-tree equality probe seeding the
  candidate set from an index (the probed conjunct is *not* elided: the
  WHERE clause is still applied in full, exactly like the naive
  evaluator, so a probe can only ever narrow, never change, a result);
* :class:`BindIndexRange` — B-tree range probe for ``<``/``<=``/``>``/
  ``>=`` conjuncts, None-safe (objects whose indexed attribute is null
  are never produced by a range, matching three-valued comparison
  semantics);
* :class:`BindOrderedScan` — B-tree key-ordered extent scan that lets
  the planner elide an ``ORDER BY`` sort;
* :class:`BindTraverse` — relationship traversal source executed as a
  memoized breadth-first walk through an :class:`AdjacencyCache`;
* :class:`BindExpr` — any other source expression, re-evaluated per
  outer row (dependent join).

``Filter`` applies pushed-down or residual WHERE conjuncts; the final
(residual) filter also maintains the ``rows_examined``/``rows_matched``
counters of :class:`~repro.query.nodes.QueryPlanInfo` so EXPLAIN output
stays comparable with the naive evaluator's.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator

from .nodes import (
    AttributeAccess,
    Binary,
    Downcast,
    ExistsExpr,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    Parameter,
    SelectQuery,
    SetOperation,
    Traversal,
    Unary,
    Variable,
)

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Evaluator

Env = dict[str, Any]

#: Aggregates that, projected alone over a query, fold all rows
#: (shared with the evaluator; kept here so the planner can detect
#: aggregate queries without importing the evaluator).
AGGREGATES = ("count", "size", "sum", "avg", "min", "max")


def aggregate_projection(query: SelectQuery) -> FunctionCall | None:
    """``select count(expr) from ...``-style whole-query aggregation."""
    if len(query.projection) != 1 or query.projection[0].alias is not None:
        return None
    expr = query.projection[0].expression
    if isinstance(expr, FunctionCall) and expr.name in AGGREGATES:
        if len(expr.args) == 1:
            return expr
    return None


def split_conjuncts(condition: Node | None) -> list[Node]:
    """Flatten the top-level AND chain of a WHERE clause."""
    if condition is None:
        return []
    if isinstance(condition, Binary) and condition.op == "and":
        return split_conjuncts(condition.left) + split_conjuncts(
            condition.right
        )
    return [condition]


def free_variables(node: Node) -> frozenset[str]:
    """Variable names ``node`` reads from its environment.

    Sub-select bindings bind locally; an extent name used as a source is
    still *reported* as free (the caller subtracts known class names).
    """
    if isinstance(node, (Literal, Parameter)):
        return frozenset()
    if isinstance(node, Variable):
        return frozenset((node.name,))
    if isinstance(node, AttributeAccess):
        return free_variables(node.target)
    if isinstance(node, (Downcast, Traversal)):
        return free_variables(node.target)
    if isinstance(node, Unary):
        return free_variables(node.operand)
    if isinstance(node, Binary):
        return free_variables(node.left) | free_variables(node.right)
    if isinstance(node, MethodCall):
        out = free_variables(node.target)
        for arg in node.args:
            out |= free_variables(arg)
        return out
    if isinstance(node, FunctionCall):
        out: frozenset[str] = frozenset()
        for arg in node.args:
            out |= free_variables(arg)
        return out
    if isinstance(node, ExistsExpr):
        return free_variables(node.subquery)
    if isinstance(node, SetOperation):
        return free_variables(node.left) | free_variables(node.right)
    if isinstance(node, SelectQuery):
        bound: set[str] = set()
        out = frozenset()
        for binding in node.bindings:
            out |= free_variables(binding.source) - frozenset(bound)
            bound.add(binding.variable)
        locals_ = frozenset(bound)
        for clause in (node.where, node.having):
            if clause is not None:
                out |= free_variables(clause) - locals_
        for item in node.projection:
            out |= free_variables(item.expression) - locals_
        for expr in node.group_by:
            out |= free_variables(expr) - locals_
        for order in node.order_by:
            out |= free_variables(order.expression) - locals_
        return out
    return frozenset()


class AdjacencyCache:
    """Per-query memo of relationship adjacency (edge lists per node).

    ``RelationshipRegistry.outgoing``/``incoming`` expand the
    relationship-class hierarchy and rebuild a sorted edge list on every
    call; recursive closures and join-shaped traversals ask for the same
    node's edges over and over.  The cache lives for one query execution
    (it is hung on the :class:`~repro.query.evaluator.QueryContext`), so
    it can never serve stale adjacency across mutations.
    """

    __slots__ = ("schema", "_edges", "hits", "misses")

    def __init__(self, schema: Any) -> None:
        self.schema = schema
        self._edges: dict[tuple[int, str, bool], tuple[Any, ...]] = {}
        self.hits = 0
        self.misses = 0

    def edges(
        self, oid: int, relationship: str, inverse: bool
    ) -> tuple[Any, ...]:
        key = (oid, relationship, inverse)
        got = self._edges.get(key)
        if got is None:
            self.misses += 1
            registry = self.schema.relationships
            found = (
                registry.incoming(oid, relationship)
                if inverse
                else registry.outgoing(oid, relationship)
            )
            got = tuple(found)
            self._edges[key] = got
        else:
            self.hits += 1
        return got


class _Run:
    """Per-execution operator counters (plans are shared via the cache,
    so actual row counts must not live on the plan nodes themselves)."""

    __slots__ = ("counts", "paths_seen")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.paths_seen: set[int] = set()

    def bump(self, op: "PlanOp", n: int = 1) -> None:
        key = id(op)
        self.counts[key] = self.counts.get(key, 0) + n


class PlanOp:
    """Base physical operator: a lazy generator of binding environments."""

    op = "op"

    def __init__(self, children: tuple["PlanOp", ...] = ()) -> None:
        self.children = children
        self.est_rows = 1.0
        self.est_cost = 0.0

    def describe(self) -> dict[str, Any]:
        return {}

    def tree(self, run: _Run | None = None) -> dict[str, Any]:
        out: dict[str, Any] = {"op": self.op}
        out.update(self.describe())
        out["est_rows"] = round(self.est_rows, 1)
        out["est_cost"] = round(self.est_cost, 1)
        if run is not None and id(self) in run.counts:
            out["rows_out"] = run.counts[id(self)]
        if self.children:
            out["children"] = [c.tree(run) for c in self.children]
        return out

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        raise NotImplementedError


class ConstRow(PlanOp):
    """The root of a binding chain: one row, the outer environment."""

    op = "start"

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        yield dict(env)


class BindExtent(PlanOp):
    """Nested-loop bind of ``var`` over a full class extent."""

    op = "extent_scan"

    def __init__(
        self, child: PlanOp, variable: str, class_name: str
    ) -> None:
        super().__init__((child,))
        self.variable = variable
        self.class_name = class_name

    def describe(self) -> dict[str, Any]:
        return {"bind": self.variable, "class": self.class_name}

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        schema = ev.context.schema
        info = ev.context.plan
        for parent in self.children[0].rows(ev, env, run):
            if self.class_name in parent:
                # A (sub)query variable shadows the class name: the
                # source is that value, exactly as in naive evaluation.
                values = _as_collection(parent[self.class_name])
            else:
                info.extent_scans += 1
                if id(self) not in run.paths_seen:
                    run.paths_seen.add(id(self))
                    info.access_paths.append(f"scan:{self.class_name}")
                values = schema.extent(self.class_name)
            for value in values:
                run.bump(self)
                child = dict(parent)
                child[self.variable] = value
                yield child


class BindIndexEq(PlanOp):
    """Bind ``var`` from an index equality probe.

    The probe only *seeds* the candidate set — every WHERE conjunct is
    still applied downstream, so a dropped index (or a probe miss)
    degrades to a scan-plus-filter with identical results.
    """

    op = "index_eq"

    def __init__(
        self,
        child: PlanOp,
        variable: str,
        class_name: str,
        attribute: str,
        value_node: Node,
    ) -> None:
        super().__init__((child,))
        self.variable = variable
        self.class_name = class_name
        self.attribute = attribute
        self.value_node = value_node

    def describe(self) -> dict[str, Any]:
        return {
            "bind": self.variable,
            "index": f"{self.class_name}.{self.attribute}",
            "key": self.value_node.unparse(),
        }

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        ctx = ev.context
        info = ctx.plan
        probe = ctx.index_probe
        for parent in self.children[0].rows(ev, env, run):
            if self.class_name in parent:
                values = _as_collection(parent[self.class_name])
            else:
                value = ev._eval(self.value_node, parent)
                try:
                    hit = (
                        probe(self.class_name, self.attribute, value)
                        if probe is not None
                        else None
                    )
                except TypeError:
                    # Key type incomparable with the B-tree's keys
                    # (``size = "x"``): the naive filter just evaluates
                    # to false, so degrade to scan-plus-filter.
                    hit = None
                if hit is None:
                    # Index vanished between planning and execution
                    # (the epoch-keyed cache makes this unlikely);
                    # degrade to a scan, results unchanged.
                    info.extent_scans += 1
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"scan:{self.class_name}")
                    values = ctx.schema.extent(self.class_name)
                else:
                    name = f"{self.class_name}.{self.attribute}"
                    if info.index_used is None:
                        info.index_used = name
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"index:{name}")
                    info.rows_from_index += len(hit)
                    values = hit
            for obj in values:
                run.bump(self)
                child = dict(parent)
                child[self.variable] = obj
                yield child


class BindIndexRange(PlanOp):
    """Bind ``var`` from a B-tree range probe (None-safe).

    Bounds are expressions evaluated per outer row; a bound that
    evaluates to null produces no rows (three-valued comparison: the
    naive filter ``attr > null`` is never truthy).  Objects whose
    indexed attribute is null are never produced (they live outside the
    B-tree's key order), matching the naive filter's behaviour.
    """

    op = "index_range"

    def __init__(
        self,
        child: PlanOp,
        variable: str,
        class_name: str,
        attribute: str,
        low_node: Node | None,
        high_node: Node | None,
        include_low: bool,
        include_high: bool,
    ) -> None:
        super().__init__((child,))
        self.variable = variable
        self.class_name = class_name
        self.attribute = attribute
        self.low_node = low_node
        self.high_node = high_node
        self.include_low = include_low
        self.include_high = include_high

    def describe(self) -> dict[str, Any]:
        low = self.low_node.unparse() if self.low_node is not None else None
        high = self.high_node.unparse() if self.high_node is not None else None
        return {
            "bind": self.variable,
            "index": f"{self.class_name}.{self.attribute}",
            "low": low,
            "high": high,
            "include_low": self.include_low,
            "include_high": self.include_high,
        }

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        ctx = ev.context
        info = ctx.plan
        catalog = ctx.planner.catalog if ctx.planner is not None else None
        name = f"{self.class_name}.{self.attribute}"
        for parent in self.children[0].rows(ev, env, run):
            if self.class_name in parent:
                values: list[Any] = _as_collection(parent[self.class_name])
            else:
                low = high = None
                if self.low_node is not None:
                    low = ev._eval(self.low_node, parent)
                    if low is None:
                        continue  # attr > null matches nothing
                if self.high_node is not None:
                    high = ev._eval(self.high_node, parent)
                    if high is None:
                        continue
                hit = (
                    catalog.range_probe(
                        self.class_name,
                        self.attribute,
                        low,
                        high,
                        self.include_low,
                        self.include_high,
                    )
                    if catalog is not None
                    else None
                )
                if hit is None:
                    info.extent_scans += 1
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"scan:{self.class_name}")
                    values = ctx.schema.extent(self.class_name)
                else:
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"range:{name}")
                    info.rows_from_index += len(hit)
                    values = hit
            for obj in values:
                run.bump(self)
                child = dict(parent)
                child[self.variable] = obj
                yield child


class BindOrderedScan(PlanOp):
    """Bind ``var`` over a class extent in B-tree key order.

    Chosen only when the plan's single ``ORDER BY`` key is the indexed
    attribute and the index holds keys of one comparison category, so
    index order provably equals the evaluator's sort order (nulls first
    ascending, last descending; ties in OID order — the stable-sort
    order of the naive evaluator).
    """

    op = "index_ordered_scan"

    def __init__(
        self,
        child: PlanOp,
        variable: str,
        class_name: str,
        attribute: str,
        descending: bool,
    ) -> None:
        super().__init__((child,))
        self.variable = variable
        self.class_name = class_name
        self.attribute = attribute
        self.descending = descending

    def describe(self) -> dict[str, Any]:
        return {
            "bind": self.variable,
            "index": f"{self.class_name}.{self.attribute}",
            "descending": self.descending,
        }

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        from .evaluator import _SortKey

        ctx = ev.context
        info = ctx.plan
        catalog = ctx.planner.catalog if ctx.planner is not None else None
        name = f"{self.class_name}.{self.attribute}"
        for parent in self.children[0].rows(ev, env, run):
            if self.class_name in parent:
                values: Any = _as_collection(parent[self.class_name])
            else:
                ordered = (
                    catalog.ordered_scan(
                        self.class_name, self.attribute, self.descending
                    )
                    if catalog is not None
                    else None
                )
                if ordered is None:
                    # Index vanished or went heterogeneous since
                    # planning: the sort was elided, so the fallback
                    # must itself produce sorted order.
                    info.extent_scans += 1
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"sorted_scan:{self.class_name}")
                    values = sorted(
                        ctx.schema.extent(self.class_name),
                        key=lambda o: _SortKey(
                            ev._attribute(o, self.attribute), self.descending
                        ),
                    )
                else:
                    if id(self) not in run.paths_seen:
                        run.paths_seen.add(id(self))
                        info.access_paths.append(f"ordered:{name}")
                    values = ordered
            for obj in values:
                run.bump(self)
                child = dict(parent)
                child[self.variable] = obj
                yield child


class BindTraverse(PlanOp):
    """Bind ``var`` from a relationship traversal of an earlier binding.

    Executes through the evaluator's breadth-first closure walk, which
    reads adjacency through the per-query :class:`AdjacencyCache` when
    the planner is active — repeated walks over shared substructure
    (joins, deep closures) fetch each node's edge list exactly once.
    """

    op = "traverse"

    def __init__(
        self, child: PlanOp, variable: str, traversal: Traversal
    ) -> None:
        super().__init__((child,))
        self.variable = variable
        self.traversal = traversal

    def describe(self) -> dict[str, Any]:
        t = self.traversal
        return {
            "bind": self.variable,
            "relationship": t.relationship,
            "inverse": t.inverse,
            "depth": [t.min_depth, t.max_depth],
            "scope": t.scope,
        }

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        for parent in self.children[0].rows(ev, env, run):
            for value in ev._traverse(self.traversal, parent):
                run.bump(self)
                child = dict(parent)
                child[self.variable] = value
                yield child


class BindExpr(PlanOp):
    """Bind ``var`` from an arbitrary source expression (dependent join,
    sub-select, downcast source, collection-valued attribute, ...)."""

    op = "bind"

    def __init__(self, child: PlanOp, variable: str, source: Node) -> None:
        super().__init__((child,))
        self.variable = variable
        self.source = source

    def describe(self) -> dict[str, Any]:
        return {"bind": self.variable, "source": self.source.unparse()[:80]}

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        for parent in self.children[0].rows(ev, env, run):
            value = ev._eval(self.source, parent)
            for item in _as_collection(value):
                run.bump(self)
                child = dict(parent)
                child[self.variable] = item
                yield child


class Filter(PlanOp):
    """Apply WHERE conjuncts; the residual (``counting=True``) filter
    also maintains rows_examined / rows_matched for EXPLAIN parity."""

    op = "filter"

    def __init__(
        self, child: PlanOp, conjuncts: tuple[Node, ...], counting: bool
    ) -> None:
        super().__init__((child,))
        self.conjuncts = conjuncts
        self.counting = counting

    def describe(self) -> dict[str, Any]:
        return {
            "predicate": " and ".join(c.unparse() for c in self.conjuncts)
            or "true",
            "pushed_down": not self.counting,
        }

    def rows(self, ev: "Evaluator", env: Env, run: _Run) -> Iterator[Env]:
        from .evaluator import _truthy  # local import: no cycle at module load

        info = ev.context.plan
        counting = self.counting
        conjuncts = self.conjuncts
        for row in self.children[0].rows(ev, env, run):
            if counting:
                info.rows_examined += 1
            ok = True
            for conjunct in conjuncts:
                if not _truthy(ev._eval(conjunct, row)):
                    ok = False
                    break
            if not ok:
                continue
            if counting:
                info.rows_matched += 1
            run.bump(self)
            yield row


class _Describe(PlanOp):
    """Display-only tail operator (project / sort / distinct / limit):
    present in the EXPLAIN tree, executed by :class:`SelectPlan`."""

    def __init__(
        self, op: str, child: PlanOp, **extra: Any
    ) -> None:
        super().__init__((child,))
        self.op = op
        self.extra = extra

    def describe(self) -> dict[str, Any]:
        return dict(self.extra)


class SelectPlan:
    """A compiled SELECT: source pipeline plus result-shaping tail.

    ``source`` yields post-WHERE binding environments; :meth:`execute`
    applies projection, ordering (unless ``order_elided``), DISTINCT and
    LIMIT with the exact semantics of the naive evaluator.  Grouped and
    whole-query-aggregate selects consume :meth:`stream` instead and
    reuse the evaluator's folding logic.
    """

    def __init__(
        self,
        query: SelectQuery,
        source: PlanOp,
        display: PlanOp,
        order_elided: bool,
        considered: tuple[str, ...],
        notes: tuple[str, ...],
        est_cost: float,
    ) -> None:
        self.query = query
        self.source = source
        self.display = display
        self.order_elided = order_elided
        self.considered = considered
        self.notes = notes
        self.est_cost = est_cost

    # -- execution -----------------------------------------------------

    def stream(
        self, ev: "Evaluator", outer_env: Env, run: _Run | None = None
    ) -> Iterator[Env]:
        """Post-WHERE binding environments (for grouped/aggregate use)."""
        run = run if run is not None else _Run()
        return self.source.rows(ev, outer_env, run)

    def execute(self, ev: "Evaluator", outer_env: Env) -> list[Any]:
        from .evaluator import _distinct, _SortKey

        query = self.query
        run = _Run()
        self.annotate(ev)
        rows = self.source.rows(ev, outer_env, run)
        if query.order_by and not self.order_elided:
            kept: list[tuple[tuple[Any, ...], Any]] = []
            for env in rows:
                keys = tuple(
                    _SortKey(ev._eval(item.expression, env), item.descending)
                    for item in query.order_by
                )
                kept.append((keys, ev._project(query, env)))
            kept.sort(key=lambda pair: pair[0])
            results = [value for _, value in kept]
            if query.distinct:
                results = _distinct(results)
            if query.limit is not None:
                results = results[: query.limit]
        else:
            out: Iterator[Any] = (
                ev._project(query, env) for env in rows
            )
            if query.distinct:
                out = _distinct_iter(out)
            if query.limit is not None:
                out = itertools.islice(out, query.limit)
            results = list(out)
        self._finish(ev, run)
        return results

    def annotate(self, ev: "Evaluator") -> None:
        info = ev.context.plan
        info.engine = "cost"
        info.est_cost = round(self.est_cost, 2)
        info.indexes_considered.extend(self.considered)
        info.notes.extend(self.notes)

    def finish_stream(self, ev: "Evaluator", run: _Run) -> None:
        """Record the plan tree after a stream consumer finished."""
        self._finish(ev, run)

    def _finish(self, ev: "Evaluator", run: _Run) -> None:
        # Re-assert engine/cost: a planned subquery executed mid-stream
        # overwrote them with its own, and the outer plan finishes last.
        info = ev.context.plan
        info.engine = "cost"
        info.est_cost = round(self.est_cost, 2)
        info.plan_tree = self.display.tree(run)


def _distinct_iter(values: Iterator[Any]) -> Iterator[Any]:
    from .evaluator import _result_key

    seen: set[Any] = set()
    for value in values:
        key = _result_key(value)
        if key in seen:
            continue
        seen.add(key)
        yield value


def _as_collection(value: Any) -> list[Any]:
    if value is None:
        return []
    if isinstance(value, (list, tuple, set, frozenset)):
        return list(value)
    return [value]
