"""Hand-written lexer for POOL query text."""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenType

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "*": TokenType.STAR,
    "+": TokenType.PLUS,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
    ":": TokenType.COLON,
}


def tokenize(text: str) -> list[Token]:
    """Turn POOL text into a token list ending with EOF.

    Raises:
        LexError: on any character or literal the grammar does not know.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch.isspace():
            pos += 1
            continue
        if ch == "-" and text.startswith("--", pos):
            # Line comment.
            newline = text.find("\n", pos)
            pos = length if newline == -1 else newline
            continue
        if ch == "-" and pos + 1 < length and text[pos + 1] == ">":
            tokens.append(Token(TokenType.ARROW, "->", pos, line))
            pos += 2
            continue
        if ch == "<":
            if text.startswith("<-", pos):
                tokens.append(Token(TokenType.BACKARROW, "<-", pos, line))
                pos += 2
            elif text.startswith("<=", pos):
                tokens.append(Token(TokenType.LE, "<=", pos, line))
                pos += 2
            elif text.startswith("<>", pos):
                tokens.append(Token(TokenType.NE, "<>", pos, line))
                pos += 2
            else:
                tokens.append(Token(TokenType.LT, "<", pos, line))
                pos += 1
            continue
        if ch == ">":
            if text.startswith(">=", pos):
                tokens.append(Token(TokenType.GE, ">=", pos, line))
                pos += 2
            else:
                tokens.append(Token(TokenType.GT, ">", pos, line))
                pos += 1
            continue
        if ch == "!":
            if text.startswith("!=", pos):
                tokens.append(Token(TokenType.NE, "!=", pos, line))
                pos += 2
                continue
            raise LexError("unexpected '!'", pos, line)
        if ch == "-":
            tokens.append(Token(TokenType.MINUS, "-", pos, line))
            pos += 1
            continue
        if ch in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[ch], ch, pos, line))
            pos += 1
            continue
        if ch in "\"'":
            end = pos + 1
            buf: list[str] = []
            while end < length and text[end] != ch:
                if text[end] == "\\" and end + 1 < length:
                    buf.append(text[end + 1])
                    end += 2
                else:
                    buf.append(text[end])
                    end += 1
            if end >= length:
                raise LexError("unterminated string literal", pos, line)
            tokens.append(Token(TokenType.STRING, "".join(buf), pos, line))
            pos = end + 1
            continue
        if ch.isdigit():
            end = pos
            is_float = False
            while end < length and (
                text[end].isdigit()
                or (
                    text[end] == "."
                    and not is_float
                    and end + 1 < length
                    and text[end + 1].isdigit()
                )
            ):
                if text[end] == ".":
                    is_float = True
                end += 1
            literal = text[pos:end]
            tokens.append(
                Token(
                    TokenType.FLOAT if is_float else TokenType.INT,
                    literal,
                    pos,
                    line,
                )
            )
            pos = end
            continue
        if ch == "$":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == pos + 1:
                raise LexError("bare '$' (parameter name expected)", pos, line)
            tokens.append(Token(TokenType.PARAM, text[pos + 1 : end], pos, line))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            token_type = KEYWORDS.get(word.lower(), TokenType.IDENT)
            tokens.append(Token(token_type, word, pos, line))
            pos = end
            continue
        raise LexError(f"unexpected character {ch!r}", pos, line)
    tokens.append(Token(TokenType.EOF, "", pos, line))
    return tokens
