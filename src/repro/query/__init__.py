"""POOL — the Prometheus Object-Oriented Language (thesis chapter 5.1).

An OQL-derived, select-only query language extended with:

* uniform treatment of objects and relationship instances;
* relationship traversal operators ``->`` / ``<-`` with transitive
  closures ``*`` / ``+`` / ``{m,n}`` (depth control) and per-
  classification scoping ``->Rel["name"]``;
* selective downcast ``(Class) expr``;
* graph extraction ``extract graph from <expr> via Rel ...``;
* static type checking against the schema's metaobjects.

Entry points: :func:`parse`, :func:`execute`, :func:`typecheck`.
"""

from .evaluator import Evaluator, QueryContext, execute
from .lexer import tokenize
from .nodes import (
    AttributeAccess,
    Binary,
    Binding,
    Downcast,
    ExistsExpr,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    OrderItem,
    Parameter,
    ProjectionItem,
    Query,
    SelectQuery,
    SetOperation,
    Traversal,
    Unary,
    Variable,
)
from .parser import Parser, parse, parse_expression
from .planner import Planner, normalize_query
from .plans import AdjacencyCache, SelectPlan
from .typecheck import TypeChecker, TypeReport, typecheck

__all__ = [
    "AdjacencyCache",
    "AttributeAccess",
    "Binary",
    "Binding",
    "Downcast",
    "Evaluator",
    "ExistsExpr",
    "ExtractGraphQuery",
    "FunctionCall",
    "Literal",
    "MethodCall",
    "Node",
    "OrderItem",
    "Parameter",
    "Parser",
    "Planner",
    "ProjectionItem",
    "Query",
    "QueryContext",
    "SelectPlan",
    "SelectQuery",
    "SetOperation",
    "Traversal",
    "TypeChecker",
    "TypeReport",
    "Unary",
    "Variable",
    "execute",
    "normalize_query",
    "parse",
    "parse_expression",
    "tokenize",
    "typecheck",
]
