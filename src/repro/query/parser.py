"""Recursive-descent parser for POOL.

Grammar (simplified EBNF)::

    query        := select_query | extract_query
    select_query := SELECT [DISTINCT] projection FROM bindings
                    [WHERE expr] [ORDER BY order_items] [LIMIT INT]
    projection   := '*' | proj_item (',' proj_item)*
    proj_item    := expr [AS IDENT]
    bindings     := IDENT IN source (',' IDENT IN source)*
    source       := expr | '(' select_query ')'
    extract_query:= EXTRACT GRAPH FROM expr VIA IDENT [DEPTH INT]
                    [IN CLASSIFICATION STRING]
    expr         := or_expr
    or_expr      := and_expr (OR and_expr)*
    and_expr     := not_expr (AND not_expr)*
    not_expr     := NOT not_expr | comparison
    comparison   := additive [(=|!=|<|<=|>|>=|LIKE|IN) additive]
    additive     := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary        := '-' unary | postfix
    postfix      := primary (('.' IDENT ['(' args ')'])
                            | (('->'|'<-') IDENT [scope] [closure]))*
    scope        := '[' STRING ']'
    closure      := '*' | '+' | '{' INT [',' [INT]] '}'
    primary      := literal | PARAM | IDENT ['(' args ')']
                  | '(' select_query ')' | '(' IDENT ')' postfix  (downcast)
                  | '(' expr ')' | EXISTS '(' select_query ')'
"""

from __future__ import annotations

from ..errors import ParseError
from .lexer import tokenize
from .nodes import (
    AttributeAccess,
    Binary,
    Binding,
    Downcast,
    ExistsExpr,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    OrderItem,
    Parameter,
    ProjectionItem,
    Query,
    SelectQuery,
    SetOperation,
    Traversal,
    Unary,
    Variable,
)
from .tokens import Token, TokenType

_COMPARISONS = {
    TokenType.EQ: "=",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, *types: TokenType) -> bool:
        return self._peek().type in types

    def _match(self, *types: TokenType) -> Token | None:
        if self._check(*types):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str = "") -> Token:
        token = self._peek()
        if token.type is not token_type:
            label = what or token_type.value
            raise ParseError(
                f"expected {label}, got {token.value!r} "
                f"(line {token.line})"
            )
        return self._advance()

    # -- entry points --------------------------------------------------------

    def parse_query(self) -> Query:
        if self._check(TokenType.EXTRACT):
            query: Query = self._extract_query()
        else:
            query = self._set_expression()
        self._expect(TokenType.EOF, "end of query")
        return query

    def _set_expression(self) -> "SelectQuery | SetOperation":
        """select_query ((UNION|INTERSECT|EXCEPT) select_query)*

        Left-associative, all three operators at one precedence level
        (parenthesise to group differently — a parenthesised set
        expression is accepted wherever a select is)."""
        left: SelectQuery | SetOperation = self._select_or_group()
        while True:
            token = self._match(
                TokenType.UNION, TokenType.INTERSECT, TokenType.EXCEPT
            )
            if token is None:
                return left
            right = self._select_or_group()
            left = SetOperation(
                op=token.type.value.lower(), left=left, right=right
            )

    def _select_or_group(self) -> "SelectQuery | SetOperation":
        if self._check(TokenType.LPAREN) and self._peek(1).type in (
            TokenType.SELECT,
        ):
            self._advance()
            inner = self._set_expression()
            self._expect(TokenType.RPAREN)
            return inner
        return self._select_query()

    def parse_expression(self) -> Node:
        expr = self._expression()
        self._expect(TokenType.EOF, "end of expression")
        return expr

    # -- queries ---------------------------------------------------------------

    def _select_query(self) -> SelectQuery:
        self._expect(TokenType.SELECT)
        distinct = self._match(TokenType.DISTINCT) is not None
        projection: tuple[ProjectionItem, ...]
        if self._match(TokenType.STAR):
            projection = ()
        else:
            items = [self._projection_item()]
            while self._match(TokenType.COMMA):
                items.append(self._projection_item())
            projection = tuple(items)
        self._expect(TokenType.FROM)
        bindings = [self._binding()]
        while self._match(TokenType.COMMA):
            bindings.append(self._binding())
        where = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        group_by: tuple[Node, ...] = ()
        having = None
        if self._match(TokenType.GROUP):
            self._expect(TokenType.BY)
            groups = [self._expression()]
            while self._match(TokenType.COMMA):
                groups.append(self._expression())
            group_by = tuple(groups)
            if self._match(TokenType.HAVING):
                having = self._expression()
        order_by: tuple[OrderItem, ...] = ()
        if self._match(TokenType.ORDER):
            self._expect(TokenType.BY)
            items_o = [self._order_item()]
            while self._match(TokenType.COMMA):
                items_o.append(self._order_item())
            order_by = tuple(items_o)
        limit = None
        if self._match(TokenType.LIMIT):
            limit_token = self._expect(TokenType.INT, "limit count")
            limit = int(limit_token.value)
        return SelectQuery(
            projection=projection,
            bindings=tuple(bindings),
            where=where,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _extract_query(self) -> ExtractGraphQuery:
        self._expect(TokenType.EXTRACT)
        self._expect(TokenType.GRAPH)
        self._expect(TokenType.FROM)
        start = self._expression()
        self._expect(TokenType.VIA)
        rel = self._expect(TokenType.IDENT, "relationship name").value
        depth = None
        if self._match(TokenType.DEPTH):
            depth = int(self._expect(TokenType.INT, "depth").value)
        classification = None
        if self._match(TokenType.IN):
            self._expect(TokenType.CLASSIFICATION)
            classification = self._expect(
                TokenType.STRING, "classification name"
            ).value
        return ExtractGraphQuery(
            start=start,
            relationship=rel,
            depth=depth,
            classification=classification,
        )

    def _projection_item(self) -> ProjectionItem:
        expr = self._expression()
        alias = None
        if self._match(TokenType.AS):
            alias = self._expect(TokenType.IDENT, "alias").value
        return ProjectionItem(expression=expr, alias=alias)

    def _order_item(self) -> OrderItem:
        expr = self._expression()
        descending = False
        if self._match(TokenType.DESC):
            descending = True
        else:
            self._match(TokenType.ASC)
        return OrderItem(expression=expr, descending=descending)

    def _binding(self) -> Binding:
        variable = self._expect(TokenType.IDENT, "binding variable").value
        self._expect(TokenType.IN, "'in'")
        if self._check(TokenType.LPAREN) and self._peek(1).type is TokenType.SELECT:
            self._advance()
            source: Node = self._select_query()
            self._expect(TokenType.RPAREN)
        else:
            source = self._expression()
        return Binding(variable=variable, source=source)

    # -- expressions -------------------------------------------------------------

    def _expression(self) -> Node:
        return self._implies_expr()

    def _implies_expr(self) -> Node:
        """``A implies B`` desugars to ``(not A) or B`` (right-assoc)."""
        left = self._or_expr()
        if self._match(TokenType.IMPLIES):
            right = self._implies_expr()
            return Binary("or", Unary("not", left), right)
        return left

    def _or_expr(self) -> Node:
        left = self._and_expr()
        while self._match(TokenType.OR):
            right = self._and_expr()
            left = Binary("or", left, right)
        return left

    def _and_expr(self) -> Node:
        left = self._not_expr()
        while self._match(TokenType.AND):
            right = self._not_expr()
            left = Binary("and", left, right)
        return left

    def _not_expr(self) -> Node:
        if self._match(TokenType.NOT):
            return Unary("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Node:
        left = self._additive()
        token = self._peek()
        if token.type in _COMPARISONS:
            self._advance()
            right = self._additive()
            return Binary(_COMPARISONS[token.type], left, right)
        if token.type is TokenType.LIKE:
            self._advance()
            right = self._additive()
            return Binary("like", left, right)
        if token.type is TokenType.IN:
            self._advance()
            right = self._additive()
            return Binary("in", left, right)
        if token.type is TokenType.NOT and self._peek(1).type is TokenType.IN:
            self._advance()
            self._advance()
            right = self._additive()
            return Unary("not", Binary("in", left, right))
        return left

    def _additive(self) -> Node:
        left = self._multiplicative()
        while True:
            if self._match(TokenType.PLUS):
                left = Binary("+", left, self._multiplicative())
            elif self._match(TokenType.MINUS):
                left = Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Node:
        left = self._unary()
        while True:
            if self._match(TokenType.STAR):
                left = Binary("*", left, self._unary())
            elif self._match(TokenType.SLASH):
                left = Binary("/", left, self._unary())
            elif self._match(TokenType.PERCENT):
                left = Binary("%", left, self._unary())
            else:
                return left

    def _unary(self) -> Node:
        if self._match(TokenType.MINUS):
            return Unary("-", self._unary())
        return self._postfix()

    def _postfix(self) -> Node:
        node = self._primary()
        while True:
            if self._match(TokenType.DOT):
                name = self._expect(TokenType.IDENT, "attribute name").value
                if self._match(TokenType.LPAREN):
                    args = self._arguments()
                    node = MethodCall(target=node, name=name, args=args)
                else:
                    node = AttributeAccess(target=node, name=name)
                continue
            arrow = self._match(TokenType.ARROW, TokenType.BACKARROW)
            if arrow is not None:
                rel_token = self._expect(TokenType.IDENT, "relationship name")
                rel = rel_token.value
                scope = None
                end_pos = rel_token.position + len(rel)
                if self._match(TokenType.LBRACKET):
                    scope_token = self._expect(TokenType.STRING, "scope name")
                    scope = scope_token.value
                    closer = self._expect(TokenType.RBRACKET)
                    end_pos = closer.position + 1
                min_depth, max_depth = self._closure(end_pos)
                node = Traversal(
                    target=node,
                    relationship=rel,
                    inverse=arrow.type is TokenType.BACKARROW,
                    min_depth=min_depth,
                    max_depth=max_depth,
                    scope=scope,
                )
                continue
            return node

    def _closure(self, attach_pos: int) -> tuple[int, int | None]:
        """Parse an optional closure suffix.

        ``*`` and ``+`` double as binary operators, so they only count as
        closures when written immediately after the relationship name
        (``x->Rel*`` is a closure; ``x->Rel * 2`` is multiplication).
        """
        nxt = self._peek()
        if nxt.type in (TokenType.STAR, TokenType.PLUS):
            if nxt.position != attach_pos:
                return (1, 1)
        if self._match(TokenType.STAR):
            return (0, None)
        if self._match(TokenType.PLUS):
            return (1, None)
        if self._match(TokenType.LBRACE):
            low = int(self._expect(TokenType.INT, "depth bound").value)
            high: int | None = low
            if self._match(TokenType.COMMA):
                if self._check(TokenType.INT):
                    high = int(self._advance().value)
                else:
                    high = None
            self._expect(TokenType.RBRACE)
            if high is not None and high < low:
                raise ParseError(f"closure bounds inverted: {{{low},{high}}}")
            return (low, high)
        return (1, 1)

    def _arguments(self) -> tuple[Node, ...]:
        if self._match(TokenType.RPAREN):
            return ()
        args = [self._expression()]
        while self._match(TokenType.COMMA):
            args.append(self._expression())
        self._expect(TokenType.RPAREN)
        return tuple(args)

    def _primary(self) -> Node:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.TRUE:
            self._advance()
            return Literal(True)
        if token.type is TokenType.FALSE:
            self._advance()
            return Literal(False)
        if token.type is TokenType.NULL:
            self._advance()
            return Literal(None)
        if token.type is TokenType.PARAM:
            self._advance()
            return Parameter(token.value)
        if token.type is TokenType.EXISTS:
            self._advance()
            self._expect(TokenType.LPAREN)
            sub = self._select_query()
            self._expect(TokenType.RPAREN)
            return ExistsExpr(sub)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._match(TokenType.LPAREN):
                args = self._arguments()
                return FunctionCall(name=token.value, args=args)
            return Variable(token.value)
        if token.type is TokenType.LPAREN:
            # Three cases: subquery, downcast, parenthesised expression.
            if self._peek(1).type is TokenType.SELECT:
                self._advance()
                sub = self._select_query()
                self._expect(TokenType.RPAREN)
                return sub
            if (
                self._peek(1).type is TokenType.IDENT
                and self._peek(2).type is TokenType.RPAREN
                and self._peek(3).type
                in (
                    TokenType.IDENT,
                    TokenType.PARAM,
                    TokenType.LPAREN,
                    TokenType.STRING,
                )
            ):
                self._advance()
                class_name = self._advance().value
                self._advance()  # RPAREN
                target = self._postfix()
                return Downcast(class_name=class_name, target=target)
            self._advance()
            expr = self._expression()
            self._expect(TokenType.RPAREN)
            return expr
        raise ParseError(
            f"unexpected token {token.value!r} (line {token.line})"
        )


def parse(text: str) -> Query:
    """Parse POOL query text into an AST."""
    return Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Node:
    """Parse a bare POOL expression (used by rules/PCL)."""
    return Parser(tokenize(text)).parse_expression()
