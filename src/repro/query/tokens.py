"""Token definitions for POOL, the Prometheus Object-Oriented Language.

POOL extends OQL's select/from/where with relationship operators
(``->``/``<-`` hops, ``*``/``+``/``{m,n}`` closures), selective downcast
and graph extraction (thesis §5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # literals & identifiers
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    IDENT = "IDENT"
    PARAM = "PARAM"          # $name — query parameter

    # keywords
    SELECT = "SELECT"
    DISTINCT = "DISTINCT"
    FROM = "FROM"
    WHERE = "WHERE"
    IN = "IN"
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    TRUE = "TRUE"
    FALSE = "FALSE"
    NULL = "NULL"
    AS = "AS"
    ORDER = "ORDER"
    BY = "BY"
    ASC = "ASC"
    DESC = "DESC"
    LIMIT = "LIMIT"
    LIKE = "LIKE"
    EXTRACT = "EXTRACT"
    GRAPH = "GRAPH"
    VIA = "VIA"
    DEPTH = "DEPTH"
    CLASSIFICATION = "CLASSIFICATION"
    EXISTS = "EXISTS"
    IMPLIES = "IMPLIES"
    GROUP = "GROUP"
    HAVING = "HAVING"
    UNION = "UNION"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    BACKARROW = "<-"
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    PERCENT = "%"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    COLON = ":"

    EOF = "EOF"


KEYWORDS = {
    "select": TokenType.SELECT,
    "distinct": TokenType.DISTINCT,
    "from": TokenType.FROM,
    "where": TokenType.WHERE,
    "in": TokenType.IN,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
    "nil": TokenType.NULL,
    "as": TokenType.AS,
    "order": TokenType.ORDER,
    "by": TokenType.BY,
    "asc": TokenType.ASC,
    "desc": TokenType.DESC,
    "limit": TokenType.LIMIT,
    "like": TokenType.LIKE,
    "extract": TokenType.EXTRACT,
    "graph": TokenType.GRAPH,
    "via": TokenType.VIA,
    "depth": TokenType.DEPTH,
    "classification": TokenType.CLASSIFICATION,
    "exists": TokenType.EXISTS,
    "implies": TokenType.IMPLIES,
    "group": TokenType.GROUP,
    "having": TokenType.HAVING,
    "union": TokenType.UNION,
    "intersect": TokenType.INTERSECT,
    "except": TokenType.EXCEPT,
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.type.name}, {self.value!r}@{self.line}:{self.position})"
