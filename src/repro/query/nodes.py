"""POOL abstract syntax tree nodes.

Every node can render itself back to POOL text (``unparse``), which the
property-based tests use for parse/unparse round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Node:
    """Base class of all AST nodes."""

    def unparse(self) -> str:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal(Node):
    value: Any  # int | float | str | bool | None

    def unparse(self) -> str:
        if self.value is None:
            return "null"
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)


@dataclass(frozen=True)
class Variable(Node):
    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class Parameter(Node):
    name: str

    def unparse(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class AttributeAccess(Node):
    target: Node
    name: str

    def unparse(self) -> str:
        return f"{self.target.unparse()}.{self.name}"


@dataclass(frozen=True)
class MethodCall(Node):
    target: Node
    name: str
    args: tuple[Node, ...] = ()

    def unparse(self) -> str:
        rendered = ", ".join(a.unparse() for a in self.args)
        return f"{self.target.unparse()}.{self.name}({rendered})"


@dataclass(frozen=True)
class FunctionCall(Node):
    name: str
    args: tuple[Node, ...] = ()

    def unparse(self) -> str:
        rendered = ", ".join(a.unparse() for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Traversal(Node):
    """A relationship hop: ``x->Rel``, ``x<-Rel``, with optional closure
    bounds and classification scope.

    ``min_depth``/``max_depth`` encode the closure: a plain hop is (1, 1);
    ``*`` is (0, None); ``+`` is (1, None); ``{m,n}`` is (m, n).
    """

    target: Node
    relationship: str
    inverse: bool = False
    min_depth: int = 1
    max_depth: int | None = 1
    scope: str | None = None  # classification name

    def unparse(self) -> str:
        op = "<-" if self.inverse else "->"
        text = f"{self.target.unparse()}{op}{self.relationship}"
        if self.scope is not None:
            escaped = self.scope.replace('"', '\\"')
            text += f'["{escaped}"]'
        if (self.min_depth, self.max_depth) == (0, None):
            text += "*"
        elif (self.min_depth, self.max_depth) == (1, None):
            text += "+"
        elif (self.min_depth, self.max_depth) != (1, 1):
            if self.max_depth is None:
                text += f"{{{self.min_depth},}}"
            elif self.min_depth == self.max_depth:
                text += f"{{{self.min_depth}}}"
            else:
                text += f"{{{self.min_depth},{self.max_depth}}}"
        return text


@dataclass(frozen=True)
class Downcast(Node):
    """Selective downcast ``(ClassName) expr`` (§5.1.1.2): keeps only
    instances of the class; on a collection it filters, on a single
    object it yields the object or null."""

    class_name: str
    target: Node

    def unparse(self) -> str:
        return f"({self.class_name}) {self.target.unparse()}"


@dataclass(frozen=True)
class Unary(Node):
    op: str  # "-" | "not"
    operand: Node

    def unparse(self) -> str:
        if self.op == "not":
            return f"not {self.operand.unparse()}"
        return f"-{self.operand.unparse()}"


@dataclass(frozen=True)
class Binary(Node):
    op: str  # arithmetic, comparison, and/or, in, like
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class ExistsExpr(Node):
    subquery: "SelectQuery"

    def unparse(self) -> str:
        return f"exists ({self.subquery.unparse()})"


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Binding(Node):
    """``var in Source`` in a FROM clause; source is an extent name or a
    sub-query or any expression yielding a collection."""

    variable: str
    source: Node

    def unparse(self) -> str:
        return f"{self.variable} in {self.source.unparse()}"


@dataclass(frozen=True)
class ProjectionItem(Node):
    expression: Node
    alias: str | None = None

    def unparse(self) -> str:
        text = self.expression.unparse()
        if self.alias:
            text += f" as {self.alias}"
        return text


@dataclass(frozen=True)
class OrderItem(Node):
    expression: Node
    descending: bool = False

    def unparse(self) -> str:
        return self.expression.unparse() + (" desc" if self.descending else "")


@dataclass(frozen=True)
class SelectQuery(Node):
    projection: tuple[ProjectionItem, ...]  # empty tuple means '*'
    bindings: tuple[Binding, ...] = ()
    where: Node | None = None
    distinct: bool = False
    group_by: tuple[Node, ...] = ()
    having: Node | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    def unparse(self) -> str:
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        if not self.projection:
            parts.append("*")
        else:
            parts.append(", ".join(p.unparse() for p in self.projection))
        parts.append("from")
        parts.append(", ".join(b.unparse() for b in self.bindings))
        if self.where is not None:
            parts.append("where")
            parts.append(self.where.unparse())
        if self.group_by:
            parts.append("group by")
            parts.append(", ".join(g.unparse() for g in self.group_by))
        if self.having is not None:
            parts.append("having")
            parts.append(self.having.unparse())
        if self.order_by:
            parts.append("order by")
            parts.append(", ".join(o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class ExtractGraphQuery(Node):
    """``extract graph from <expr> via Rel [depth n]
    [in classification "name"]`` — the parameterised graph extraction of
    §5.1.1.3.  Returns a :class:`~repro.classification.GraphView`."""

    start: Node
    relationship: str
    depth: int | None = None
    classification: str | None = None

    def unparse(self) -> str:
        text = (
            f"extract graph from {self.start.unparse()} via "
            f"{self.relationship}"
        )
        if self.depth is not None:
            text += f" depth {self.depth}"
        if self.classification is not None:
            escaped = self.classification.replace('"', '\\"')
            text += f' in classification "{escaped}"'
        return text


@dataclass(frozen=True)
class SetOperation(Node):
    """OQL set operator between two queries: union / intersect / except.

    Operates with object-identity semantics on object results and value
    equality on scalars; result order follows the left operand (then the
    right, for union)."""

    op: str  # "union" | "intersect" | "except"
    left: "SelectQuery | SetOperation"
    right: "SelectQuery | SetOperation"

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


Query = SelectQuery | ExtractGraphQuery | SetOperation


@dataclass
class QueryPlanInfo:
    """Optimiser annotations attached during evaluation (§6.1.5.3).

    Filled in by the evaluator as it runs; ``EXPLAIN``/``PROFILE``
    (see :meth:`repro.engine.database.PrometheusDB.query`) surface it to
    callers.  ``access_paths`` records one entry per FROM-clause source:
    ``index:<Class.attr>`` when an index seeded the candidate set,
    ``scan:<Class>`` for a full extent scan.  ``rows_examined`` counts
    binding rows fed to the WHERE clause, ``rows_matched`` those that
    survived it; ``traversal_max_depth`` is the deepest level any
    closure traversal actually reached.
    """

    index_used: str | None = None
    extent_scans: int = 0
    notes: list[str] = field(default_factory=list)
    access_paths: list[str] = field(default_factory=list)
    indexes_considered: list[str] = field(default_factory=list)
    rows_examined: int = 0
    rows_matched: int = 0
    rows_from_index: int = 0
    traversal_max_depth: int = 0
    traversal_nodes_visited: int = 0
    #: "naive" (AST interpretation) or "cost" (planned execution).
    engine: str = "naive"
    #: "hit" / "miss" when the plan cache was consulted, else None.
    cache: str | None = None
    #: Total estimated cost of the chosen plan (cost-model units).
    est_cost: float | None = None
    #: Nested physical plan tree with per-operator row counts and
    #: cost estimates; None under naive evaluation.
    plan_tree: dict | None = None

    def as_dict(self) -> dict:
        return {
            "index_used": self.index_used,
            "extent_scans": self.extent_scans,
            "access_paths": list(self.access_paths),
            "indexes_considered": list(self.indexes_considered),
            "rows_examined": self.rows_examined,
            "rows_matched": self.rows_matched,
            "rows_from_index": self.rows_from_index,
            "traversal_max_depth": self.traversal_max_depth,
            "traversal_nodes_visited": self.traversal_nodes_visited,
            "notes": list(self.notes),
            "engine": self.engine,
            "cache": self.cache,
            "est_cost": self.est_cost,
            "plan_tree": self.plan_tree,
        }
