"""Static type checking of POOL queries (thesis §5.1.2.4).

The thesis argues queries must be checkable *in advance* so they can be
optimised and rewritten.  This pass walks a parsed query against the
schema's metaobjects and reports problems without evaluating anything:

* unknown extents, relationship classes and classifications;
* attribute accesses that no binding's class declares (role attributes
  acquired through relationships are allowed when any relationship class
  grants them);
* traversals whose endpoint classes cannot match the source expression;
* unknown functions.

The checker is *permissive where static knowledge runs out* (expressions
typed ``any`` pass), matching the thesis's pragmatic position.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..classification import ClassificationManager
from ..core.classes import PClass
from ..core.relationships import RelationshipClass
from ..core.schema import Schema
from .functions import FUNCTIONS
from .nodes import (
    AttributeAccess,
    Binary,
    Binding,
    Downcast,
    ExistsExpr,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    Parameter,
    Query,
    SelectQuery,
    SetOperation,
    Traversal,
    Unary,
    Variable,
)

#: Pseudo-type meaning "statically unknown".
ANY = None


@dataclass
class TypeReport:
    """Outcome of a static check: errors (fatal) and warnings."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


class TypeChecker:
    def __init__(
        self,
        schema: Schema,
        classifications: ClassificationManager | None = None,
    ) -> None:
        self.schema = schema
        self.classifications = classifications
        self.report = TypeReport()

    # ------------------------------------------------------------------

    def check(self, query: Query) -> TypeReport:
        if isinstance(query, SelectQuery):
            self._check_select(query, {})
        elif isinstance(query, ExtractGraphQuery):
            self._check_extract(query, {})
        elif isinstance(query, SetOperation):
            self.check(query.left)
            self.check(query.right)
        return self.report

    def _check_select(
        self, query: SelectQuery, outer: dict[str, "PClass | None"]
    ) -> None:
        env: dict[str, PClass | None] = dict(outer)
        for binding in query.bindings:
            env[binding.variable] = self._binding_class(binding, env)
        for item in query.projection:
            self._infer(item.expression, env)
        if query.where is not None:
            self._infer(query.where, env)
        for group_expr in query.group_by:
            self._infer(group_expr, env)
        if query.having is not None:
            self._infer(query.having, env)
        for item in query.order_by:
            self._infer(item.expression, env)

    def _check_extract(
        self, query: ExtractGraphQuery, env: dict[str, "PClass | None"]
    ) -> None:
        self._infer(query.start, env)
        self._relationship(query.relationship)
        if query.classification is not None:
            self._classification(query.classification)

    # ------------------------------------------------------------------

    def _binding_class(
        self, binding: Binding, env: dict[str, "PClass | None"]
    ) -> "PClass | None":
        source = binding.source
        if isinstance(source, Variable) and source.name not in env:
            if self.schema.has_class(source.name):
                return self.schema.get_class(source.name)
            self.report.errors.append(
                f"unknown extent {source.name!r} in from-clause"
            )
            return ANY
        return self._infer(source, env)

    def _relationship(self, name: str) -> "RelationshipClass | None":
        if not self.schema.has_class(name):
            self.report.errors.append(f"unknown relationship class {name!r}")
            return None
        klass = self.schema.get_class(name)
        if not isinstance(klass, RelationshipClass):
            self.report.errors.append(
                f"{name!r} is a plain class, not a relationship class"
            )
            return None
        return klass

    def _classification(self, name: str) -> None:
        if self.classifications is None:
            self.report.warnings.append(
                f"classification scope {name!r} cannot be checked "
                "(no manager provided)"
            )
            return
        if name not in self.classifications:
            self.report.errors.append(f"unknown classification {name!r}")

    # ------------------------------------------------------------------

    def _infer(
        self, node: Node, env: dict[str, "PClass | None"]
    ) -> "PClass | None":
        """Infer the (object) class of an expression where possible.

        Returns a PClass when the expression statically denotes objects
        of that class, else ANY.
        """
        if isinstance(node, (Literal, Parameter)):
            return ANY
        if isinstance(node, Variable):
            if node.name in env:
                return env[node.name]
            if self.schema.has_class(node.name):
                return self.schema.get_class(node.name)
            self.report.errors.append(f"unbound variable {node.name!r}")
            return ANY
        if isinstance(node, AttributeAccess):
            owner = self._infer(node.target, env)
            if owner is not None:
                self._check_attribute(owner, node.name)
            return ANY
        if isinstance(node, MethodCall):
            owner = self._infer(node.target, env)
            for arg in node.args:
                self._infer(arg, env)
            if owner is not None and not owner.has_method(node.name):
                # Value methods (string/collection) remain possible.
                from .functions import COLLECTION_METHODS, STRING_METHODS

                if (
                    node.name not in COLLECTION_METHODS
                    and node.name not in STRING_METHODS
                ):
                    self.report.warnings.append(
                        f"class {owner.name!r} declares no method "
                        f"{node.name!r}"
                    )
            return ANY
        if isinstance(node, FunctionCall):
            for arg in node.args:
                self._infer(arg, env)
            if node.name not in FUNCTIONS and node.name not in (
                "roles",
                "synonyms_of",
            ):
                self.report.errors.append(f"unknown function {node.name!r}")
            return ANY
        if isinstance(node, Traversal):
            source = self._infer(node.target, env)
            relclass = self._relationship(node.relationship)
            if node.scope is not None:
                self._classification(node.scope)
            if relclass is not None and source is not None:
                anchor_name = (
                    relclass.destination_class_name
                    if node.inverse
                    else relclass.origin_class_name
                )
                anchor = self.schema.get_class(anchor_name)
                if not (
                    source.is_subclass_of(anchor)
                    or anchor.is_subclass_of(source)
                ):
                    self.report.errors.append(
                        f"traversal {'<-' if node.inverse else '->'}"
                        f"{node.relationship}: source class {source.name!r} "
                        f"cannot be a(n) {anchor_name!r}"
                    )
            if relclass is not None:
                far_name = (
                    relclass.origin_class_name
                    if node.inverse
                    else relclass.destination_class_name
                )
                # Closures may mix levels; only single hops are typed.
                if (node.min_depth, node.max_depth) == (1, 1):
                    return self.schema.get_class(far_name)
            return ANY
        if isinstance(node, Downcast):
            self._infer(node.target, env)
            if not self.schema.has_class(node.class_name):
                self.report.errors.append(
                    f"downcast to unknown class {node.class_name!r}"
                )
                return ANY
            return self.schema.get_class(node.class_name)
        if isinstance(node, Unary):
            self._infer(node.operand, env)
            return ANY
        if isinstance(node, Binary):
            self._infer(node.left, env)
            self._infer(node.right, env)
            return ANY
        if isinstance(node, SelectQuery):
            self._check_select(node, env)
            return ANY
        if isinstance(node, ExistsExpr):
            self._check_select(node.subquery, env)
            return ANY
        return ANY

    def _check_attribute(self, owner: PClass, name: str) -> None:
        if owner.has_attribute(name):
            return
        if name == "oid":
            return
        if isinstance(owner, RelationshipClass) and (
            name in ("origin", "destination")
            or name in owner.participant_roles
        ):
            return
        # Role attributes: allowed if any relationship class both declares
        # the attribute and marks it inheritable (§4.4.5).
        for relclass in self.schema.relationship_classes():
            if (
                name in relclass.semantics.inherited_attributes
                and relclass.has_attribute(name)
            ):
                self.report.warnings.append(
                    f"attribute {name!r} on {owner.name!r} resolves only "
                    f"through role acquisition via {relclass.name!r}"
                )
                return
        self.report.errors.append(
            f"class {owner.name!r} has no attribute {name!r}"
        )


def typecheck(
    schema: Schema,
    query: Query,
    classifications: ClassificationManager | None = None,
) -> TypeReport:
    """Convenience wrapper: check one parsed query."""
    return TypeChecker(schema, classifications).check(query)
