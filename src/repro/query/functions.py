"""Built-in POOL functions and value methods.

POOL keeps OQL's select-only character (§5.1.2.1) — functions never
mutate the database.  Two namespaces exist:

* **functions** — called as ``name(args...)`` in query text;
* **value methods** — called as ``expr.name(args...)`` on strings and
  collections, complementing user-defined methods on Prometheus objects.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.instances import PObject
from ..errors import EvaluationError


def _as_list(value: Any) -> list[Any]:
    if value is None:
        return []
    if isinstance(value, (list, tuple, set, frozenset)):
        return list(value)
    return [value]


def _numeric_items(value: Any, what: str) -> list[float]:
    items = [v for v in _as_list(value) if v is not None]
    for item in items:
        if not isinstance(item, (int, float)) or isinstance(item, bool):
            raise EvaluationError(f"{what}: non-numeric element {item!r}")
    return items


def fn_count(value: Any) -> int:
    return len(_as_list(value))


def fn_sum(value: Any) -> float | int:
    return sum(_numeric_items(value, "sum"))


def fn_avg(value: Any) -> float | None:
    items = _numeric_items(value, "avg")
    return sum(items) / len(items) if items else None


def fn_min(value: Any) -> Any:
    items = [v for v in _as_list(value) if v is not None]
    return min(items) if items else None


def fn_max(value: Any) -> Any:
    items = [v for v in _as_list(value) if v is not None]
    return max(items) if items else None


def fn_exists(value: Any) -> bool:
    return len(_as_list(value)) > 0


def fn_distinct(value: Any) -> list[Any]:
    out: list[Any] = []
    seen: set[Any] = set()
    for item in _as_list(value):
        try:
            key: Any = item
            if key in seen:
                continue
            seen.add(key)
        except TypeError:
            key = repr(item)
            if key in seen:
                continue
            seen.add(key)
        out.append(item)
    return out


def fn_flatten(value: Any) -> list[Any]:
    out: list[Any] = []
    for item in _as_list(value):
        if isinstance(item, (list, tuple, set, frozenset)):
            out.extend(item)
        else:
            out.append(item)
    return out


def fn_first(value: Any) -> Any:
    items = _as_list(value)
    return items[0] if items else None


def fn_last(value: Any) -> Any:
    items = _as_list(value)
    return items[-1] if items else None


def fn_element(value: Any) -> Any:
    """ODMG element(): the single member of a singleton collection."""
    items = _as_list(value)
    if len(items) != 1:
        raise EvaluationError(
            f"element(): expected exactly one element, got {len(items)}"
        )
    return items[0]


def fn_abs(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise EvaluationError(f"abs(): non-numeric {value!r}")
    return abs(value)


def fn_oid(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, PObject):
        return value.oid
    raise EvaluationError(f"oid(): not an object: {value!r}")


def fn_class_of(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, PObject):
        return value.pclass.name
    return type(value).__name__


def fn_nvl(value: Any, default: Any) -> Any:
    return default if value is None else value


FUNCTIONS: dict[str, Callable[..., Any]] = {
    "count": fn_count,
    "size": fn_count,
    "sum": fn_sum,
    "avg": fn_avg,
    "min": fn_min,
    "max": fn_max,
    "exists": fn_exists,
    "distinct": fn_distinct,
    "unique": fn_distinct,
    "flatten": fn_flatten,
    "first": fn_first,
    "last": fn_last,
    "element": fn_element,
    "abs": fn_abs,
    "oid": fn_oid,
    "class_of": fn_class_of,
    "nvl": fn_nvl,
}


# ---------------------------------------------------------------------------
# value methods (expr.name(args))
# ---------------------------------------------------------------------------

def _method_starts_with(value: str, prefix: Any) -> bool:
    return isinstance(value, str) and value.startswith(str(prefix))


def _method_ends_with(value: str, suffix: Any) -> bool:
    return isinstance(value, str) and value.endswith(str(suffix))


def _method_contains(value: Any, item: Any) -> bool:
    if isinstance(value, str):
        return str(item) in value
    return item in _as_list(value)


STRING_METHODS: dict[str, Callable[..., Any]] = {
    "startsWith": _method_starts_with,
    "endsWith": _method_ends_with,
    "contains": _method_contains,
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "length": lambda v: len(v) if v is not None else 0,
    "strip": lambda v: v.strip() if isinstance(v, str) else v,
}

COLLECTION_METHODS: dict[str, Callable[..., Any]] = {
    "count": fn_count,
    "size": fn_count,
    "isEmpty": lambda v: len(_as_list(v)) == 0,
    "notEmpty": lambda v: len(_as_list(v)) > 0,
    "first": fn_first,
    "last": fn_last,
    "contains": _method_contains,
    "includes": _method_contains,
    "distinct": fn_distinct,
    "sum": fn_sum,
    "min": fn_min,
    "max": fn_max,
    "avg": fn_avg,
}


def call_value_method(value: Any, name: str, args: tuple[Any, ...]) -> Any:
    """Dispatch a method call on a non-Prometheus value."""
    if isinstance(value, str) and name in STRING_METHODS:
        return STRING_METHODS[name](value, *args)
    if name in COLLECTION_METHODS:
        return COLLECTION_METHODS[name](value, *args)
    if isinstance(value, str) and name in COLLECTION_METHODS:
        return COLLECTION_METHODS[name](value, *args)
    raise EvaluationError(
        f"no method {name!r} on value of type {type(value).__name__}"
    )
