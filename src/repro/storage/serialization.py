"""Compact tag-prefixed binary serialization for stored records.

Records written to the log are Python dictionaries whose values are drawn
from a closed set of storable types: ``None``, ``bool``, ``int``, ``float``,
``str``, ``bytes``, :class:`~repro.core.identity.OidRef`, ``datetime.date``,
``datetime.datetime``, and (recursively) ``list``, ``tuple`` and ``dict``
of those.  Anything else raises :class:`~repro.errors.SerializationError`
rather than silently pickling arbitrary objects — the store never executes
code on load.

Wire format: each value is one tag byte followed by a fixed or
length-prefixed payload.  Integers use a zig-zag varint; strings are UTF-8
with a varint length; containers are a varint count followed by their
elements.  The format is self-describing and versioned via
:data:`FORMAT_VERSION` stored in the log header.
"""

from __future__ import annotations

import datetime as _dt
import struct
from typing import Any

from ..core.identity import OidRef
from ..errors import SerializationError

FORMAT_VERSION = 1

# Tag bytes.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_OID = 0x09
_T_DATE = 0x0A
_T_DATETIME = 0x0B
_T_TUPLE = 0x0C

_FLOAT_STRUCT = struct.Struct(">d")


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if -(1 << 63) <= n < (1 << 63) else _zigzag_big(n)


def _zigzag_big(n: int) -> int:
    # Arbitrary-precision zig-zag: same transform without the 64-bit clamp.
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if (z & 1) == 0 else -((z + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise SerializationError(f"varint must be unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes | memoryview, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; return (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise SerializationError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 1024:
            raise SerializationError("varint too long")


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_varint(out, _zigzag_big(value))
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _FLOAT_STRUCT.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(data))
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_T_BYTES)
        _write_varint(out, len(data))
        out += data
    elif isinstance(value, OidRef):
        out.append(_T_OID)
        _write_varint(out, value.oid)
    elif isinstance(value, _dt.datetime):
        out.append(_T_DATETIME)
        data = value.isoformat().encode("ascii")
        _write_varint(out, len(data))
        out += data
    elif isinstance(value, _dt.date):
        out.append(_T_DATE)
        data = value.isoformat().encode("ascii")
        _write_varint(out, len(data))
        out += data
    elif isinstance(value, list):
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"record dict keys must be str, got {type(key).__name__}"
                )
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise SerializationError(
            f"type {type(value).__name__} is not storable"
        )


def _decode_value(buf: bytes | memoryview, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise SerializationError("truncated record")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        z, pos = _read_varint(buf, pos)
        return _unzigzag(z), pos
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(buf):
            raise SerializationError("truncated float")
        return _FLOAT_STRUCT.unpack(bytes(buf[pos:end]))[0], end
    if tag == _T_STR:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise SerializationError("truncated string")
        return bytes(buf[pos:end]).decode("utf-8"), end
    if tag == _T_BYTES:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise SerializationError("truncated bytes")
        return bytes(buf[pos:end]), end
    if tag == _T_OID:
        oid, pos = _read_varint(buf, pos)
        return OidRef(oid), pos
    if tag == _T_DATETIME:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        text = bytes(buf[pos:end]).decode("ascii")
        return _dt.datetime.fromisoformat(text), end
    if tag == _T_DATE:
        length, pos = _read_varint(buf, pos)
        end = pos + length
        text = bytes(buf[pos:end]).decode("ascii")
        return _dt.date.fromisoformat(text), end
    if tag in (_T_LIST, _T_TUPLE):
        count, pos = _read_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_varint(buf, pos)
        result: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            value, pos = _decode_value(buf, pos)
            result[key] = value
        return result, pos
    raise SerializationError(f"unknown tag byte 0x{tag:02x}")


def encode_record(record: dict[str, Any]) -> bytes:
    """Serialize a record dict to bytes.

    Raises:
        SerializationError: if the record contains a non-storable value.
    """
    if not isinstance(record, dict):
        raise SerializationError("a record must be a dict")
    out = bytearray()
    _encode_value(out, record)
    return bytes(out)


def decode_record(data: bytes | memoryview) -> dict[str, Any]:
    """Deserialize bytes previously produced by :func:`encode_record`."""
    value, pos = _decode_value(data, 0)
    if pos != len(data):
        raise SerializationError(
            f"trailing garbage: {len(data) - pos} unread bytes"
        )
    if not isinstance(value, dict):
        raise SerializationError("top-level value is not a record dict")
    return value
