"""The persistent object store: OID-addressed records with transactions.

This is the *underlying storage system* in the sense of the thesis's
performance evaluation (§7.2): the Prometheus model layers (objects,
relationships, classifications, rules) are built on top of it, and the
benchmark suite measures the cost those layers add over the bare store.

Design
------
* One append-only :class:`~repro.storage.log.RecordLog` file holds all
  state.  An in-memory index maps each live OID to the file offset of its
  most recent record.
* Transactions are strictly serial (single-writer).  A transaction appends
  its data records immediately, but the index is only updated when the
  commit marker is durably appended; recovery replays the log and ignores
  any entries not followed by their commit marker, so a torn tail is safe.
* Records are plain dicts of storable values (see
  :mod:`repro.storage.serialization`); the store knows nothing about the
  object model above it.
"""

from __future__ import annotations

import copy
import hashlib
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.identity import OidAllocator
from ..errors import StorageError, TransactionError, UnknownOidError
from .cache import LruCache
from .faults import FaultPlan, InjectedFault
from .log import (
    HEADER,
    KIND_COMMIT,
    KIND_DATA,
    KIND_META,
    KIND_TOMBSTONE,
    RecordLog,
)
from .serialization import decode_record, encode_record

_TOMB_STRUCT = struct.Struct(">QQ")  # (txn_id, oid)

#: KIND_META payload tag for a cluster-epoch stamp (HA fencing).  The
#: epoch lives *inside* the log rather than in the file header so that
#: replicas — whose logs are byte-identical prefixes of the primary's —
#: learn it through ordinary replication, at the exact log position the
#: promotion happened.
_EPOCH_TAG = b"EPOCH\x00"
_EPOCH_STRUCT = struct.Struct(">Q")


def _decode_epoch_meta(payload: bytes) -> int | None:
    """The epoch carried by a META payload, or None for other metadata."""
    if (
        payload.startswith(_EPOCH_TAG)
        and len(payload) == len(_EPOCH_TAG) + _EPOCH_STRUCT.size
    ):
        return _EPOCH_STRUCT.unpack_from(payload, len(_EPOCH_TAG))[0]
    return None


#: KIND_META payload tag for a shard-map stamp.  Like the cluster
#: epoch it travels in the log so replicas learn topology changes at
#: the exact position the rebalance committed: big-endian epoch, then
#: the JSON shard-map blob.
_SHARD_TAG = b"SHARD\x00"


def _decode_shard_meta(payload: bytes) -> tuple[int, bytes] | None:
    """(epoch, blob) from a shard-map META payload, or None."""
    head = len(_SHARD_TAG) + _EPOCH_STRUCT.size
    if payload.startswith(_SHARD_TAG) and len(payload) >= head:
        epoch = _EPOCH_STRUCT.unpack_from(payload, len(_SHARD_TAG))[0]
        return epoch, bytes(payload[head:])
    return None


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery found and did — the store's inspectable contract.

    ``corrupt_regions`` lists the (start, end) byte ranges the salvage
    scan skipped mid-log; ``salvaged_entries`` counts entries recovered
    *after* the first such region (zero under prefix-only recovery).
    ``bytes_truncated`` is the torn/corrupt tail physically removed.
    """

    entries_scanned: int = 0
    commits_applied: int = 0
    uncommitted_dropped: int = 0
    bytes_truncated: int = 0
    salvaged_entries: int = 0
    corrupt_regions: tuple[tuple[int, int], ...] = ()

    @property
    def clean(self) -> bool:
        """True when the log replayed without loss of any kind."""
        return (
            not self.corrupt_regions
            and self.bytes_truncated == 0
            and self.uncommitted_dropped == 0
        )

    @property
    def salvaged(self) -> bool:
        return bool(self.corrupt_regions)

    def as_dict(self) -> dict[str, Any]:
        return {
            "entries_scanned": self.entries_scanned,
            "commits_applied": self.commits_applied,
            "uncommitted_dropped": self.uncommitted_dropped,
            "bytes_truncated": self.bytes_truncated,
            "salvaged_entries": self.salvaged_entries,
            "corrupt_regions": [list(r) for r in self.corrupt_regions],
            "clean": self.clean,
        }


@dataclass
class StoreStats:
    """Operation counters, reset with :meth:`ObjectStore.reset_stats`."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    commits: int = 0
    aborts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "commits": self.commits,
            "aborts": self.aborts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass(frozen=True)
class AppliedBatch:
    """Result of splicing one replicated byte range onto the local log.

    ``changes`` lists ``(oid, fields-or-None)`` for every object whose
    committed state changed, in commit order — the replica's model layer
    uses it to refresh schema objects and indexes incrementally instead
    of reloading the whole store.

    ``commits`` breaks the same stream down per commit marker:
    ``(lsn, ((oid, fields-or-None), ...))`` where ``lsn`` is the marker's
    end offset — the *same* number the primary published as
    ``commit_lsn`` for that commit, because the log is a byte-identical
    prefix.  The replica's MVCC applier stamps version chains with these,
    which is what makes ``as_of`` reads byte-identical across nodes.
    """

    start: int
    end: int
    commit_lsn: int
    entries: int = 0
    commits_applied: int = 0
    changes: tuple[tuple[int, dict[str, Any] | None], ...] = ()
    commits: tuple[
        tuple[int, tuple[tuple[int, dict[str, Any] | None], ...]], ...
    ] = ()


@dataclass
class _PendingTxn:
    """Index deltas accumulated by an in-flight transaction."""

    txn_id: int
    # oid -> offset for writes, None for deletes, in application order
    updates: dict[int, int | None] = field(default_factory=dict)
    # decoded record copies for read-your-writes
    staged: dict[int, dict[str, Any] | None] = field(default_factory=dict)


class _GroupCommitGate:
    """Shared-fsync coordinator: the group-commit half of durability.

    Committers append their commit marker (under the store lock), flush
    the file buffer without fsyncing, register a *generation* with the
    gate, and then — outside the store lock — wait for that generation
    to be durable.  The first waiter becomes the leader: it issues ONE
    fsync covering every generation appended so far, then wakes all
    waiters whose generation it covered.  Concurrent committers in
    ``sync=True`` mode therefore share fsyncs instead of queuing one
    each; a lone committer degenerates to exactly one fsync, same as
    the serial path.

    A failed fsync is reported to every waiter it strands; a later
    successful fsync (durability is cumulative for an append-only file)
    clears the error for the generations it covers.
    """

    def __init__(self, log: RecordLog) -> None:
        self._log = log
        self._cond = threading.Condition()
        self._appended = 0  # generations appended (one per commit marker)
        self._synced = 0    # highest generation known durable
        self._leader = False
        self._error: tuple[int, BaseException] | None = None
        #: fsync batches performed / commits those batches covered —
        #: scraped by telemetry; batched_commits / batches > 1 means
        #: group commit actually grouped something.
        self.batches = 0
        self.batched_commits = 0
        #: Highest commit LSN covered by a successful fsync (replication
        #: ships only durable prefixes on a ``sync=True`` primary).
        self.durable_lsn = 0
        self._gen_lsns: dict[int, int] = {}

    def note_append(self, lsn: int = 0) -> int:
        """Register one appended commit marker; returns its generation.

        ``lsn`` is the end offset of the marker just appended — once the
        generation's fsync lands, every log byte below it is durable and
        :attr:`durable_lsn` advances to it.
        """
        with self._cond:
            self._appended += 1
            if lsn:
                self._gen_lsns[self._appended] = lsn
            return self._appended

    def wait_durable(self, gen: int) -> None:
        """Block until generation ``gen`` is covered by an fsync."""
        while True:
            with self._cond:
                while True:
                    if self._synced >= gen:
                        return
                    error = self._error
                    if error is not None and error[0] >= gen:
                        raise error[1]
                    if not self._leader:
                        self._leader = True
                        target = self._appended
                        break  # become the leader, fsync outside the lock
                    self._cond.wait()
            failure: BaseException | None = None
            try:
                self._log.fsync_now()
            except BaseException as exc:
                failure = exc
            with self._cond:
                self._leader = False
                if failure is None:
                    self.batches += 1
                    self.batched_commits += target - self._synced
                    self._synced = max(self._synced, target)
                    for gen in [g for g in self._gen_lsns if g <= target]:
                        self.durable_lsn = max(
                            self.durable_lsn, self._gen_lsns.pop(gen)
                        )
                    if self._error is not None and self._error[0] <= target:
                        self._error = None
                else:
                    self._error = (target, failure)
                self._cond.notify_all()
            if failure is not None:
                raise failure
            # Loop: our gen may exceed the target we just synced (another
            # committer appended after we sampled) — wait again.


class Transaction:
    """Handle for one serial transaction.

    Obtained from :meth:`ObjectStore.begin`; usable as a context manager
    (commits on clean exit, aborts on exception)::

        with store.begin() as txn:
            txn.write(oid, {"name": "Apium"})
    """

    def __init__(self, store: "ObjectStore", pending: _PendingTxn) -> None:
        self._store = store
        self._pending = pending
        self._done = False

    @property
    def txn_id(self) -> int:
        return self._pending.txn_id

    @property
    def active(self) -> bool:
        return not self._done

    def _require_active(self) -> None:
        if self._done:
            raise TransactionError("transaction already finished")

    def write(self, oid: int, record: dict[str, Any]) -> None:
        """Stage a full new state for ``oid`` (insert or overwrite)."""
        self._require_active()
        self._store._txn_write(self._pending, oid, record)

    def delete(self, oid: int) -> None:
        """Stage deletion of ``oid``."""
        self._require_active()
        self._store._txn_delete(self._pending, oid)

    def read(self, oid: int) -> dict[str, Any]:
        """Read ``oid`` seeing this transaction's own staged writes."""
        self._require_active()
        if oid in self._pending.staged:
            staged = self._pending.staged[oid]
            if staged is None:
                raise UnknownOidError(oid)
            return copy.deepcopy(staged)
        return self._store.read(oid)

    def commit(self, defer_sync: bool = False) -> int | None:
        """Commit; with ``defer_sync`` on a durable store, the commit
        marker is appended and flushed but the fsync is deferred to the
        group-commit gate — the returned durability token must then be
        passed to :meth:`ObjectStore.wait_durable` (outside any lock the
        caller holds) before durability may be assumed."""
        self._require_active()
        try:
            token = self._store._commit(self._pending, defer_sync=defer_sync)
        except BaseException:
            if self._store._active is not self._pending:
                self._done = True  # the store already rolled this txn back
            raise
        self._done = True
        return token

    def abort(self) -> None:
        self._require_active()
        self._store._abort(self._pending)
        self._done = True

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._done:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class ObjectStore:
    """OID-addressed, log-structured, transactional record store."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        cache_size: int = 4096,
        sync: bool = False,
        salvage: bool = True,
        faults: FaultPlan | None = None,
        read_only: bool = False,
    ) -> None:
        self._sync = sync
        self._salvage = salvage
        self._faults = faults
        self._read_only = read_only
        self._log = RecordLog(path, sync=sync, faults=faults)
        self._cache = LruCache(cache_size)
        self._index: dict[int, int] = {}  # oid -> offset of live record
        self._allocator = OidAllocator()
        self._txn_counter = 0
        self._active: _PendingTxn | None = None
        self._lock = threading.RLock()
        self._lsn_cond = threading.Condition(self._lock)
        self._commit_lsn = len(HEADER)
        self._gate = _GroupCommitGate(self._log)
        #: Highest cluster epoch stamped into this log (0 = never
        #: promoted).  Replicated like any other entry, so every node at
        #: the same LSN agrees on it — the HA fencing invariant.
        self.cluster_epoch = 0
        #: Newest shard-map stamp in the log: (epoch, JSON blob).
        #: (0, b"") means the store has never seen a shard map.
        self.shard_map_epoch = 0
        self.shard_map_blob: bytes = b""
        self.stats = StoreStats()
        self.last_recovery: RecoveryReport = RecoveryReport()
        self._recover()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._active is not None:
                self._abort(self._active)
            self._log.close()

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def path(self) -> str:
        return self._log.path

    @property
    def file_size(self) -> int:
        return self._log.size

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, oid: int) -> bool:
        return oid in self._index

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild index/allocator state by replaying the log.

        With ``salvage`` (the default) the scan resynchronises past
        corrupt mid-log regions, so committed transactions located
        *after* bit rot are recovered; only a corrupt *tail* is
        physically truncated (mid-file bytes cannot be removed without
        shifting offsets).  With ``salvage=False`` recovery keeps the
        valid prefix only — the pre-resilience behaviour.

        Either way the outcome is published as :attr:`last_recovery`.
        """
        pending: dict[int, dict[int, int | None]] = {}
        max_oid = 0
        max_txn = 0
        expected = len(HEADER)
        entries_scanned = 0
        commits_applied = 0
        salvaged_entries = 0
        corrupt_regions: list[tuple[int, int]] = []
        scan = self._log.scan_salvage() if self._salvage else self._log.scan()
        for entry in scan:
            if entry.offset > expected:
                corrupt_regions.append((expected, entry.offset))
            if corrupt_regions:
                salvaged_entries += 1
            expected = entry.end_offset
            entries_scanned += 1
            if entry.kind == KIND_DATA:
                record = decode_record(entry.payload)
                txn_id = int(record["t"])
                oid = int(record["o"])
                pending.setdefault(txn_id, {})[oid] = entry.offset
                max_oid = max(max_oid, oid)
                max_txn = max(max_txn, txn_id)
            elif entry.kind == KIND_TOMBSTONE:
                txn_id, oid = _TOMB_STRUCT.unpack(entry.payload)
                pending.setdefault(txn_id, {})[oid] = None
                max_oid = max(max_oid, oid)
                max_txn = max(max_txn, txn_id)
            elif entry.kind == KIND_COMMIT:
                txn_id = RecordLog.decode_oid_payload(entry.payload)
                max_txn = max(max_txn, txn_id)
                commits_applied += 1
                self._commit_lsn = entry.end_offset
                for oid, offset in pending.pop(txn_id, {}).items():
                    if offset is None:
                        self._index.pop(oid, None)
                    else:
                        self._index[oid] = offset
            elif entry.kind == KIND_META:
                epoch = _decode_epoch_meta(entry.payload)
                if epoch is not None:
                    self.cluster_epoch = max(self.cluster_epoch, epoch)
                shard_meta = _decode_shard_meta(entry.payload)
                if shard_meta is not None and (
                    shard_meta[0] > self.shard_map_epoch
                ):
                    self.shard_map_epoch, self.shard_map_blob = shard_meta
                # other META payloads: reserved for schema snapshots
        bytes_truncated = self._log.size - expected
        if expected < self._log.size:
            self._log.truncate(expected)
        self._allocator.fast_forward(max_oid)
        self._txn_counter = max_txn
        self.last_recovery = RecoveryReport(
            entries_scanned=entries_scanned,
            commits_applied=commits_applied,
            uncommitted_dropped=len(pending),
            bytes_truncated=bytes_truncated,
            salvaged_entries=salvaged_entries,
            corrupt_regions=tuple(corrupt_regions),
        )

    # -- OID allocation -----------------------------------------------------

    def new_oid(self) -> int:
        """Allocate a fresh OID (never reused, even across reopen)."""
        return self._allocator.allocate()

    def new_oids(self, n: int) -> range:
        return self._allocator.allocate_many(n)

    # -- transactions -------------------------------------------------------

    def begin(self) -> Transaction:
        """Start the (single) active transaction."""
        with self._lock:
            if self._read_only:
                raise TransactionError(
                    "store is read-only (replica): writes go to the primary"
                )
            if self._active is not None:
                raise TransactionError("a transaction is already active")
            self._txn_counter += 1
            self._active = _PendingTxn(txn_id=self._txn_counter)
            return Transaction(self, self._active)

    @property
    def in_transaction(self) -> bool:
        return self._active is not None

    def _require_is_active(self, pending: _PendingTxn) -> None:
        if self._active is not pending:
            raise TransactionError("transaction is not the active one")

    def _txn_write(
        self, pending: _PendingTxn, oid: int, record: dict[str, Any]
    ) -> None:
        with self._lock:
            self._require_is_active(pending)
            payload = encode_record(
                {"t": pending.txn_id, "o": oid, "f": dict(record)}
            )
            offset = self._log.append(KIND_DATA, payload)
            pending.updates[oid] = offset
            pending.staged[oid] = copy.deepcopy(record)
            self.stats.writes += 1

    def _txn_delete(self, pending: _PendingTxn, oid: int) -> None:
        with self._lock:
            self._require_is_active(pending)
            visible = oid in self._index or pending.staged.get(oid) is not None
            if oid in pending.staged and pending.staged[oid] is None:
                visible = False
            if not visible:
                raise UnknownOidError(oid)
            self._log.append(
                KIND_TOMBSTONE, _TOMB_STRUCT.pack(pending.txn_id, oid)
            )
            pending.updates[oid] = None
            pending.staged[oid] = None
            self.stats.deletes += 1

    def _commit(
        self, pending: _PendingTxn, defer_sync: bool = False
    ) -> int | None:
        deferred = defer_sync and self._sync
        with self._lock:
            self._require_is_active(pending)
            marker_offset: int | None = None
            try:
                marker_offset = self._log.append(
                    KIND_COMMIT, struct.pack(">Q", pending.txn_id)
                )
                self._log.flush(fsync=False if deferred else None)
            except InjectedFault:
                raise  # simulated process death: recovery decides the outcome
            except Exception:
                # The marker may have hit the file without being durable;
                # physically retract it so disk and memory agree the
                # transaction rolled back, then surface the failure.
                if marker_offset is not None:
                    try:
                        self._log.truncate(marker_offset)
                    except (OSError, StorageError):
                        pass
                self._active = None
                self.stats.aborts += 1
                raise
            for oid, offset in pending.updates.items():
                if offset is None:
                    self._index.pop(oid, None)
                    self._cache.invalidate(oid)
                else:
                    self._index[oid] = offset
                    staged = pending.staged.get(oid)
                    if staged is not None:
                        self._cache.put(oid, copy.deepcopy(staged))
            self._active = None
            self.stats.commits += 1
            # The marker was the last append under this lock, so the log
            # end IS the commit LSN; publish it to long-poll waiters.
            self._commit_lsn = self._log.size
            self._lsn_cond.notify_all()
            if deferred:
                return self._gate.note_append(self._commit_lsn)
            return None

    def wait_durable(self, token: int) -> None:
        """Block until the deferred-sync commit ``token`` is fsynced.

        Must be called WITHOUT holding locks that other committers need:
        the whole point is that while the group leader fsyncs, the next
        committer appends.  A failed shared fsync raises here; in-memory
        state is then ahead of disk exactly as it would be after a
        crash — recovery decides the outcome on reopen.
        """
        self._gate.wait_durable(token)

    def _abort(self, pending: _PendingTxn) -> None:
        with self._lock:
            self._require_is_active(pending)
            # Appended data entries become dead weight; compaction drops them.
            self._active = None
            self.stats.aborts += 1

    # -- replication ---------------------------------------------------------

    @property
    def read_only(self) -> bool:
        return self._read_only

    def make_writable(self) -> None:
        """Promotion: lift the replica's read-only guard so local
        transactions may begin.  The caller (the HA controller) stamps
        the new cluster epoch immediately after."""
        with self._lock:
            self._read_only = False

    def make_read_only(self) -> None:
        """Demotion: refuse new local transactions (writes go to the new
        primary).  An in-flight transaction is not interrupted — the
        session layer aborts those before calling this."""
        with self._lock:
            self._read_only = True

    def stamp_epoch(self, epoch: int) -> int:
        """Durably record a new cluster epoch; returns its commit LSN.

        The stamp is a META entry followed by its own commit marker, so
        ``commit_lsn`` advances past it and the shipper replicates it to
        every follower immediately — a re-pointed replica learns the
        promotion through the ordinary pull path.  Epochs are strictly
        monotonic; stamping a stale one raises.
        """
        with self._lock:
            if self._read_only:
                raise TransactionError(
                    "cannot stamp an epoch on a read-only store; "
                    "promote (make_writable) first"
                )
            if self._active is not None:
                raise TransactionError(
                    "cannot stamp an epoch inside a transaction"
                )
            if epoch <= self.cluster_epoch:
                raise StorageError(
                    f"epoch {epoch} is not newer than the stamped "
                    f"epoch {self.cluster_epoch}"
                )
            self._txn_counter += 1
            self._log.append(
                KIND_META, _EPOCH_TAG + _EPOCH_STRUCT.pack(epoch)
            )
            self._log.append_commit(self._txn_counter)
            self.cluster_epoch = epoch
            self.stats.commits += 1
            self._commit_lsn = self._log.size
            self._lsn_cond.notify_all()
            return self._commit_lsn

    def stamp_shard_map(self, epoch: int, blob: bytes) -> int:
        """Durably record a shard-map change; returns its commit LSN.

        Same mechanics as :meth:`stamp_epoch`: a META entry plus its own
        commit marker, replicated through the ordinary pull path so a
        shard's replicas learn the new placement at the exact log
        position the rebalance committed.  Epochs are strictly
        monotonic.
        """
        with self._lock:
            if self._read_only:
                raise TransactionError(
                    "cannot stamp a shard map on a read-only store"
                )
            if self._active is not None:
                raise TransactionError(
                    "cannot stamp a shard map inside a transaction"
                )
            if epoch <= self.shard_map_epoch:
                raise StorageError(
                    f"shard-map epoch {epoch} is not newer than the "
                    f"stamped epoch {self.shard_map_epoch}"
                )
            self._txn_counter += 1
            self._log.append(
                KIND_META,
                _SHARD_TAG + _EPOCH_STRUCT.pack(epoch) + blob,
            )
            self._log.append_commit(self._txn_counter)
            self.shard_map_epoch = epoch
            self.shard_map_blob = bytes(blob)
            self.stats.commits += 1
            self._commit_lsn = self._log.size
            self._lsn_cond.notify_all()
            return self._commit_lsn

    @property
    def commit_lsn(self) -> int:
        """End offset of the last applied commit marker.

        LSNs in Prometheus replication are plain byte offsets into the
        primary's log file; a replica's log is a byte-identical prefix,
        so the same number means the same state on every node.
        """
        return self._commit_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest commit LSN known to be fsynced.

        On a ``sync=False`` store OS buffering is the declared contract,
        so every committed LSN counts as durable; with deferred group
        commit the gate's shared fsync advances this lazily.
        """
        if not self._sync:
            return self._commit_lsn
        return max(self._gate.durable_lsn, len(HEADER))

    @property
    def replication_position(self) -> int:
        """Byte offset a replica should pull from next: its raw log end.

        This can exceed :attr:`commit_lsn` by the trailing entries of an
        aborted transaction — those bytes were shipped as part of a
        committed range and are dead weight here exactly as they are on
        the primary, preserving byte-identity.
        """
        return self._log.size

    def wait_for_commit_lsn(self, min_lsn: int, timeout: float | None = None) -> int:
        """Block until ``commit_lsn >= min_lsn`` (or timeout); return it.

        The shipper's long-poll: a replica that is already caught up
        parks here until the next commit instead of busy-polling.
        """
        deadline = None if timeout is None else (timeout)
        with self._lsn_cond:
            if self._commit_lsn >= min_lsn:
                return self._commit_lsn
            self._lsn_cond.wait_for(
                lambda: self._commit_lsn >= min_lsn, timeout=deadline
            )
            return self._commit_lsn

    def apply_replicated(self, data: bytes) -> AppliedBatch:
        """Splice a shipped byte range onto the log and apply its commits.

        This IS the recovery path run incrementally: the bytes are
        appended verbatim (keeping the file a byte-identical prefix of
        the primary's), then scanned exactly like :meth:`_recover` scans
        the whole log — data entries accumulate per transaction and the
        index only moves at commit markers.  Data entries whose commit
        marker has not arrived yet (an aborted transaction's dead
        weight) are ignored, same as on the primary.  A structurally
        torn shipment — which frame checksums should have caught
        upstream — is truncated away so the next pull re-requests it.
        """
        with self._lock:
            if self._active is not None:
                raise TransactionError(
                    "cannot apply replicated bytes inside a transaction"
                )
            start = self._log.size
            self._log.append_raw(data)
            pending: dict[int, dict[int, tuple[int, dict[str, Any] | None]]] = {}
            changes: list[tuple[int, dict[str, Any] | None]] = []
            commits: list[
                tuple[int, tuple[tuple[int, dict[str, Any] | None], ...]]
            ] = []
            max_oid = 0
            max_txn = 0
            entries = 0
            commits_applied = 0
            # Scan from the last commit marker, not from the appended
            # bytes: a transaction can straddle frames, and its data
            # entries — already on disk from an earlier apply but not
            # yet committed — must be back in the pending map when this
            # frame delivers the commit marker.
            scan_from = min(self._commit_lsn, start)
            expected = scan_from
            for entry in self._log.scan(scan_from):
                expected = entry.end_offset
                entries += 1
                if entry.kind == KIND_DATA:
                    record = decode_record(entry.payload)
                    txn_id = int(record["t"])
                    oid = int(record["o"])
                    fields = record["f"]
                    pending.setdefault(txn_id, {})[oid] = (entry.offset, fields)
                    max_oid = max(max_oid, oid)
                    max_txn = max(max_txn, txn_id)
                elif entry.kind == KIND_TOMBSTONE:
                    txn_id, oid = _TOMB_STRUCT.unpack(entry.payload)
                    pending.setdefault(txn_id, {})[oid] = (entry.offset, None)
                    max_oid = max(max_oid, oid)
                    max_txn = max(max_txn, txn_id)
                elif entry.kind == KIND_COMMIT:
                    txn_id = RecordLog.decode_oid_payload(entry.payload)
                    max_txn = max(max_txn, txn_id)
                    commits_applied += 1
                    commit_changes: list[
                        tuple[int, dict[str, Any] | None]
                    ] = []
                    for oid, (offset, fields) in pending.pop(txn_id, {}).items():
                        if fields is None:
                            self._index.pop(oid, None)
                        else:
                            self._index[oid] = offset
                        self._cache.invalidate(oid)
                        commit_changes.append(
                            (oid, None if fields is None else dict(fields))
                        )
                    changes.extend(commit_changes)
                    commits.append((expected, tuple(commit_changes)))
                    self._commit_lsn = expected
                elif entry.kind == KIND_META:
                    epoch = _decode_epoch_meta(entry.payload)
                    if epoch is not None:
                        self.cluster_epoch = max(self.cluster_epoch, epoch)
                    shard_meta = _decode_shard_meta(entry.payload)
                    if shard_meta is not None and (
                        shard_meta[0] > self.shard_map_epoch
                    ):
                        self.shard_map_epoch, self.shard_map_blob = shard_meta
            if expected < self._log.size:
                # Torn shipment survived the frame checksum (should not
                # happen); drop the tail so the next pull refetches it.
                self._log.truncate(expected)
            self._allocator.fast_forward(max_oid)
            self._txn_counter = max(self._txn_counter, max_txn)
            self._lsn_cond.notify_all()
            return AppliedBatch(
                start=start,
                end=self._log.size,
                commit_lsn=self._commit_lsn,
                entries=entries,
                commits_applied=commits_applied,
                changes=tuple(changes),
                commits=tuple(commits),
            )

    def reset_for_resync(self) -> None:
        """Drop every replicated byte; divergence recovery on a replica.

        After the primary compacts, byte offsets no longer line up and a
        prefix-replica cannot patch itself — the only convergent move is
        to truncate back to the bare file header and re-pull from LSN 0.
        The OID allocator is deliberately left alone (it only ever moves
        forward and will fast-forward again during re-apply).
        """
        with self._lock:
            if self._active is not None:
                raise TransactionError(
                    "cannot reset the store inside a transaction"
                )
            self._log.truncate(len(HEADER))
            self._index.clear()
            self._cache.clear()
            self._commit_lsn = len(HEADER)
            # cluster_epoch is deliberately KEPT: it is fencing knowledge,
            # not log content.  A reset replica must still refuse frames
            # from a primary of an older epoch while it re-syncs.
            self._lsn_cond.notify_all()

    def read_log_bytes(self, start: int, end: int) -> bytes:
        """Raw log bytes ``[start, min(end, log end))`` — the shipper's
        read path, taken under the store lock so a concurrent commit's
        partially appended entries are never visible."""
        with self._lock:
            return self._log.read_bytes(start, end)

    def fingerprint(self, upto: int | None = None) -> str:
        """SHA-256 over log bytes ``[0, upto)`` (default: the commit LSN).

        Because replicas splice raw primary bytes, two stores at the
        same commit LSN hash identically — this is the equivalence check
        used by the crash-recovery sweep and the traversal tests.
        """
        with self._lock:
            end = self._commit_lsn if upto is None else upto
            digest = hashlib.sha256()
            digest.update(self._log.read_bytes(0, end))
            return digest.hexdigest()

    # -- autocommit convenience ----------------------------------------------

    def put(self, oid: int, record: dict[str, Any]) -> None:
        """Write one record in its own transaction."""
        with self.begin() as txn:
            txn.write(oid, record)

    def insert(self, record: dict[str, Any]) -> int:
        """Allocate an OID, write the record, return the OID."""
        oid = self.new_oid()
        self.put(oid, record)
        return oid

    def remove(self, oid: int) -> None:
        """Delete one record in its own transaction."""
        with self.begin() as txn:
            txn.delete(oid)

    # -- reading --------------------------------------------------------------

    def read(self, oid: int) -> dict[str, Any]:
        """Return a fresh copy of the committed state of ``oid``."""
        with self._lock:
            self.stats.reads += 1
            cached = self._cache.get(oid)
            if cached is not None:
                self.stats.cache_hits += 1
                return copy.deepcopy(cached)
            self.stats.cache_misses += 1
            try:
                offset = self._index[oid]
            except KeyError:
                raise UnknownOidError(oid) from None
            entry = self._log.read_entry(offset)
            record = decode_record(entry.payload)
            fields = record["f"]
            if not isinstance(fields, dict):
                raise StorageError(f"record {oid} has malformed fields")
            self._cache.put(oid, copy.deepcopy(fields))
            return fields

    def oids(self) -> Iterator[int]:
        """Iterate live OIDs (snapshot order not guaranteed)."""
        with self._lock:
            return iter(list(self._index.keys()))

    def items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for oid in self.oids():
            try:
                yield oid, self.read(oid)
            except UnknownOidError:
                continue

    # -- maintenance ----------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats = StoreStats()
        self._cache.hits = 0
        self._cache.misses = 0

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Everything the telemetry storage collector scrapes, in one
        dict: op counters, log append/flush/fsync counters, cache state.

        All numbers here are maintained anyway (plain int increments),
        so storage observability costs nothing on the hot path.
        """
        log = self._log
        cache = self._cache
        return self.stats.snapshot() | {
            "log_appends": log.appends,
            "log_flushes": log.flushes,
            "log_fsyncs": log.fsyncs,
            "cache_size": len(cache),
            "cache_capacity": cache.capacity,
            "cache_hit_rate": cache.hit_rate,
            "file_size": self.file_size,
            "live_records": len(self._index),
            "group_commit_batches": self._gate.batches,
            "group_commit_batched": self._gate.batched_commits,
            "commit_lsn": self._commit_lsn,
            "cluster_epoch": self.cluster_epoch,
            "shard_map_epoch": self.shard_map_epoch,
        }

    def compact(self) -> None:
        """Rewrite the log keeping only live records.

        Aborted and overwritten entries are dropped.  The store must not
        have an active transaction.

        Crash-atomic: the replacement log is fully written, flushed
        (and fsynced when the store is durable) *before* the single
        ``os.replace`` that installs it, so a crash at any step leaves
        either the old complete log or the new complete log on disk —
        never a mix.  The replacement preserves the store's durability
        setting instead of silently reopening with ``sync=False``.
        """
        with self._lock:
            if self._read_only:
                raise StorageError(
                    "cannot compact a read-only replica store"
                )
            if self._active is not None:
                raise TransactionError("cannot compact inside a transaction")
            tmp_path = self.path + ".compact"
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            new_log = RecordLog(tmp_path, sync=self._sync, faults=self._faults)
            txn_id = self._txn_counter + 1
            new_index: dict[int, int] = {}
            try:
                for oid in sorted(self._index):
                    fields = self.read(oid)
                    payload = encode_record({"t": txn_id, "o": oid, "f": fields})
                    new_index[oid] = new_log.append(KIND_DATA, payload)
                if self.cluster_epoch:
                    # The epoch stamp lives in the log; re-stamp it or the
                    # compacted log would forget which epoch it belongs to.
                    new_log.append(
                        KIND_META,
                        _EPOCH_TAG + _EPOCH_STRUCT.pack(self.cluster_epoch),
                    )
                if self.shard_map_epoch:
                    # Same story for the shard map: placement knowledge
                    # must survive compaction.
                    new_log.append(
                        KIND_META,
                        _SHARD_TAG
                        + _EPOCH_STRUCT.pack(self.shard_map_epoch)
                        + self.shard_map_blob,
                    )
                new_log.append_commit(txn_id)  # flush (+fsync when durable)
                new_log.close()
            except InjectedFault:
                raise  # simulated process death: the stale tmp stays behind
            except Exception:
                # The old log was only read; discard the half-built
                # replacement and keep serving from the old one.
                new_log.close()
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
            self._log.close()
            os.replace(tmp_path, self.path)
            if self._sync:
                self._fsync_directory(os.path.dirname(self.path) or ".")
            old_log = self._log
            self._log = RecordLog(self.path, sync=self._sync, faults=self._faults)
            # Op counters survive compaction: they describe the store's
            # lifetime, not one log file's.
            self._log.appends += old_log.appends + new_log.appends
            self._log.flushes += old_log.flushes + new_log.flushes
            self._log.fsyncs += old_log.fsyncs + new_log.fsyncs
            old_gate = self._gate
            self._gate = _GroupCommitGate(self._log)
            self._gate.batches = old_gate.batches
            self._gate.batched_commits = old_gate.batched_commits
            self._index = new_index
            self._txn_counter = txn_id
            self._cache.clear()
            # Offsets changed wholesale: the new log ends at its commit
            # marker.  Replicas detect this as prefix divergence and
            # re-sync from scratch.
            self._commit_lsn = self._log.size
            self._lsn_cond.notify_all()

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        """Make a rename durable (no-op where directories can't be opened)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
