"""An LRU cache of decoded object records.

The object store reads records back from the log far more often than it
decodes them cold (traversals revisit hot objects), so a small in-memory
cache of decoded dictionaries sits in front of the file.  The cache stores
*copies are not taken*: the store hands out fresh dicts to callers and only
caches its own private copy, so cached state can never be mutated from
outside.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching entirely (every get misses), which
    the benchmark harness uses to measure raw log-read cost.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value or None, updating recency and stats."""
        if self._capacity <= 0:
            self.misses += 1
            return None
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self._capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)

    def invalidate(self, key: Hashable) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
