"""Deterministic fault injection for the storage layer.

The thesis positions Prometheus as a database of record for decades of
taxonomic work; every performance PR therefore has to *prove* it did not
trade away durability.  This module provides the proving ground: a
seedable, deterministic fault-injection layer that the
:class:`~repro.storage.log.RecordLog` (and everything above it) can run
on top of.

Model
-----
A :class:`FaultPlan` is a scripted schedule of faults over the low-level
file operations the log performs — ``write``, ``flush`` and ``fsync``.
Every operation is counted (globally, across *all* files sharing the
plan, so a plan spans the main log and a compaction's temporary log);
a fault fires on the Nth call of its operation, or — for
:meth:`FaultPlan.crash_at_offset` — on the first write that would cross
an absolute file offset.

Fault modes:

``error``
    Raise :class:`OSError` (default ``ENOSPC``) with nothing written.
    The process survives; the storage layer must roll back cleanly.
``short``
    Write only a prefix of the data, then raise :class:`OSError` — a
    disk-full mid-write.  The process survives.
``crash`` / ``torn``
    Write a (possibly empty) prefix, then raise :class:`InjectedCrash`
    and mark the plan *dead*: every subsequent gated operation raises,
    simulating process death.  The test then reopens the file fresh and
    exercises recovery.
``bitflip``
    Flip one byte of the data and write it all; the call *succeeds*.
    Simulates silent media corruption; only checksums can catch it.

Crash granularity is the write boundary: a crash injected on ``flush``
or ``fsync`` models a crash immediately *after* the data persisted
(the data-lost-in-flight cases are covered by torn writes).

:class:`InjectedCrash` deliberately does **not** derive from
:class:`~repro.errors.PrometheusError` so that no library-level handler
can accidentally swallow a simulated process death.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass
from typing import Any, BinaryIO, Iterator

OPS = ("write", "flush", "fsync")


class InjectedFault(Exception):
    """Base class of injected failures (not a ``PrometheusError``)."""


class InjectedCrash(InjectedFault):
    """Simulated process death: the faulted file is unusable hereafter."""


@dataclass
class Fault:
    """One scheduled fault.  Fires at most once."""

    op: str                       # "write" | "flush" | "fsync"
    mode: str                     # "error" | "short" | "crash" | "bitflip"
    at: int | None = None         # the Nth call of `op` (1-based), or
    offset: int | None = None     # the first write crossing this offset
    keep: int | float | None = None   # bytes (int) or fraction (float) kept
    errno_code: int = errno.ENOSPC
    flip_position: int | None = None  # byte index to flip (bitflip mode)
    fired: bool = False

    def matches(self, op: str, count: int, position: int | None, size: int | None) -> bool:
        if self.fired or op != self.op:
            return False
        if self.at is not None:
            return count == self.at
        if self.offset is not None and position is not None and size is not None:
            return position <= self.offset < position + size
        return False


class FaultPlan:
    """A deterministic, seedable schedule of storage faults.

    Also an operation *counter*: running a workload under an empty plan
    records how many writes/flushes/fsyncs it performs, which is exactly
    the list of crash points a sweep must cover (see :func:`sweep_points`).

    Registration methods return ``self`` for chaining::

        plan = FaultPlan(seed=7).crash("write", at=3)
        store = ObjectStore(path, faults=plan)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.faults: list[Fault] = []
        self.counts: dict[str, int] = {op: 0 for op in OPS}
        self.dead = False
        self.fired: list[Fault] = []

    # -- registration -------------------------------------------------------

    def add(self, fault: Fault) -> "FaultPlan":
        if fault.op not in OPS:
            raise ValueError(f"unknown fault op {fault.op!r}")
        self.faults.append(fault)
        return self

    def fail(self, op: str, at: int, errno_code: int = errno.ENOSPC) -> "FaultPlan":
        """Raise ``OSError(errno_code)`` on the Nth `op`; nothing written."""
        return self.add(Fault(op=op, mode="error", at=at, errno_code=errno_code))

    def crash(self, op: str, at: int, keep: int | float | None = None) -> "FaultPlan":
        """Simulate process death on the Nth `op` (torn write if ``op`` is
        ``write``: a prefix chosen by ``keep`` — or the seeded RNG —
        reaches the file first)."""
        return self.add(Fault(op=op, mode="crash", at=at, keep=keep))

    def torn_write(self, at: int, keep: int | float | None = None) -> "FaultPlan":
        """Crash on the Nth write with only a prefix persisted."""
        return self.crash("write", at, keep=keep)

    def short_write(self, at: int, keep: int | float | None = None,
                    errno_code: int = errno.ENOSPC) -> "FaultPlan":
        """Nth write persists a prefix then raises (process survives)."""
        return self.add(Fault(op="write", mode="short", at=at, keep=keep,
                              errno_code=errno_code))

    def bit_flip(self, at: int, position: int | None = None) -> "FaultPlan":
        """Silently corrupt one byte of the Nth write (call succeeds)."""
        return self.add(Fault(op="write", mode="bitflip", at=at,
                              flip_position=position))

    def crash_at_offset(self, offset: int, keep_to_offset: bool = True) -> "FaultPlan":
        """Crash on the first write that crosses absolute file ``offset``;
        bytes up to the offset reach the file."""
        keep: int | float | None = None if not keep_to_offset else -1  # marker
        fault = Fault(op="write", mode="crash", offset=offset, keep=keep)
        return self.add(fault)

    # -- interrogation ------------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(self.counts.values())

    def snapshot_counts(self) -> dict[str, int]:
        return dict(self.counts)

    def _require_alive(self) -> None:
        if self.dead:
            raise InjectedCrash("process already crashed (plan is dead)")

    # -- the firing machinery (called by FaultyFile) ------------------------

    def _arm(self, op: str, position: int | None = None,
             size: int | None = None) -> Fault | None:
        self.counts[op] += 1
        count = self.counts[op]
        for fault in self.faults:
            if fault.matches(op, count, position, size):
                fault.fired = True
                self.fired.append(fault)
                return fault
        return None

    def _resolve_keep(self, fault: Fault, data: bytes, position: int | None) -> int:
        if fault.keep == -1 and fault.offset is not None and position is not None:
            return max(0, min(len(data), fault.offset - position))
        if fault.keep is None:
            return self._rng.randrange(len(data) + 1) if data else 0
        if isinstance(fault.keep, float):
            return max(0, min(len(data), int(len(data) * fault.keep)))
        return max(0, min(len(data), int(fault.keep)))

    def _execute_write(self, fault: Fault, raw: BinaryIO, data: bytes,
                       position: int | None) -> int:
        if fault.mode == "error":
            raise OSError(fault.errno_code, os.strerror(fault.errno_code))
        if fault.mode == "short":
            keep = self._resolve_keep(fault, data, position)
            raw.write(data[:keep])
            raise OSError(fault.errno_code, os.strerror(fault.errno_code))
        if fault.mode == "bitflip":
            mutated = bytearray(data)
            if mutated:
                pos = (fault.flip_position if fault.flip_position is not None
                       else self._rng.randrange(len(mutated)))
                mutated[pos % len(mutated)] ^= 0xFF
            return raw.write(bytes(mutated))
        # crash / torn
        keep = self._resolve_keep(fault, data, position)
        raw.write(data[:keep])
        try:
            raw.flush()
        except OSError:  # pragma: no cover - flush of a dying file
            pass
        self.dead = True
        raise InjectedCrash(
            f"injected crash on write #{self.counts['write']} "
            f"({keep}/{len(data)} bytes persisted)"
        )

    def _execute_simple(self, fault: Fault, raw: BinaryIO) -> None:
        if fault.mode == "error":
            raise OSError(fault.errno_code, os.strerror(fault.errno_code))
        # crash: persist what is buffered, then die (crash-after-persist).
        try:
            raw.flush()
        except OSError:  # pragma: no cover
            pass
        self.dead = True
        raise InjectedCrash(
            f"injected crash on {fault.op} #{self.counts[fault.op]}"
        )


class FaultyFile:
    """A binary-file wrapper that routes write/flush/fsync through a
    :class:`FaultPlan`.  Everything else passes straight through."""

    def __init__(self, raw: BinaryIO, plan: FaultPlan) -> None:
        self._raw = raw
        self._plan = plan

    # -- gated operations ---------------------------------------------------

    def write(self, data: bytes) -> int:
        plan = self._plan
        plan._require_alive()
        position = self._raw.tell()
        fault = plan._arm("write", position=position, size=len(data))
        if fault is None:
            return self._raw.write(data)
        return plan._execute_write(fault, self._raw, data, position)

    def flush(self) -> None:
        plan = self._plan
        plan._require_alive()
        fault = plan._arm("flush")
        if fault is not None:
            plan._execute_simple(fault, self._raw)
        self._raw.flush()

    def fsync(self) -> None:
        plan = self._plan
        plan._require_alive()
        fault = plan._arm("fsync")
        if fault is not None:
            plan._execute_simple(fault, self._raw)
        self._raw.flush()
        os.fsync(self._raw.fileno())

    def truncate(self, size: int | None = None) -> int:
        # A dead (crashed) process cannot repair its own tail.
        self._plan._require_alive()
        return self._raw.truncate(size)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        # Always release the descriptor, even after a simulated crash
        # (tests reopen the path; leaking fds would mask that).
        try:
            self._raw.close()
        except OSError:  # pragma: no cover
            pass

    @property
    def closed(self) -> bool:
        return self._raw.closed

    # -- passthrough --------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._raw, name)


def sweep_points(counts: dict[str, int]) -> Iterator[tuple[str, int]]:
    """Enumerate every (op, index) crash point a counted workload exposes.

    Run the workload once under an empty plan to obtain ``counts``
    (:attr:`FaultPlan.counts`), then re-run it once per yielded point
    with ``FaultPlan().crash(op, at=index)`` installed.
    """
    for op in OPS:
        for index in range(1, counts.get(op, 0) + 1):
            yield op, index
