"""Append-only record log with checksums and crash-safe recovery.

The log is the single file behind a Prometheus database.  It is a sequence
of *entries*; each entry is::

    magic(2) | kind(1) | payload_len(varint-free u32) | payload | crc32(4)

``kind`` distinguishes data entries (an object state), tombstones (object
deletion), commit markers (transaction boundary) and metadata entries.
Readers stop at the first structurally invalid entry, which makes a torn
final write (process killed mid-append) recoverable: everything after the
last commit marker is ignored by the transactional layer above.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from ..errors import CorruptRecordError, StorageError
from .faults import FaultPlan, FaultyFile, InjectedFault

MAGIC = b"\xA5\x5A"
HEADER = b"PROMETHEUS-LOG-v1\n"

KIND_DATA = 1       # payload: serialized object record
KIND_TOMBSTONE = 2  # payload: 8-byte big-endian OID
KIND_COMMIT = 3     # payload: 8-byte big-endian transaction id
KIND_META = 4       # payload: serialized metadata record

_LEN_STRUCT = struct.Struct(">I")
_CRC_STRUCT = struct.Struct(">I")
_OID_STRUCT = struct.Struct(">Q")

_ENTRY_OVERHEAD = 2 + 1 + 4 + 4  # magic + kind + len + crc


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One decoded log entry with its file position."""

    offset: int
    kind: int
    payload: bytes

    @property
    def end_offset(self) -> int:
        return self.offset + _ENTRY_OVERHEAD + len(self.payload)


class RecordLog:
    """Append-only entry log over a single file.

    The log keeps its file handle open in ``a+b`` mode; appends always go
    to the end, reads seek freely.  ``sync=True`` fsyncs after every flush
    (slow, durable); the default relies on OS buffering, which is the
    right trade-off for benchmarking a layered design rather than disks.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync: bool = False,
        faults: FaultPlan | None = None,
    ) -> None:
        self._path = os.fspath(path)
        self._sync = sync
        # Always-on plain-int op counters (scraped by the telemetry
        # layer's storage collector; never read on the hot path).
        self.appends = 0
        self.flushes = 0
        self.fsyncs = 0
        size = os.path.getsize(self._path) if os.path.exists(self._path) else 0
        raw: BinaryIO = open(self._path, "a+b")
        self._file: BinaryIO = FaultyFile(raw, faults) if faults is not None else raw
        if size >= len(HEADER):
            self._check_header()
        else:
            # Empty file, or a header torn by a crash during creation:
            # a strict prefix of HEADER is unambiguously ours to finish.
            self._file.seek(0)
            head = self._file.read(size)
            if head != HEADER[:size]:
                self._file.close()
                raise StorageError(f"{self._path}: not a Prometheus log file")
            if size:
                self._file.truncate(0)
            self._file.write(HEADER)
            self._file.flush()
        self._file.seek(0, io.SEEK_END)
        self._end = self._file.tell()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            try:
                self._file.flush()
            except (OSError, InjectedFault):
                pass  # release the descriptor even when the disk is gone
            finally:
                self._file.close()
                self._closed = True

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def path(self) -> str:
        return self._path

    @property
    def size(self) -> int:
        """Current end offset (bytes) of valid data."""
        return self._end

    def _check_header(self) -> None:
        self._file.seek(0)
        head = self._file.read(len(HEADER))
        if head != HEADER:
            raise StorageError(f"{self._path}: not a Prometheus log file")

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("log is closed")

    # -- writing ------------------------------------------------------------

    def append(self, kind: int, payload: bytes) -> int:
        """Append one entry; return its offset.  Not yet flushed.

        Exception-safe: if the write fails partway (disk full, I/O
        error), the torn tail is truncated away and ``_end`` is left
        unchanged, so one failed append can never poison the log — the
        next append lands exactly where this one should have.
        """
        self._require_open()
        entry = bytearray()
        entry += MAGIC
        entry.append(kind)
        entry += _LEN_STRUCT.pack(len(payload))
        entry += payload
        entry += _CRC_STRUCT.pack(zlib.crc32(payload))
        offset = self._end
        try:
            self._file.seek(0, io.SEEK_END)
            self._file.write(entry)
        except InjectedFault:
            raise  # simulated process death: no in-process repair runs
        except Exception:
            self._rollback_tail(offset)
            raise
        self._end += len(entry)
        self.appends += 1
        return offset

    def _rollback_tail(self, offset: int) -> None:
        """Best-effort removal of a torn partial write after ``offset``."""
        try:
            self._file.flush()
        except OSError:
            pass
        try:
            self._file.truncate(offset)
        except OSError:
            pass

    def append_data(self, payload: bytes) -> int:
        return self.append(KIND_DATA, payload)

    def append_tombstone(self, oid: int) -> int:
        return self.append(KIND_TOMBSTONE, _OID_STRUCT.pack(oid))

    def append_commit(self, txn_id: int) -> int:
        offset = self.append(KIND_COMMIT, _OID_STRUCT.pack(txn_id))
        self.flush()
        return offset

    def append_meta(self, payload: bytes) -> int:
        return self.append(KIND_META, payload)

    @property
    def sync(self) -> bool:
        return self._sync

    def flush(self, fsync: bool | None = None) -> None:
        """Flush buffered bytes to the OS; fsync per the log's ``sync``
        setting unless ``fsync`` overrides it (the group-commit path
        flushes with ``fsync=False`` and batches the fsync later)."""
        self._require_open()
        self._file.flush()
        self.flushes += 1
        if self._sync if fsync is None else fsync:
            self._fsync()

    def fsync_now(self) -> None:
        """Force one fsync (the group-commit leader's shared barrier)."""
        self._require_open()
        self._fsync()

    def _fsync(self) -> None:
        fsync = getattr(self._file, "fsync", None)
        if fsync is not None:  # FaultyFile provides an interceptable fsync
            fsync()
        else:
            os.fsync(self._file.fileno())
        self.fsyncs += 1

    def append_raw(self, data: bytes) -> int:
        """Append pre-framed entry bytes verbatim; return the new end offset.

        This is the replication apply path: a replica receives a byte
        range copied straight out of the primary's log and splices it
        onto its own tail, keeping the two files byte-identical.  The
        caller is responsible for validating the spliced region (via
        :meth:`scan` / :meth:`scan_salvage`); a torn shipment is healed
        exactly like a torn local append — truncated at recovery time.
        Exception-safe the same way :meth:`append` is.
        """
        self._require_open()
        offset = self._end
        try:
            self._file.seek(0, io.SEEK_END)
            self._file.write(data)
            self._file.flush()
            self.flushes += 1
        except InjectedFault:
            raise  # simulated process death: no in-process repair runs
        except Exception:
            self._rollback_tail(offset)
            raise
        self._end += len(data)
        self.appends += 1
        if self._sync:
            self._fsync()
        return self._end

    def truncate(self, offset: int) -> None:
        """Discard everything after ``offset`` (recovery from a corrupt
        tail: appends must land directly after the last valid entry, or
        they would be unreachable to future scans)."""
        self._require_open()
        if offset < len(HEADER) or offset > self._end:
            raise StorageError(f"cannot truncate to offset {offset}")
        self._file.flush()
        self._file.truncate(offset)
        self._end = offset

    # -- reading ------------------------------------------------------------

    def read_entry(self, offset: int) -> LogEntry:
        """Read and validate the entry starting at ``offset``."""
        self._require_open()
        if offset < len(HEADER) or offset >= self._end:
            raise CorruptRecordError(f"offset {offset} outside log")
        self._file.seek(offset)
        head = self._file.read(7)
        if len(head) < 7 or head[:2] != MAGIC:
            raise CorruptRecordError(f"bad entry magic at offset {offset}")
        kind = head[2]
        (length,) = _LEN_STRUCT.unpack(head[3:7])
        payload = self._file.read(length)
        crc_raw = self._file.read(4)
        if len(payload) != length or len(crc_raw) != 4:
            raise CorruptRecordError(f"truncated entry at offset {offset}")
        (crc,) = _CRC_STRUCT.unpack(crc_raw)
        if crc != zlib.crc32(payload):
            raise CorruptRecordError(f"checksum mismatch at offset {offset}")
        return LogEntry(offset=offset, kind=kind, payload=payload)

    def scan(self, start: int | None = None) -> Iterator[LogEntry]:
        """Yield valid entries in order, stopping at the first corrupt one.

        This is the recovery path: a torn tail ends iteration silently;
        the caller truncates logical state at the last commit marker.
        """
        self._require_open()
        offset = len(HEADER) if start is None else start
        while offset < self._end:
            try:
                entry = self.read_entry(offset)
            except CorruptRecordError:
                return
            yield entry
            offset = entry.end_offset

    def scan_salvage(self, start: int | None = None) -> Iterator[LogEntry]:
        """Yield every structurally valid entry, resynchronising past
        corrupt regions instead of abandoning everything after them.

        On a corrupt entry the scan searches forward for the next
        occurrence of the entry magic at which a *complete, checksummed*
        entry parses, and resumes there.  Callers see skipped regions as
        discontinuities between one entry's ``end_offset`` and the next
        entry's ``offset``.  The CRC requirement makes false resyncs
        (magic bytes occurring inside a payload) vanishingly unlikely —
        a candidate must also parse and checksum as a full entry.
        """
        self._require_open()
        offset = len(HEADER) if start is None else start
        while offset < self._end:
            try:
                entry = self.read_entry(offset)
            except CorruptRecordError:
                resync = self._find_next_entry(offset + 1)
                if resync is None:
                    return
                offset = resync
                continue
            yield entry
            offset = entry.end_offset

    def _find_next_entry(self, start: int, chunk_size: int = 65536) -> int | None:
        """First offset >= ``start`` where a fully valid entry begins."""
        offset = max(start, len(HEADER))
        while offset < self._end:
            self._file.seek(offset)
            chunk = self._file.read(min(chunk_size, self._end - offset))
            if len(chunk) < len(MAGIC):
                return None
            index = chunk.find(MAGIC)
            while index != -1:
                candidate = offset + index
                try:
                    self.read_entry(candidate)
                except CorruptRecordError:
                    pass
                else:
                    return candidate
                index = chunk.find(MAGIC, index + 1)
            # Overlap by one byte so a MAGIC spanning two chunks is seen.
            offset += len(chunk) - (len(MAGIC) - 1)
        return None

    def read_bytes(self, start: int, end: int) -> bytes:
        """Raw byte range ``[start, end)`` of the log file.

        The replication shipper uses this to frame batches without
        re-encoding entries; ``end`` is clamped to the current end of
        valid data so a concurrent append can never yield a torn tail.
        """
        self._require_open()
        if start < 0 or start > self._end:
            raise StorageError(f"read_bytes start {start} outside log")
        end = min(end, self._end)
        if end <= start:
            return b""
        self._file.flush()
        self._file.seek(start)
        return self._file.read(end - start)

    @staticmethod
    def decode_oid_payload(payload: bytes) -> int:
        if len(payload) != 8:
            raise CorruptRecordError("bad OID payload length")
        return _OID_STRUCT.unpack(payload)[0]
