"""Persistent storage substrate for Prometheus.

This package provides the log-structured, transactional object store that
the Prometheus model layers sit on.  It plays the role that the commercial
POET OODBMS played in the thesis: the "raw storage" baseline that the
performance evaluation (chapter 7.2) compares the extended model against.

Public API:

* :class:`ObjectStore` — OID-addressed record store with transactions.
* :class:`Transaction` — handle returned by :meth:`ObjectStore.begin`.
* :func:`encode_record` / :func:`decode_record` — record serialization.
* :class:`RecordLog` — the underlying append-only checksummed log.
* :class:`LruCache` — bounded record cache.
* :class:`FaultPlan` / :class:`FaultyFile` — deterministic fault injection.
* :class:`RecoveryReport` — what recovery scanned, salvaged, truncated.
"""

from .cache import LruCache
from .faults import (
    FaultPlan,
    FaultyFile,
    InjectedCrash,
    InjectedFault,
    sweep_points,
)
from .log import LogEntry, RecordLog
from .serialization import decode_record, encode_record
from .store import (
    AppliedBatch,
    ObjectStore,
    RecoveryReport,
    StoreStats,
    Transaction,
)

__all__ = [
    "AppliedBatch",
    "FaultPlan",
    "FaultyFile",
    "InjectedCrash",
    "InjectedFault",
    "LogEntry",
    "LruCache",
    "ObjectStore",
    "RecordLog",
    "RecoveryReport",
    "StoreStats",
    "Transaction",
    "decode_record",
    "encode_record",
    "sweep_points",
]
