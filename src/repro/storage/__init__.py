"""Persistent storage substrate for Prometheus.

This package provides the log-structured, transactional object store that
the Prometheus model layers sit on.  It plays the role that the commercial
POET OODBMS played in the thesis: the "raw storage" baseline that the
performance evaluation (chapter 7.2) compares the extended model against.

Public API:

* :class:`ObjectStore` — OID-addressed record store with transactions.
* :class:`Transaction` — handle returned by :meth:`ObjectStore.begin`.
* :func:`encode_record` / :func:`decode_record` — record serialization.
* :class:`RecordLog` — the underlying append-only checksummed log.
* :class:`LruCache` — bounded record cache.
"""

from .cache import LruCache
from .log import LogEntry, RecordLog
from .serialization import decode_record, encode_record
from .store import ObjectStore, StoreStats, Transaction

__all__ = [
    "LogEntry",
    "LruCache",
    "ObjectStore",
    "RecordLog",
    "StoreStats",
    "Transaction",
    "decode_record",
    "encode_record",
]
