"""PCL — the Prometheus Constraint Language (thesis §5.2.3).

PCL is the thesis's OCL-derived constraint notation, extended with the
features OCL lacks for database work (§5.2.3.2): a **condition of
applicability** (``when``), **relationship-centred invariants**
(``relinv``), and an explicit **execution mode** (``immediate`` /
``deferred``).  PCL text is *translated* into Prometheus ECA rules
(§5.2.3.3 / Figure 25) — the engine only ever executes rules.

Syntax::

    context <ClassName>
        inv    [name] [immediate|deferred] [on <attr>] [when <expr>] : <expr>
        pre    [name] [on <attr>] [when <expr>] : <expr>
        post   [name] [on <attr>] [when <expr>] : <expr>
        relinv [name] [when <expr>] : <expr>

``on <attr>`` narrows pre/post/inv clauses to updates of one attribute.

Expressions are POOL boolean expressions over ``self`` (and ``origin`` /
``destination`` in ``relinv`` clauses, ``old`` / ``new`` in pre/post
clauses), with ``implies`` available::

    context NomenclaturalTaxon
        inv familyEnding when self.rank = "Familia" :
            self.epithet.endsWith("aceae")
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.relationships import RelationshipClass
from ..core.schema import Schema
from ..errors import PCLError
from ..query.lexer import tokenize
from ..query.parser import Parser
from ..query.tokens import TokenType
from .engine import RuleEngine
from .events import AnyOf, on_create, on_relate, on_update
from .rule import Mode, OnViolation, Rule, RuleKind

_CLAUSE_KINDS = {"inv", "pre", "post", "relinv"}
_MODES = {"immediate": Mode.IMMEDIATE, "deferred": Mode.DEFERRED}


@dataclass
class PclClause:
    """One parsed clause, before translation."""

    context_class: str
    kind: str
    name: str
    mode: Mode | None
    when_text: str | None
    condition_text: str
    attribute: str | None = None


class PclParser:
    """Parses PCL text into clauses using the POOL lexer/expression parser."""

    def __init__(self, text: str) -> None:
        self._parser = Parser(tokenize(text))

    def parse(self) -> list[PclClause]:
        clauses: list[PclClause] = []
        p = self._parser
        while not p._check(TokenType.EOF):
            word = p._expect(TokenType.IDENT, "'context'")
            if word.value != "context":
                raise PCLError(
                    f"expected 'context', got {word.value!r} "
                    f"(line {word.line})"
                )
            class_name = p._expect(TokenType.IDENT, "class name").value
            block_clauses = self._clauses(class_name)
            if not block_clauses:
                raise PCLError(
                    f"context {class_name!r} declares no clauses"
                )
            clauses.extend(block_clauses)
        return clauses

    def _clauses(self, class_name: str) -> list[PclClause]:
        p = self._parser
        out: list[PclClause] = []
        counter = 0
        while (
            p._check(TokenType.IDENT)
            and p._peek().value in _CLAUSE_KINDS
        ):
            kind = p._advance().value
            name = ""
            mode: Mode | None = None
            attribute: str | None = None
            # Optional clause name, mode and "on <attr>" in any sane order.
            while p._check(TokenType.IDENT) and p._peek().value not in (
                "when",
            ):
                word = p._peek().value
                if word in _MODES:
                    p._advance()
                    mode = _MODES[word]
                elif word == "on" and p._peek(1).type is TokenType.IDENT:
                    p._advance()
                    attribute = p._advance().value
                elif not name and p._peek(1).type in (
                    TokenType.COLON,
                    TokenType.IDENT,
                ) and p._peek().value not in _CLAUSE_KINDS:
                    name = p._advance().value
                else:
                    break
            when_text: str | None = None
            if p._check(TokenType.IDENT) and p._peek().value == "when":
                p._advance()
                when_node = p._expression()
                when_text = when_node.unparse()
            p._expect(TokenType.COLON, "':'")
            condition_node = p._expression()
            counter += 1
            out.append(
                PclClause(
                    context_class=class_name,
                    kind=kind,
                    name=name or f"{class_name}_{kind}_{counter}",
                    mode=mode,
                    when_text=when_text,
                    condition_text=condition_node.unparse(),
                    attribute=attribute,
                )
            )
        return out


def translate_clause(clause: PclClause, schema: Schema) -> Rule:
    """Translate one PCL clause into a Prometheus rule (Figure 25)."""
    if not schema.has_class(clause.context_class):
        raise PCLError(f"unknown context class {clause.context_class!r}")
    pclass = schema.get_class(clause.context_class)
    is_rel = isinstance(pclass, RelationshipClass)
    if clause.kind == "relinv" and not is_rel:
        raise PCLError(
            f"relinv on {clause.context_class!r}, which is not a "
            "relationship class"
        )
    if clause.kind == "relinv":
        event = on_relate(clause.context_class, before=True)
        kind = RuleKind.RELATIONSHIP
        default_mode = Mode.IMMEDIATE
    elif clause.kind == "pre":
        event = on_update(
            clause.context_class, attribute=clause.attribute, before=True
        )
        kind = RuleKind.PRECONDITION
        default_mode = Mode.IMMEDIATE
    elif clause.kind == "post":
        event = on_update(clause.context_class, attribute=clause.attribute)
        kind = RuleKind.POSTCONDITION
        default_mode = Mode.IMMEDIATE
    else:  # inv
        event = AnyOf(
            on_create(clause.context_class),
            on_update(clause.context_class, attribute=clause.attribute),
        )
        kind = RuleKind.INVARIANT
        default_mode = Mode.DEFERRED
    return Rule(
        name=clause.name,
        event=event,
        condition=clause.condition_text,
        applicability=clause.when_text,
        kind=kind,
        mode=clause.mode or default_mode,
        on_violation=OnViolation.ABORT,
        target_class=clause.context_class,
        message=f"PCL {clause.kind} on {clause.context_class}: "
        f"{clause.condition_text}",
    )


def translate_pcl(
    text: str, schema: Schema, engine: RuleEngine | None = None
) -> list[Rule]:
    """Parse PCL text and translate every clause to a rule.

    When ``engine`` is given the rules are registered immediately.
    """
    clauses = PclParser(text).parse()
    rules = [translate_clause(clause, schema) for clause in clauses]
    if engine is not None:
        engine.register_all(rules)
    return rules


def format_translation(rule: Rule) -> str:
    """Human-readable rendering of a translated rule (Figure 25)."""
    lines = [
        f"rule {rule.name}",
        f"  on      : {sorted(k.value for k in rule.event.kinds())}",
        f"  class   : {rule.target_class}",
        f"  kind    : {rule.kind.value}",
        f"  mode    : {rule.mode.value}",
    ]
    if isinstance(rule.applicability, str):
        lines.append(f"  when    : {rule.applicability}")
    if isinstance(rule.condition, str):
        lines.append(f"  check   : {rule.condition}")
    lines.append(f"  violate : {rule.on_violation.value}")
    return "\n".join(lines)
