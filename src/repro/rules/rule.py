"""Rule objects: Event — Condition-of-applicability — Condition — Action.

The thesis's rule anatomy (§5.2.1): a rule reacts to an *event*; a
*condition of applicability* says whether the rule is relevant at all
(e.g. "only for names at rank Familia"); the *condition* is the actual
constraint; an optional *action* runs on violation (repair) or success.

Conditions can be Python callables or POOL expression strings, evaluated
with ``self`` bound to the target object (and ``origin`` /
``destination`` for relationship rules, ``old`` / ``new`` for updates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core.events import Event
from ..errors import RuleError
from .events import EventSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schema import Schema


class RuleKind(enum.Enum):
    """The rule taxonomy of §5.2.1.4."""

    INVARIANT = "invariant"
    PRECONDITION = "pre-condition"
    POSTCONDITION = "post-condition"
    RELATIONSHIP = "relationship-rule"
    ACTION = "action-rule"  # deductive/automatic action, no constraint


class Mode(enum.Enum):
    """Execution strategy (§5.2.2.1)."""

    IMMEDIATE = "immediate"
    DEFERRED = "deferred"


class OnViolation(enum.Enum):
    """What happens when the condition fails (§5.2.2.2)."""

    ABORT = "abort"          # raise; at commit time, abort the transaction
    WARN = "warn"            # record a warning, allow the change
    INTERACTIVE = "interactive"  # ask the registered handler (§5.2.3 extras)
    REPAIR = "repair"        # run the action, then re-check once


@dataclass
class RuleContext:
    """Everything a condition/action can see when a rule fires."""

    schema: "Schema"
    event: Event
    rule: "Rule"

    @property
    def target(self) -> Any:
        return self.event.target

    @property
    def origin(self) -> Any:
        return self.event.origin

    @property
    def destination(self) -> Any:
        return self.event.destination

    def pool_env(self) -> dict[str, Any]:
        """Variable bindings for POOL-expressed conditions."""
        env: dict[str, Any] = {
            "self": self.event.target,
            "old": self.event.old_value,
            "new": self.event.new_value,
        }
        if self.event.origin is not None:
            env["origin"] = self.event.origin
        if self.event.destination is not None:
            env["destination"] = self.event.destination
        return env


Predicate = Callable[[RuleContext], bool]
Action = Callable[[RuleContext], None]


def _compile_pool(expression: str) -> Predicate:
    """Compile a POOL boolean expression into a predicate."""
    from ..query.evaluator import Evaluator, QueryContext
    from ..query.parser import parse_expression

    node = parse_expression(expression)

    def predicate(ctx: RuleContext) -> bool:
        evaluator = Evaluator(QueryContext(schema=ctx.schema))
        value = evaluator.evaluate(node, ctx.pool_env())
        return bool(value)

    return predicate


@dataclass
class Rule:
    """One ECA rule.

    Args:
        name: unique rule name within an engine.
        event: the :class:`EventSpec` that triggers evaluation.
        condition: the constraint — a predicate or POOL text; ``None``
            means "always violated is never" (pure action rules).
        applicability: optional gate — a predicate or POOL text; when it
            evaluates false the rule simply does not apply (§5.2.1.2).
        action: optional callable run per :attr:`on_violation` semantics
            (REPAIR) or, for ACTION rules, whenever the rule fires.
        kind / mode / on_violation: see the enums above.
        target_class: class the rule conceptually belongs to (attached to
            its metaobject for introspection).
        priority: lower runs first among rules woken by the same event.
        message: human explanation used in violation errors.
    """

    name: str
    event: EventSpec
    condition: Predicate | str | None = None
    applicability: Predicate | str | None = None
    action: Action | None = None
    kind: RuleKind = RuleKind.INVARIANT
    mode: Mode = Mode.IMMEDIATE
    on_violation: OnViolation = OnViolation.ABORT
    target_class: str | None = None
    priority: int = 100
    message: str = ""
    enabled: bool = True
    fired: int = field(default=0, compare=False)
    violations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("a rule needs a name")
        if isinstance(self.condition, str):
            self._condition_fn: Predicate | None = _compile_pool(self.condition)
        else:
            self._condition_fn = self.condition
        if isinstance(self.applicability, str):
            self._applicability_fn: Predicate | None = _compile_pool(
                self.applicability
            )
        else:
            self._applicability_fn = self.applicability
        if self.on_violation is OnViolation.REPAIR and self.action is None:
            raise RuleError(
                f"rule {self.name!r}: REPAIR needs an action"
            )

    # -- evaluation ------------------------------------------------------

    def applies(self, ctx: RuleContext) -> bool:
        if self._applicability_fn is None:
            return True
        return bool(self._applicability_fn(ctx))

    def check(self, ctx: RuleContext) -> bool:
        """True when the condition holds (no violation)."""
        if self._condition_fn is None:
            return True
        return bool(self._condition_fn(ctx))

    def run_action(self, ctx: RuleContext) -> None:
        if self.action is not None:
            self.action(ctx)

    def describe(self) -> str:
        parts = [f"{self.kind.value} {self.name!r}", self.mode.value]
        if self.target_class:
            parts.append(f"on {self.target_class}")
        parts.append(f"violation→{self.on_violation.value}")
        if self.message:
            parts.append(f"({self.message})")
        return " ".join(parts)
