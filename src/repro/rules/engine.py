"""The rules layer: scheduling and execution (thesis §5.2.2, §6.1.6).

The :class:`RuleEngine` subscribes to the schema's event bus.  When an
event matches a rule's event spec and the rule's condition of
applicability holds:

* **immediate** rules evaluate right away — a violation with
  ``OnViolation.ABORT`` raises :class:`ConstraintViolation` out of the
  mutating call, vetoing the change (``before_*`` events) or rolling back
  the single assignment (``after_update``, handled by the object layer);
* **deferred** rules are queued and evaluated at ``BEFORE_COMMIT``; a
  violation aborts the whole transaction automatically (the thesis's
  "automatic actions (e.g. transaction abortion)").

Violation handling follows the rule's :class:`OnViolation`: ABORT raises,
WARN records, INTERACTIVE consults a registered handler, REPAIR runs the
action and re-checks once.  A cascade counter guards against rules whose
actions re-trigger rules forever (§5.2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.events import Event, EventKind
from ..core.schema import Schema
from ..errors import ConstraintViolation, RuleCascadeError, RuleError
from ..telemetry import DISABLED, Telemetry
from .rule import Mode, OnViolation, Rule, RuleContext, RuleKind

#: Interactive handler: return True to accept the change anyway.
InteractiveHandler = Callable[[Rule, RuleContext], bool]

_CASCADE_LIMIT = 64


@dataclass
class Violation:
    """A recorded (non-fatal) violation."""

    rule_name: str
    message: str
    event_kind: str
    target_oid: int | None = None


@dataclass
class _DeferredEntry:
    rule: Rule
    context: RuleContext


class RuleEngine:
    """Rule registry + scheduler bound to one schema."""

    def __init__(
        self, schema: Schema, telemetry: Telemetry | None = None
    ) -> None:
        self.schema = schema
        self._rules: dict[str, Rule] = {}
        # Stack of deferred queues: index 0 is the implicit session's
        # queue; a managed transaction pushes its own scope around its
        # replay so only *its* deferred checks run at its commit.
        self._deferred_stack: list[list[_DeferredEntry]] = [[]]
        self._warnings: list[Violation] = []
        self._interactive_handler: InteractiveHandler | None = None
        self._depth = 0
        self._running_deferred = False
        self._unsubscribe = schema.events.subscribe(self._on_event)
        #: Telemetry facade (one branch per hook when disabled).
        self.telemetry = telemetry if telemetry is not None else DISABLED

    # -- registry -----------------------------------------------------------

    def register(self, rule: Rule) -> Rule:
        if rule.name in self._rules:
            raise RuleError(f"rule {rule.name!r} already registered")
        self._rules[rule.name] = rule
        if rule.target_class and self.schema.has_class(rule.target_class):
            self.schema.get_class(rule.target_class).constraints.append(rule)
        return rule

    def register_all(self, rules: list[Rule]) -> None:
        for rule in rules:
            self.register(rule)

    def unregister(self, name: str) -> None:
        rule = self._rules.pop(name, None)
        if rule is not None and rule.target_class and self.schema.has_class(
            rule.target_class
        ):
            constraints = self.schema.get_class(rule.target_class).constraints
            if rule in constraints:
                constraints.remove(rule)

    def get(self, name: str) -> Rule:
        try:
            return self._rules[name]
        except KeyError:
            raise RuleError(f"unknown rule {name!r}") from None

    def rules(self) -> list[Rule]:
        return sorted(self._rules.values(), key=lambda r: (r.priority, r.name))

    def set_interactive_handler(self, handler: InteractiveHandler | None) -> None:
        """Install the handler consulted by INTERACTIVE rules."""
        self._interactive_handler = handler

    @property
    def warnings(self) -> list[Violation]:
        return list(self._warnings)

    def clear_warnings(self) -> None:
        self._warnings.clear()

    def detach(self) -> None:
        """Stop listening to the schema's events."""
        self._unsubscribe()

    # -- deferred-queue scoping (repro.concurrency) -------------------------

    @property
    def _deferred(self) -> list[_DeferredEntry]:
        return self._deferred_stack[-1]

    @_deferred.setter
    def _deferred(self, value: list[_DeferredEntry]) -> None:
        self._deferred_stack[-1] = value

    def push_deferred_scope(self) -> None:
        """Open a fresh deferred queue for one managed transaction."""
        self._deferred_stack.append([])

    def pop_deferred_scope(self) -> None:
        if len(self._deferred_stack) > 1:
            self._deferred_stack.pop()

    @property
    def deferred_depth(self) -> int:
        """Entries queued in the current (innermost) deferred scope."""
        return len(self._deferred)

    # -- event dispatch -----------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if event.kind is EventKind.BEFORE_COMMIT:
            self._run_deferred()
            return
        if event.kind in (EventKind.AFTER_COMMIT, EventKind.AFTER_ABORT):
            self._deferred.clear()
            for rule in self._rules.values():
                rule.event.reset()
            return
        if self._depth >= _CASCADE_LIMIT:
            raise RuleCascadeError(
                f"rule cascade exceeded {_CASCADE_LIMIT} levels"
            )
        self._depth += 1
        try:
            for rule in self.rules():
                if not rule.enabled:
                    continue
                matched = self._matches(rule, event)
                if not matched:
                    continue
                ctx = RuleContext(schema=self.schema, event=event, rule=rule)
                if not rule.applies(ctx):
                    continue
                if rule.mode is Mode.DEFERRED:
                    self._enqueue_deferred(rule, ctx)
                else:
                    self._evaluate(rule, ctx)
        finally:
            self._depth -= 1

    def _enqueue_deferred(self, rule: Rule, ctx: RuleContext) -> None:
        """Queue a deferred check, one per (rule, target) per transaction.

        Deferred rules assert the *final* state at commit (§5.2.2.1), so
        repeated triggering events on the same object collapse to the
        latest context.
        """
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_rules_deferred_enqueued_total",
                help="Deferred rule checks enqueued",
            ).inc()
            tel.registry.gauge(
                "repro_rules_deferred_depth",
                help="Current deferred-rule queue depth",
            ).set(len(self._deferred) + 1)
        target = ctx.target
        for index, entry in enumerate(self._deferred):
            if entry.rule is rule and (
                entry.context.target is target
                or (
                    target is not None
                    and entry.context.target is not None
                    and entry.context.target.oid == target.oid
                )
            ):
                self._deferred[index] = _DeferredEntry(rule=rule, context=ctx)
                return
        self._deferred.append(_DeferredEntry(rule=rule, context=ctx))

    def _matches(self, rule: Rule, event: Event) -> bool:
        """Event-spec match with schema-aware class narrowing.

        A spec narrowed to a class also matches events whose class is a
        *subclass* of it, so rules on abstract classes cover their whole
        hierarchy — including inside composite specs.
        """
        return rule.event.feed(event, self._class_covers)

    def _class_covers(self, event_class: str, spec_class: str) -> bool:
        if not (
            event_class
            and self.schema.has_class(event_class)
            and self.schema.has_class(spec_class)
        ):
            return False
        return self.schema.get_class(event_class).is_subclass_of(
            self.schema.get_class(spec_class)
        )

    # -- evaluation -----------------------------------------------------------------

    def _evaluate(self, rule: Rule, ctx: RuleContext) -> None:
        rule.fired += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_rules_fired_total", help="Rule evaluations"
            ).inc()
            tel.registry.counter(
                "repro_rules_fired_by_rule_total", {"rule": rule.name}
            ).inc()
        if rule.kind is RuleKind.ACTION:
            rule.run_action(ctx)
            return
        if rule.check(ctx):
            return
        rule.violations += 1
        if tel.enabled:
            tel.registry.counter(
                "repro_rules_violations_total", help="Rule violations"
            ).inc()
            tel.registry.counter(
                "repro_rules_violations_by_rule_total", {"rule": rule.name}
            ).inc()
        self._handle_violation(rule, ctx)

    def _handle_violation(self, rule: Rule, ctx: RuleContext) -> None:
        message = rule.message or rule.describe()
        if rule.on_violation is OnViolation.WARN:
            self._warnings.append(
                Violation(
                    rule_name=rule.name,
                    message=message,
                    event_kind=ctx.event.kind.value,
                    target_oid=ctx.target.oid if ctx.target is not None else None,
                )
            )
            return
        if rule.on_violation is OnViolation.REPAIR:
            rule.run_action(ctx)
            if rule.check(ctx):
                return
            raise ConstraintViolation(rule.name, message + " (repair failed)")
        if rule.on_violation is OnViolation.INTERACTIVE:
            handler = self._interactive_handler
            if handler is not None and handler(rule, ctx):
                return
            raise ConstraintViolation(rule.name, message + " (rejected)")
        raise ConstraintViolation(rule.name, message)

    def _run_deferred(self) -> None:
        """Evaluate the deferred queue at commit (§5.2.2.1).

        On an ABORT-class violation the transaction is rolled back
        automatically before the error propagates — the thesis's
        automatic transaction abortion.
        """
        if self._running_deferred:
            return
        self._running_deferred = True
        try:
            entries, self._deferred = self._deferred, []
            tel = self.telemetry
            if tel.enabled:
                tel.registry.gauge("repro_rules_deferred_depth").set(0)
            for entry in entries:
                target = entry.context.target
                if target is not None and target.deleted:
                    continue  # the object died later in the transaction
                try:
                    self._evaluate(entry.rule, entry.context)
                except ConstraintViolation:
                    self.schema.abort()
                    raise
        finally:
            self._running_deferred = False

    # -- whole-database validation -----------------------------------------------------

    def check_all_invariants(self) -> list[Violation]:
        """Run every invariant over the extents it targets, reporting all
        violations instead of raising (what-if / audit mode, §7.1.4)."""
        found: list[Violation] = []
        for rule in self.rules():
            if rule.kind is not RuleKind.INVARIANT or not rule.enabled:
                continue
            if not rule.target_class or not self.schema.has_class(
                rule.target_class
            ):
                continue
            for obj in self.schema.extent(rule.target_class):
                event = Event(
                    kind=EventKind.AFTER_UPDATE,
                    target=obj,
                    class_name=obj.pclass.name,
                )
                ctx = RuleContext(schema=self.schema, event=event, rule=rule)
                if not rule.applies(ctx):
                    continue
                if not rule.check(ctx):
                    found.append(
                        Violation(
                            rule_name=rule.name,
                            message=rule.message or rule.describe(),
                            event_kind="audit",
                            target_oid=obj.oid,
                        )
                    )
        return found
