"""Event specifications for rules (thesis §5.2.1.1).

A rule's *event part* says which database events wake it up.  Events can
be **primitive** (one event kind, optionally narrowed by class, attribute
or relationship) or **composite** (any-of, all-of, or an ordered
sequence, evaluated within one transaction — composite state resets at
commit/abort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.events import Event, EventKind

#: Optional class-coverage predicate: covers(event_class, spec_class) is
#: True when an event on ``event_class`` should satisfy a spec narrowed
#: to ``spec_class`` (the engine passes a subclass-aware check, so rules
#: on abstract classes cover their whole hierarchy).
ClassCovers = Callable[[str, str], bool]


class EventSpec:
    """Base class of event specifications."""

    def matches(self, event: Event, covers: ClassCovers | None = None) -> bool:
        """Stateless test used by primitive specs; composites override
        :meth:`feed` instead."""
        raise NotImplementedError

    def feed(self, event: Event, covers: ClassCovers | None = None) -> bool:
        """Advance internal state with ``event``; True when the spec is
        satisfied *by this event*."""
        return self.matches(event, covers)

    def reset(self) -> None:
        """Forget per-transaction state (called at commit/abort)."""

    def kinds(self) -> frozenset[EventKind]:
        """The primitive kinds this spec can ever react to (for
        subscription filtering)."""
        raise NotImplementedError


@dataclass
class On(EventSpec):
    """Primitive event: a kind, optionally narrowed.

    ``class_name`` matches the event's class (including, for schema-aware
    engines, its subclasses — narrowing is done by the engine, which
    knows the schema); ``attribute`` narrows update events.
    """

    kind: EventKind
    class_name: str | None = None
    attribute: str | None = None

    def matches(self, event: Event, covers: ClassCovers | None = None) -> bool:
        if event.kind is not self.kind:
            return False
        if self.class_name is not None and event.class_name != self.class_name:
            if covers is None or not covers(event.class_name, self.class_name):
                return False
        if self.attribute is not None and event.attribute != self.attribute:
            return False
        return True

    def kinds(self) -> frozenset[EventKind]:
        return frozenset((self.kind,))


@dataclass
class AnyOf(EventSpec):
    """Composite: satisfied by any member event."""

    members: tuple[EventSpec, ...]

    def __init__(self, *members: EventSpec) -> None:
        self.members = tuple(members)

    def matches(self, event: Event, covers: ClassCovers | None = None) -> bool:
        return any(member.matches(event, covers) for member in self.members)

    def feed(self, event: Event, covers: ClassCovers | None = None) -> bool:
        # No short-circuit: every member sees the event (stateful members
        # must advance even when an earlier member already matched).
        return any([member.feed(event, covers) for member in self.members])

    def reset(self) -> None:
        for member in self.members:
            member.reset()

    def kinds(self) -> frozenset[EventKind]:
        out: frozenset[EventKind] = frozenset()
        for member in self.members:
            out |= member.kinds()
        return out


@dataclass
class AllOf(EventSpec):
    """Composite: satisfied once every member has occurred (any order)
    within the current transaction."""

    members: tuple[EventSpec, ...]
    _seen: set[int] = field(default_factory=set)

    def __init__(self, *members: EventSpec) -> None:
        self.members = tuple(members)
        self._seen = set()

    def matches(self, event: Event, covers: ClassCovers | None = None) -> bool:  # pragma: no cover
        return self.feed(event, covers)

    def feed(self, event: Event, covers: ClassCovers | None = None) -> bool:
        for index, member in enumerate(self.members):
            if index not in self._seen and member.feed(event, covers):
                self._seen.add(index)
                break
        return len(self._seen) == len(self.members)

    def reset(self) -> None:
        self._seen.clear()
        for member in self.members:
            member.reset()

    def kinds(self) -> frozenset[EventKind]:
        out: frozenset[EventKind] = frozenset()
        for member in self.members:
            out |= member.kinds()
        return out


@dataclass
class Sequence(EventSpec):
    """Composite: members must occur in order within one transaction."""

    members: tuple[EventSpec, ...]
    _position: int = 0

    def __init__(self, *members: EventSpec) -> None:
        self.members = tuple(members)
        self._position = 0

    def matches(self, event: Event, covers: ClassCovers | None = None) -> bool:  # pragma: no cover
        return self.feed(event, covers)

    def feed(self, event: Event, covers: ClassCovers | None = None) -> bool:
        if self._position < len(self.members) and self.members[
            self._position
        ].feed(event, covers):
            self._position += 1
        return self._position == len(self.members)

    def reset(self) -> None:
        self._position = 0
        for member in self.members:
            member.reset()

    def kinds(self) -> frozenset[EventKind]:
        out: frozenset[EventKind] = frozenset()
        for member in self.members:
            out |= member.kinds()
        return out


# Convenience constructors -----------------------------------------------------

def on_update(class_name: str | None = None, attribute: str | None = None,
              before: bool = False) -> On:
    kind = EventKind.BEFORE_UPDATE if before else EventKind.AFTER_UPDATE
    return On(kind, class_name=class_name, attribute=attribute)


def on_create(class_name: str | None = None, before: bool = False) -> On:
    kind = EventKind.BEFORE_CREATE if before else EventKind.AFTER_CREATE
    return On(kind, class_name=class_name)


def on_delete(class_name: str | None = None, before: bool = False) -> On:
    kind = EventKind.BEFORE_DELETE if before else EventKind.AFTER_DELETE
    return On(kind, class_name=class_name)


def on_relate(relationship: str | None = None, before: bool = False) -> On:
    kind = EventKind.BEFORE_RELATE if before else EventKind.AFTER_RELATE
    return On(kind, class_name=relationship)


def on_unrelate(relationship: str | None = None, before: bool = False) -> On:
    kind = EventKind.BEFORE_UNRELATE if before else EventKind.AFTER_UNRELATE
    return On(kind, class_name=relationship)


def on_commit() -> On:
    return On(EventKind.BEFORE_COMMIT)
