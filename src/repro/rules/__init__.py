"""Rules and constraints (thesis chapter 5.2 and §6.1.6).

ECA rules with conditions of applicability, immediate/deferred
scheduling, automatic transaction abortion, interactive and repairing
violation handling, and PCL — the OCL-derived constraint language
translated into rules.
"""

from .engine import InteractiveHandler, RuleEngine, Violation
from .events import (
    AllOf,
    AnyOf,
    EventSpec,
    On,
    Sequence,
    on_commit,
    on_create,
    on_delete,
    on_relate,
    on_unrelate,
    on_update,
)
from .pcl import (
    PclClause,
    PclParser,
    format_translation,
    translate_clause,
    translate_pcl,
)
from .rule import Mode, OnViolation, Rule, RuleContext, RuleKind

__all__ = [
    "AllOf",
    "AnyOf",
    "EventSpec",
    "InteractiveHandler",
    "Mode",
    "On",
    "OnViolation",
    "PclClause",
    "PclParser",
    "Rule",
    "RuleContext",
    "RuleEngine",
    "RuleKind",
    "Sequence",
    "Violation",
    "format_translation",
    "on_commit",
    "on_create",
    "on_delete",
    "on_relate",
    "on_unrelate",
    "on_update",
    "translate_clause",
    "translate_pcl",
]
