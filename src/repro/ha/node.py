"""Per-node HA role machine: primary/replica, fencing, lease, transitions.

One :class:`HAController` wraps one :class:`~repro.engine.database.
PrometheusDB` and owns its cluster role.  The controller is the single
place where the role changes, so the server, the CLI and the chaos
harness all agree on what this node currently is:

* ``primary`` — holds (when configured) a write lease granted by the
  supervisor; writes are allowed only while the lease is live and the
  node is not fenced.
* ``replica`` — pulls from a primary via its
  :class:`~repro.replication.replica.ReplicationClient`.

Transitions (see ``docs/HA.md`` for the full state machine):

* :meth:`promote` — replica → primary at a new, higher epoch.  The
  epoch is stamped into the record log *first thing* so it replicates
  to every survivor and permanently outranks the deposed primary.
* :meth:`demote` / :meth:`fence` — primary → fenced.  Open sessions
  are aborted with the typed
  :class:`~repro.errors.NodeDemotedError`, the store flips read-only,
  and every subsequent write or pull against this node answers with
  the current epoch.
* :meth:`repoint` — replica (or fenced ex-primary) → replica of a new
  primary.  A fenced ex-primary re-joins through the normal
  replication path: divergence detection will reset it if its log
  grew past the promotion point.

Epoch arithmetic is deliberately dumb: a single monotonic integer,
compared with ``>``.  No quorums here — the supervisor is the single
elector, and *fencing* (lease expiry + epoch rejection), not
consensus, is what prevents dual primaries.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ReplicationError, StalePrimaryError
from ..replication.replica import ReplicaApplier, ReplicationClient
from ..replication.stream import LogShipper
from ..telemetry import DISABLED, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import PrometheusDB


class HAController:
    """Owns one node's cluster role and executes HA transitions.

    Args:
        db: the node's database (must have a persistent store).
        name: this node's cluster-wide name.
        shipper: the primary-side :class:`LogShipper` (primaries only;
            created on promotion otherwise).
        replica_client: the pull loop (replicas only).
        primary_url: where the current primary lives, when known.
        lease_ttl_s: when set, primary writes additionally require a
            live lease (granted by the supervisor via
            :meth:`grant_lease`, self-granted on promotion).  ``None``
            disables lease checking — standalone primaries stay
            writable forever.
        clock: injectable monotonic clock (virtual in the chaos tests).
        make_transport: ``url -> transport`` factory used by
            :meth:`repoint` to build the pull transport at the new
            primary (HTTP in production, in-process in tests).
    """

    def __init__(
        self,
        db: "PrometheusDB",
        name: str,
        shipper: LogShipper | None = None,
        replica_client: ReplicationClient | None = None,
        primary_url: str | None = None,
        lease_ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        make_transport: Callable[[str], Any] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if db.store is None:
            raise ReplicationError("HA needs a persistent store")
        self.db = db
        self.name = name
        self.shipper = shipper
        self.replica_client = replica_client
        self.primary_url = primary_url
        self.lease_ttl_s = lease_ttl_s
        self._clock = clock
        self.make_transport = make_transport
        self.telemetry = (
            telemetry if telemetry is not None else db.telemetry
        )
        self.role = "replica" if replica_client is not None else "primary"
        self.fenced = False
        self.promotions = 0
        self.fences = 0
        self.last_fence_reason: str | None = None
        self._epoch_seen = 0
        # With lease fencing armed, a primary starts UNLEASED: only the
        # supervisor's grant (or a promotion, which is supervisor-
        # ordered) opens the write window.  A deposed primary that
        # restarts therefore cannot self-authorize writes it would lose.
        self._lease_expires: float | None = None
        self._lease_expiry_noted = False
        self._lock = threading.RLock()
        if self.telemetry.enabled:
            self.attach_telemetry(self.telemetry)

    def attach_telemetry(self, telemetry: Telemetry | None = None) -> None:
        """Wire a facade in and register the HA gauges collector.

        Exposes ``repro_ha_cluster_epoch``,
        ``repro_ha_lease_remaining_seconds``, ``repro_ha_fenced`` and
        ``repro_ha_writes_allowed`` at scrape time — no hot-path hooks.
        """
        if telemetry is not None:
            self.telemetry = telemetry
        self.telemetry.registry.add_collector(self._collect)

    def _collect(self, registry: Any) -> None:
        with self._lock:
            epoch = self.epoch
            lease_remaining = 0.0
            if self.lease_ttl_s is not None and self._lease_expires is not None:
                lease_remaining = max(
                    0.0, self._lease_expires - self._clock()
                )
            fenced = self.fenced
            writes = self.writes_allowed()
        registry.gauge(
            "repro_ha_cluster_epoch",
            help="This node's view of the cluster epoch",
        ).set(epoch)
        registry.gauge(
            "repro_ha_lease_remaining_seconds",
            help="Seconds of write lease left (0 = unleased or expired)",
        ).set(round(lease_remaining, 3))
        registry.gauge(
            "repro_ha_fenced",
            help="1 when this node is fenced off from writes",
        ).set(1 if fenced else 0)
        registry.gauge(
            "repro_ha_writes_allowed",
            help="1 when this node may accept a write right now",
        ).set(1 if writes else 0)

    # -- state -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Highest cluster epoch this node knows about.

        The max of the log's stamped epoch and anything learned out of
        band (a frame, a rejected pull, a supervisor demote) — the
        out-of-band value can lead the log while a promotion's stamp is
        still replicating.
        """
        store = self.db.store
        assert store is not None
        seen = self._epoch_seen
        client = self.replica_client
        if client is not None:
            seen = max(seen, client.applier.known_epoch)
        return max(store.cluster_epoch, seen)

    def lease_valid(self) -> bool:
        if self.lease_ttl_s is None:
            return True
        expires = self._lease_expires
        if expires is not None and self._clock() < expires:
            self._lease_expiry_noted = False
            return True
        if expires is not None and not self._lease_expiry_noted:
            # One journal entry per expiry, not one per rejected write.
            self._lease_expiry_noted = True
            tel = self.telemetry
            if tel.enabled:
                tel.events.record(
                    "ha.lease_expired",
                    epoch=self.epoch,
                    expired_at=round(expires, 3),
                )
        return False

    def writes_allowed(self) -> bool:
        """May this node accept a write *right now*?

        Primary role, not fenced, lease live.  The server consults this
        before every session apply/commit; the chaos harness asserts at
        most one node in the cluster ever answers True.
        """
        with self._lock:
            return (
                self.role == "primary"
                and not self.fenced
                and self.lease_valid()
            )

    # -- epoch observations ------------------------------------------------

    def observe_epoch(self, epoch: int) -> None:
        """Learn an epoch from the outside world; self-fence if deposed.

        A primary that hears of a higher epoch has been superseded by a
        promotion it did not see (it was partitioned away) — it fences
        itself immediately rather than waiting for the supervisor.
        """
        with self._lock:
            was_newer = epoch > self.epoch
            if epoch > self._epoch_seen:
                self._epoch_seen = epoch
            if was_newer:
                tel = self.telemetry
                if tel.enabled:
                    tel.events.record("ha.epoch_change", epoch=epoch)
            if was_newer and self.role == "primary":
                self.fence(f"superseded by epoch {epoch}")

    # -- transitions -------------------------------------------------------

    def fence(self, reason: str) -> None:
        """Stop accepting writes permanently (until promoted again).

        Idempotent.  Aborts every open session with the typed demotion
        error and flips the store read-only so even non-session write
        paths are refused.
        """
        with self._lock:
            if self.fenced:
                return
            self.fenced = True
            store = self.db.store
            assert store is not None
            manager = getattr(self.db, "_sessions", None)
            if manager is not None:
                manager.demote_all(self.epoch, self.primary_url)
            store.make_read_only()
            self.fences += 1
            self.last_fence_reason = reason
            tel = self.telemetry
            if tel.enabled:
                tel.registry.counter(
                    "repro_ha_fences_total",
                    help="Times this node fenced itself off from writes",
                ).inc()
                tel.events.record(
                    "ha.fence",
                    epoch=self.epoch,
                    lsn=store.commit_lsn,
                    reason=reason,
                )

    def promote(self, epoch: int) -> int:
        """Become primary at ``epoch``; returns the stamp's commit LSN.

        Order matters: the pull loop stops first (no frames land under
        our feet), the store flips writable, and the *first* write of
        the new reign is the epoch stamp — it replicates to every
        survivor before any data does, so a survivor that later hears
        from the deposed primary already outranks it.
        """
        with self._lock:
            if epoch <= self.epoch:
                raise StalePrimaryError(
                    f"cannot promote {self.name} at epoch {epoch}: it "
                    f"already knows epoch {self.epoch}",
                    epoch=self.epoch,
                )
            store = self.db.store
            assert store is not None
            if self.replica_client is not None:
                self.replica_client.stop()
                self.replica_client = None
            store.make_writable()
            lsn = store.stamp_epoch(epoch)
            self._epoch_seen = epoch
            if self.shipper is None:
                self.shipper = LogShipper(store, telemetry=self.telemetry)
            self.role = "primary"
            self.fenced = False
            self.primary_url = None
            self.promotions += 1
            if self.lease_ttl_s is not None:
                self._lease_expires = self._clock() + self.lease_ttl_s
                self._lease_expiry_noted = False
            tel = self.telemetry
            if tel.enabled:
                tel.registry.counter(
                    "repro_ha_promotions_total",
                    help="Replica-to-primary promotions executed",
                ).inc()
                tel.registry.gauge(
                    "repro_ha_cluster_epoch",
                    help="This node's view of the cluster epoch",
                ).set(epoch)
                tel.events.record("ha.promote", epoch=epoch, lsn=lsn)
            return lsn

    def demote(self, epoch: int, primary_url: str | None = None) -> None:
        """Supervisor-ordered demotion: fence, remember the successor."""
        with self._lock:
            if epoch > self._epoch_seen:
                self._epoch_seen = epoch
            if primary_url:
                self.primary_url = primary_url
            if self.role == "primary":
                self.fence(f"demoted at epoch {epoch}")
            tel = self.telemetry
            if tel.enabled:
                tel.registry.gauge(
                    "repro_ha_cluster_epoch",
                    help="This node's view of the cluster epoch",
                ).set(self.epoch)
                tel.events.record(
                    "ha.demote", epoch=epoch, primary_url=self.primary_url
                )

    def repoint(self, primary_url: str, epoch: int) -> None:
        """Follow a promotion: pull from ``primary_url`` from now on.

        For a running replica this swaps the transport in place.  For a
        fenced ex-primary it builds the replica machinery (applier +
        client) so the node re-joins the new reign as a follower; its
        log is usually a prefix of the winner's (the winner had the
        highest LSN) and replication just continues — when it is not,
        divergence detection resets it.
        """
        if self.make_transport is None:
            raise ReplicationError(
                f"node {self.name} has no transport factory; cannot "
                "repoint"
            )
        with self._lock:
            if epoch < self.epoch:
                raise StalePrimaryError(
                    f"refusing to repoint {self.name} at stale epoch "
                    f"{epoch} (known: {self.epoch})",
                    epoch=self.epoch,
                )
            if epoch > self._epoch_seen:
                self._epoch_seen = epoch
            transport = self.make_transport(primary_url)
            if self.role == "primary":
                # Deposed primary rejoining as a follower.
                self.fence(f"repointed to {primary_url} at epoch {epoch}")
                self.role = "replica"
                self.shipper = None
            self.primary_url = primary_url
            client = self.replica_client
            if client is not None:
                was_running = client.running
                client.stop()
                client.applier.observe_epoch(epoch)
                client.set_transport(transport)
                client.failovers_followed += 1
                if was_running:
                    client.start()
            else:
                applier = ReplicaApplier(self.db, telemetry=self.telemetry)
                applier.observe_epoch(epoch)
                self.replica_client = ReplicationClient(
                    applier, transport, name=self.name
                )
            tel = self.telemetry
            if tel.enabled:
                tel.events.record(
                    "ha.repoint", epoch=epoch, primary_url=primary_url
                )

    def grant_lease(self, epoch: int, ttl_s: float) -> None:
        """Supervisor lease renewal; stale-epoch grants are rejected."""
        with self._lock:
            if epoch < self.epoch:
                raise StalePrimaryError(
                    f"lease grant at epoch {epoch} rejected: node knows "
                    f"epoch {self.epoch}",
                    epoch=self.epoch,
                )
            self.lease_ttl_s = ttl_s
            self._lease_expires = self._clock() + ttl_s
            self._lease_expiry_noted = False
            tel = self.telemetry
            if tel.enabled:
                tel.events.record("ha.lease_grant", epoch=epoch, ttl_s=ttl_s)

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        store = self.db.store
        assert store is not None
        with self._lock:
            lease_remaining = None
            if self.lease_ttl_s is not None and self._lease_expires:
                lease_remaining = round(
                    self._lease_expires - self._clock(), 3
                )
            return {
                "name": self.name,
                "role": self.role,
                "epoch": self.epoch,
                "fenced": self.fenced,
                "writes_allowed": self.writes_allowed(),
                "applied_lsn": store.commit_lsn,
                "primary_url": self.primary_url,
                "lease_ttl_s": self.lease_ttl_s,
                "lease_remaining_s": lease_remaining,
                "promotions": self.promotions,
                "fences": self.fences,
            }
