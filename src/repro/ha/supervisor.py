"""The external supervisor: liveness probing, lease renewal, failover.

:class:`FailoverCoordinator` watches a fixed set of nodes (one primary,
N replicas).  Each :meth:`tick`:

1. probe every node's ``/health/liveness`` (cheap, lock-free on the
   node side) and feed arrivals into the phi-accrual detector;
2. renew the live primary's write lease;
3. if the primary's suspicion crosses the threshold, run
   :meth:`failover`.

Failover is *fenced*, not consensual — correctness comes from ordering:

1. **Wait out the lease.**  The deposed primary's lease (plus a clock
   skew allowance) must expire before anyone else is promoted; after
   that instant it refuses writes on its own, even if partitioned away
   from everything, so the old reign and the new can never overlap.
2. **Pick the winner — with a quorum.**  Promotion requires a majority
   of the cluster to be reachable as candidates; the winner is the
   candidate with the highest ``(log epoch, applied LSN)``.  The pair
   matters: within one reign there is a single writer, so the LSN
   totally orders the prefixes, and across reigns the log epoch
   outranks raw length — a deposed primary's diverged log can be
   *longer* (unreplicated commits) without being *more complete*.
   Combined with the write-side ack quorum (primary + at least one
   replica = a majority of three), any acknowledged write is held by a
   member of every candidate majority, and the freshest candidate's
   log contains it.  With fewer candidates than a majority the
   coordinator refuses to promote: the cluster stays unavailable
   rather than guessing (the CP choice).
3. **Stamp the epoch.**  The winner promotes at ``max(observed)+1``;
   the stamp is the first entry of the new log reign and replicates to
   every survivor.
4. **Re-point the survivors** at the winner, **demote** the old primary
   (best-effort — it may be dead; fencing already covers it), and
   grant the winner its first lease.

The clock *and* sleep are injectable, so the chaos harness drives the
whole sequence on virtual time, deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ReplicationError
from ..telemetry import DISABLED, NULL_SPAN, Telemetry
from .detector import DEFAULT_THRESHOLD, PhiAccrualDetector

#: Ceiling for the exported phi gauge — phi grows without bound while a
#: node stays silent, and an unbounded value wrecks dashboard scales.
PHI_GAUGE_CAP = 1e6


@dataclass
class SupervisedNode:
    """One node as the coordinator sees it: a name, a URL, callables.

    The callables let the same coordinator supervise HTTP nodes in
    production and in-process :class:`~repro.ha.node.HAController`
    objects in the chaos harness.  Every callable may raise — the
    coordinator treats any exception as "unreachable".

    * ``liveness()`` — cheap probe; any return counts as a heartbeat.
    * ``status()`` — replication status (``applied_lsn``, ``epoch``).
    * ``promote(epoch)`` / ``demote(epoch, primary_url)`` /
      ``repoint(primary_url, epoch)`` / ``lease(epoch, ttl_s)`` — the
      HA transitions.
    """

    name: str
    url: str
    liveness: Callable[[], Any]
    status: Callable[[], dict[str, Any]]
    promote: Callable[[int], Any]
    demote: Callable[[int, str | None], Any]
    repoint: Callable[[str, int], Any]
    lease: Callable[[int, float], Any]


def http_node(
    name: str, url: str, timeout_s: float = 5.0
) -> SupervisedNode:
    """A :class:`SupervisedNode` speaking the server's HTTP HA API."""
    from ..engine.federation import RemoteDatabase

    client = RemoteDatabase(url, timeout=timeout_s)
    return SupervisedNode(
        name=name,
        url=url,
        liveness=client.liveness,
        status=client.replication_status,
        promote=lambda epoch: client.ha_promote(epoch),
        demote=lambda epoch, primary_url: client.ha_demote(
            epoch, primary_url
        ),
        repoint=lambda primary_url, epoch: client.ha_repoint(
            primary_url, epoch
        ),
        lease=lambda epoch, ttl_s: client.ha_lease(epoch, ttl_s),
    )


@dataclass
class FailoverReport:
    """What one failover did, for operators and the bench."""

    old_primary: str
    new_primary: str
    epoch: int
    #: candidate -> (log_epoch, applied_lsn) as seen by the census.
    candidates: dict[str, tuple[int, int]] = field(default_factory=dict)
    repointed: list[str] = field(default_factory=list)
    demote_ok: bool = False
    detect_to_promoted_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "old_primary": self.old_primary,
            "new_primary": self.new_primary,
            "epoch": self.epoch,
            "candidates": {
                name: list(pair) for name, pair in self.candidates.items()
            },
            "repointed": list(self.repointed),
            "demote_ok": self.demote_ok,
            "detect_to_promoted_s": round(self.detect_to_promoted_s, 4),
        }


class FailoverCoordinator:
    """Probes the fleet, renews the lease, promotes on primary loss.

    Args:
        nodes: every node in the cluster (the primary included).
        primary: the current primary's name (must be in ``nodes``).
        interval_s: tick period of the background loop.
        phi_threshold: suspicion level that triggers failover.
        lease_ttl_s: write-lease duration granted to the primary; the
            failover waits ``lease_ttl_s + skew_allowance_s`` before
            promoting so the old lease provably expired first.
        skew_allowance_s: how much the deposed primary's clock may run
            slow relative to ours and still have its lease expire
            within the wait.
        promotion_quorum: how many candidates (reachable non-primary
            nodes) the census must find before a failover may promote.
            Defaults to a majority of the cluster, which together with
            the primary-plus-one write ack quorum guarantees no
            acknowledged write is lost by a promotion.
        clock / sleep: injectable time, for the chaos harness.
    """

    def __init__(
        self,
        nodes: list[SupervisedNode],
        primary: str,
        interval_s: float = 1.0,
        phi_threshold: float = DEFAULT_THRESHOLD,
        lease_ttl_s: float = 3.0,
        skew_allowance_s: float = 0.5,
        promotion_quorum: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.nodes = {node.name: node for node in nodes}
        if primary not in self.nodes:
            raise ReplicationError(f"unknown primary {primary!r}")
        self.primary = primary
        self.promotion_quorum = (
            promotion_quorum
            if promotion_quorum is not None
            else (len(self.nodes) + 1) // 2
        )
        self.interval_s = interval_s
        self.lease_ttl_s = lease_ttl_s
        self.skew_allowance_s = skew_allowance_s
        self._clock = clock
        self._sleep = sleep
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.detector = PhiAccrualDetector(
            threshold=phi_threshold, clock=clock
        )
        self.epoch = 0
        self.failovers: list[FailoverReport] = []
        self.ticks = 0
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if self.telemetry.enabled:
            self.attach_telemetry(self.telemetry)

    def attach_telemetry(self, telemetry: Telemetry | None = None) -> None:
        """Wire a facade in and register the supervision gauges.

        Exposes per-node ``repro_ha_phi{node=...}`` suspicion levels and
        the supervisor's ``repro_ha_cluster_epoch`` at scrape time, and
        pre-creates the ``repro_ha_time_to_recover_ms`` histogram so it
        renders (empty) before the first failover.
        """
        if telemetry is not None:
            self.telemetry = telemetry
        self.telemetry.registry.histogram(
            "repro_ha_time_to_recover_ms",
            help="Suspicion-to-promoted latency per failover (ms)",
        )
        self.telemetry.registry.add_collector(self._collect)

    def _collect(self, registry: Any) -> None:
        for name, stats in self.detector.snapshot().items():
            phi = min(float(stats["phi"]), PHI_GAUGE_CAP)
            registry.gauge(
                "repro_ha_phi",
                {"node": name},
                help="Phi-accrual suspicion level per supervised node",
            ).set(phi)
        registry.gauge(
            "repro_ha_cluster_epoch",
            help="The supervisor's view of the cluster epoch",
        ).set(self.epoch)

    # -- one supervision round --------------------------------------------

    def probe(self, name: str) -> dict[str, Any] | None:
        """Liveness-probe one node; heartbeat the detector on success.

        Returns the liveness body ({} when the probe succeeded but
        returned something non-dict), or None when unreachable.
        """
        node = self.nodes[name]
        try:
            body = node.liveness()
        except Exception:
            return None
        self.detector.heartbeat(name)
        if not isinstance(body, dict):
            return {}
        epoch = int(body.get("epoch") or 0)
        if epoch > self.epoch:
            self.epoch = epoch
        return body

    def tick(self) -> FailoverReport | None:
        """One round: probe everyone, renew the lease, maybe fail over."""
        with self._lock:
            self.ticks += 1
            primary_alive = False
            for name in sorted(self.nodes):
                body = self.probe(name)
                if name == self.primary:
                    primary_alive = body is not None
                elif (
                    body is not None
                    and body.get("role") == "primary"
                    and int(body.get("epoch") or 0) < self.epoch
                ):
                    # A deposed primary returned from the dead (pause,
                    # restart) still wearing the crown at a stale epoch.
                    # Its lease has long expired so it is not accepting
                    # writes, but fence it explicitly so its sessions
                    # fail fast with the typed error.
                    try:
                        self.nodes[name].demote(
                            self.epoch, self.nodes[self.primary].url
                        )
                    except Exception:
                        pass
            if primary_alive:
                try:
                    self.nodes[self.primary].lease(
                        max(self.epoch, 1), self.lease_ttl_s
                    )
                except Exception:
                    pass  # renewal is retried next tick; expiry fences
                return None
            if not self.detector.suspect(self.primary):
                return None  # silent but not yet past the threshold
            return self.failover()

    def failover(self) -> FailoverReport | None:
        """Fenced promotion of the best surviving replica.

        Returns None when no replica is reachable (nothing to promote
        — the cluster stays down rather than guessing).

        Runs under an ``ha.failover`` trace span: every journal entry
        the transitions emit (fence, promote, repoint, lease grant) on
        in-process nodes — and, via traceparent headers, on HTTP nodes
        — carries the same trace_id, so one trace reconstructs the
        whole promotion.
        """
        tel = self.telemetry
        span = (
            tel.tracer.span("ha.failover") if tel.enabled else NULL_SPAN
        )
        with span:
            report = self._failover_locked()
            if report is not None:
                span.set("old_primary", report.old_primary)
                span.set("new_primary", report.new_primary)
                span.set("epoch", report.epoch)
        return report

    def _failover_locked(self) -> FailoverReport | None:
        with self._lock:
            started = self._clock()
            old_primary = self.primary
            # 1. The old lease must have expired before a new reign
            # starts, clock skew included.
            self._sleep(self.lease_ttl_s + self.skew_allowance_s)
            # 2. Census of the survivors.
            candidates: dict[str, tuple[int, int]] = {}
            observed_epoch = self.epoch
            for name, node in self.nodes.items():
                if name == old_primary:
                    continue
                try:
                    status = node.status()
                except Exception:
                    continue
                known_epoch = int(status.get("epoch") or 0)
                log_epoch = int(
                    status.get("log_epoch", known_epoch) or 0
                )
                candidates[name] = (
                    log_epoch,
                    int(status.get("applied_lsn") or 0),
                )
                observed_epoch = max(observed_epoch, known_epoch)
            if len(candidates) < self.promotion_quorum:
                return None  # cannot promote safely: stay down (CP)
            # Freshest (log epoch, applied LSN) wins — the epoch first,
            # so a deposed primary's diverged-but-longer log never
            # outranks the current reign; the name breaks exact ties so
            # every coordinator run (and chaos seed) picks the same one.
            winner = min(
                candidates,
                key=lambda n: (-candidates[n][0], -candidates[n][1], n),
            )
            new_epoch = observed_epoch + 1
            # 3. Stamp the new reign.
            self.nodes[winner].promote(new_epoch)
            self.epoch = new_epoch
            self.primary = winner
            promoted_at = self._clock()
            report = FailoverReport(
                old_primary=old_primary,
                new_primary=winner,
                epoch=new_epoch,
                candidates=candidates,
                detect_to_promoted_s=promoted_at - started,
            )
            # 4. Fence the loser (best-effort), re-point the rest.
            try:
                self.nodes[old_primary].demote(
                    new_epoch, self.nodes[winner].url
                )
                report.demote_ok = True
            except Exception:
                pass  # dead or partitioned; lease expiry fences it
            for name in sorted(candidates):
                if name == winner:
                    continue
                try:
                    self.nodes[name].repoint(
                        self.nodes[winner].url, new_epoch
                    )
                    report.repointed.append(name)
                except Exception:
                    continue
            try:
                self.nodes[winner].lease(new_epoch, self.lease_ttl_s)
            except Exception:
                pass
            self.detector.forget(old_primary)
            self.failovers.append(report)
            tel = self.telemetry
            if tel.enabled:
                tel.registry.counter(
                    "repro_ha_failovers_total",
                    help="Fenced failovers executed by the supervisor",
                ).inc()
                tel.registry.gauge(
                    "repro_ha_cluster_epoch",
                    help="The supervisor's view of the cluster epoch",
                ).set(new_epoch)
                tel.registry.histogram(
                    "repro_ha_time_to_recover_ms",
                    help="Suspicion-to-promoted latency per failover (ms)",
                ).observe(report.detect_to_promoted_s * 1000.0)
                tel.events.record(
                    "ha.failover",
                    epoch=new_epoch,
                    old_primary=old_primary,
                    new_primary=winner,
                    detect_to_promoted_s=round(
                        report.detect_to_promoted_s, 4
                    ),
                )
            return report

    # -- background loop ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ha-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:  # supervision must outlive bad rounds
                pass
            if self._stop.wait(self.interval_s):
                return

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "primary": self.primary,
                "epoch": self.epoch,
                "ticks": self.ticks,
                "nodes": sorted(self.nodes),
                "detector": self.detector.snapshot(),
                "failovers": [r.as_dict() for r in self.failovers],
            }
