"""High availability: failure detection, fenced promotion, supervision.

Built on the PR-5 replication stack, this package removes the topology's
single point of failure.  Three pieces:

* :mod:`detector` — a phi-accrual-style failure detector: heartbeat
  arrival intervals feed an exponential model, and "suspicion" is a
  continuous ``phi`` value compared against a threshold, not a binary
  timeout.
* :mod:`node` — :class:`HAController`, the per-node role machine:
  primary or replica, fenced or not, holding (and checking) the write
  lease, executing promote/demote/repoint transitions.
* :mod:`supervisor` — :class:`FailoverCoordinator`, the external
  supervisor: probes ``/health/liveness``, renews the primary's lease,
  and when the primary is suspected performs a *fenced* failover —
  wait out the lease, pick the replica with the highest applied LSN,
  stamp a new cluster epoch, re-point the survivors.

Fencing is epoch-based: a monotonic cluster epoch is stamped into the
record log (it replicates like any other entry) and carried by every
shipped frame; a deposed primary that comes back is rejected with the
current epoch instead of splitting the brain.  See ``docs/HA.md`` for
the state machine and the operator runbook.
"""

from .detector import PhiAccrualDetector
from .node import HAController
from .supervisor import (
    FailoverCoordinator,
    FailoverReport,
    SupervisedNode,
    http_node,
)

__all__ = [
    "FailoverCoordinator",
    "FailoverReport",
    "HAController",
    "PhiAccrualDetector",
    "SupervisedNode",
    "http_node",
]
