"""Phi-accrual-style failure detection over heartbeat arrivals.

Classic timeout detectors answer "is the node dead?" with a boolean
derived from one magic number.  The phi-accrual detector (Hayashibara
et al.) instead outputs a *suspicion level* ``phi`` that grows
continuously the longer a heartbeat is overdue, scaled by how regular
the node's past heartbeats were: a node that heartbeats like clockwork
is suspected quickly, a jittery one is given slack.  The caller picks a
threshold (8 is the customary default: roughly "one false positive if
heartbeats were this overdue 10^8 intervals in a row").

This implementation uses the exponential-distribution variant (as in
Cassandra): with mean observed interval ``m`` and time-since-last-beat
``t``, ``P(still alive) = exp(-t/m)`` and

    phi = -log10(P) = (t / m) * log10(e)

It needs only the running mean, is monotone in ``t``, and behaves
sanely with the small sample counts a fresh cluster has.  The clock is
injectable so tests (and the chaos harness) can drive it virtually.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable

#: log10(e): converts the exponential model's exponent into a phi value.
_LOG10_E = math.log10(math.e)

#: Default suspicion threshold (the literature's customary value).
DEFAULT_THRESHOLD = 8.0


class PhiAccrualDetector:
    """Tracks heartbeat arrivals per node and exposes ``phi``/``suspect``.

    Args:
        threshold: suspicion level at which :meth:`suspect` fires.
        window: how many recent inter-arrival intervals feed the mean.
        min_interval_s: floor on the modelled mean interval — guards
            against a burst of rapid-fire heartbeats (mean ~ 0) making
            the detector hair-triggered forever after.
        first_heartbeat_estimate_s: stand-in mean until two heartbeats
            have arrived.
        clock: injectable monotonic clock.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        window: int = 128,
        min_interval_s: float = 0.05,
        first_heartbeat_estimate_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.window = window
        self.min_interval_s = min_interval_s
        self.first_heartbeat_estimate_s = first_heartbeat_estimate_s
        self._clock = clock
        self._lock = threading.Lock()
        self._intervals: dict[str, deque[float]] = {}
        self._last_beat: dict[str, float] = {}

    def heartbeat(self, node: str) -> None:
        """Record one heartbeat arrival from ``node``."""
        now = self._clock()
        with self._lock:
            last = self._last_beat.get(node)
            if last is not None:
                window = self._intervals.setdefault(
                    node, deque(maxlen=self.window)
                )
                window.append(max(0.0, now - last))
            self._last_beat[node] = now

    def forget(self, node: str) -> None:
        """Drop a node's history (it left the cluster)."""
        with self._lock:
            self._intervals.pop(node, None)
            self._last_beat.pop(node, None)

    def _mean_interval(self, node: str) -> float:
        window = self._intervals.get(node)
        if not window:
            return self.first_heartbeat_estimate_s
        return max(sum(window) / len(window), self.min_interval_s)

    def phi(self, node: str) -> float:
        """Current suspicion level for ``node``.

        0.0 for a node we have never heard from (no evidence either
        way — the supervisor decides how to treat strangers); grows
        without bound as a known node stays silent.
        """
        with self._lock:
            last = self._last_beat.get(node)
            if last is None:
                return 0.0
            elapsed = max(0.0, self._clock() - last)
            return (elapsed / self._mean_interval(node)) * _LOG10_E

    def suspect(self, node: str) -> bool:
        return self.phi(node) >= self.threshold

    def last_heard(self, node: str) -> float | None:
        """Seconds since ``node``'s last heartbeat (None = never)."""
        with self._lock:
            last = self._last_beat.get(node)
            if last is None:
                return None
            return max(0.0, self._clock() - last)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            nodes = sorted(self._last_beat)
        out: dict[str, dict[str, Any]] = {}
        for node in nodes:
            out[node] = {
                "phi": round(self.phi(node), 3),
                "suspect": self.suspect(node),
                "last_heard_s": self.last_heard(node),
                "samples": len(self._intervals.get(node, ())),
            }
        return out
