"""Measurement harness for the thesis's performance evaluation (§7.2).

The evaluation compares the Prometheus layer against its underlying
storage system and classifies each feature's overhead as **constant**
(Figure 44, test T5) or **non-constant** (Figures 45–46, tests S1 and
S2) as the database grows.  The harness provides:

* :func:`measure` — monotonic per-operation timing;
* sweep builders for the three figures, each returning
  :class:`SweepRow` series (size, raw ns/op, prometheus ns/op, ratio);
* :func:`format_series` — the aligned text table printed by the
  benchmark scripts (the reproduction of the figures as data series).

The thesis's chapter-7 test labels are reconstructed as follows (the
source text enumerates the figures but the per-test prose is not part of
the available excerpt; EXPERIMENTS.md records this):

* **T5** — relationship-instance creation: Prometheus ``relate()``
  versus a bare storage write of an equivalent record.  The semantic
  checks are index-backed, so the overhead is a constant factor at any
  database size (Figure 44).
* **S1** — classification placement: ``Classification.place`` versus a
  bare ``relate()``.  Classification membership is persisted as a
  snapshot, so per-placement cost grows with classification size
  (Figure 45).
* **S2** — classification comparison: circumscription-overlap synonym
  detection between two classifications of *g* groups each is
  O(g²·leaves), versus the O(g·leaves) flat leaf-set intersection the
  raw layer could offer (Figure 46).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..classification import compare_classifications
from ..core.attributes import Attribute
from ..core.schema import Schema
from ..core.semantics import RelationshipSemantics, RelKind
from ..core import types as T
from ..storage.store import ObjectStore


def measure(
    operation: Callable[[], Any],
    number: int = 100,
    repeat: int = 3,
    setup: Callable[[], None] | None = None,
) -> float:
    """Best-of-``repeat`` mean time per call, in nanoseconds."""
    best = float("inf")
    for _ in range(repeat):
        if setup is not None:
            setup()
        start = time.perf_counter_ns()
        for _ in range(number):
            operation()
        elapsed = time.perf_counter_ns() - start
        best = min(best, elapsed / number)
    return best


@dataclass(frozen=True)
class SweepRow:
    """One point of a cost-vs-size series."""

    size: int
    raw_ns: float
    prometheus_ns: float

    @property
    def ratio(self) -> float:
        return self.prometheus_ns / self.raw_ns if self.raw_ns else float("inf")


def format_series(title: str, rows: list[SweepRow]) -> str:
    """Aligned text rendering of one figure's data series."""
    lines = [
        title,
        f"{'size':>10} {'raw ns/op':>14} {'prometheus ns/op':>18} {'ratio':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.size:>10} {row.raw_ns:>14.0f} {row.prometheus_ns:>18.0f} "
            f"{row.ratio:>8.2f}"
        )
    return "\n".join(lines)


def ratio_growth(rows: list[SweepRow]) -> float:
    """Last/first overhead ratio — ~1 means constant cost increase."""
    if len(rows) < 2 or rows[0].ratio == 0:
        return 1.0
    return rows[-1].ratio / rows[0].ratio


# ---------------------------------------------------------------------------
# common scaffolding
# ---------------------------------------------------------------------------

def _temp_store() -> tuple[ObjectStore, str]:
    fd, path = tempfile.mkstemp(suffix=".plog")
    os.close(fd)
    os.remove(path)
    return ObjectStore(path, cache_size=8192), path


def _node_schema(store: ObjectStore | None) -> Schema:
    """A minimal node + link schema used by the sweeps."""
    schema = Schema(store, name="bench")
    schema.define_class(
        "Node",
        [Attribute("label", T.STRING), Attribute("value", T.INTEGER)],
    )
    schema.define_relationship(
        "Link",
        "Node",
        "Node",
        semantics=RelationshipSemantics(kind=RelKind.ASSOCIATION),
        attributes=[Attribute("weight", T.INTEGER)],
    )
    schema.define_relationship(
        "Owns",
        "Node",
        "Node",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, shareable=True
        ),
    )
    return schema


# ---------------------------------------------------------------------------
# Figure 44 — T5: constant increase in cost
# ---------------------------------------------------------------------------

def sweep_t5(sizes: list[int], ops_per_point: int = 200) -> list[SweepRow]:
    """Relationship creation vs raw record write, across DB sizes.

    Both sides time a full *batch-plus-commit*: ``ops_per_point`` edge
    creations followed by one commit, reported per operation.  The raw
    side writes equivalent records straight to the store; the Prometheus
    side goes through ``relate()`` with all semantic checks, indexing and
    events, then persists at commit.
    """
    rows: list[SweepRow] = []
    for size in sizes:
        # Raw baseline.
        store, path = _temp_store()
        try:
            with store.begin() as txn:
                for index in range(size):
                    txn.write(
                        store.new_oid(), {"label": f"n{index}", "value": index}
                    )
            counter = iter(range(10**9))

            def raw_batch() -> None:
                with store.begin() as txn:
                    for _ in range(ops_per_point):
                        txn.write(
                            store.new_oid(),
                            {
                                "o": next(counter) % size + 1,
                                "d": 1,
                                "weight": 1,
                            },
                        )

            raw_ns = measure(raw_batch, number=1, repeat=3) / ops_per_point
        finally:
            store.close()
            os.remove(path)

        # Prometheus: full relate() through the model layers.
        store, path = _temp_store()
        try:
            schema = _node_schema(store)
            nodes = [
                schema.create("Node", label=f"n{i}", value=i)
                for i in range(size)
            ]
            schema.commit()
            pair = iter(range(10**9))

            def prometheus_batch() -> None:
                for _ in range(ops_per_point):
                    index = next(pair)
                    schema.relate(
                        "Link",
                        nodes[index % size],
                        nodes[(index * 7 + 1) % size],
                        weight=1,
                    )
                schema.commit()

            prom_ns = (
                measure(prometheus_batch, number=1, repeat=3) / ops_per_point
            )
        finally:
            store.close()
            os.remove(path)
        rows.append(SweepRow(size=size, raw_ns=raw_ns, prometheus_ns=prom_ns))
    return rows


# ---------------------------------------------------------------------------
# Figure 45 — S1: non-constant increase in cost (classification placement)
# ---------------------------------------------------------------------------

def sweep_s1(sizes: list[int], ops_per_point: int = 50) -> list[SweepRow]:
    """Classified placement vs bare relate, as the classification grows."""
    from ..classification import ClassificationManager

    rows: list[SweepRow] = []
    for size in sizes:
        schema = _node_schema(None)
        nodes = [
            schema.create("Node", label=f"n{i}", value=i)
            for i in range(size + ops_per_point * 4 + 2)
        ]
        root = nodes[0]

        def raw_op_factory() -> Callable[[], None]:
            counter = iter(range(1, 10**9))

            def op() -> None:
                schema.relate("Owns", root, nodes[next(counter)])

            return op

        raw_ns = measure(raw_op_factory(), number=ops_per_point, repeat=3)

        manager = ClassificationManager(schema)
        classification = manager.create(f"c{size}")
        # Pre-grow the classification to `size` placements.
        offset = ops_per_point * 3 + 1
        for index in range(size):
            classification.place("Owns", root, nodes[offset + index])

        counter2 = iter(range(1, 10**9))
        tail = offset + size

        def prometheus_op() -> None:
            classification.place("Owns", root, nodes[tail + next(counter2) % (ops_per_point)])

        # Each op adds a unique child; restrict count to available nodes.
        prom_ns = measure(prometheus_op, number=ops_per_point, repeat=1)
        rows.append(SweepRow(size=size, raw_ns=raw_ns, prometheus_ns=prom_ns))
    return rows


# ---------------------------------------------------------------------------
# Figure 46 — S2: non-constant increase in cost (classification comparison)
# ---------------------------------------------------------------------------

def sweep_s2(
    group_counts: list[int], leaves_per_group: int = 4
) -> list[SweepRow]:
    """Synonym discovery vs flat leaf-set intersection, as groups grow."""
    rows: list[SweepRow] = []
    for groups in group_counts:
        schema = _node_schema(None)
        from ..classification import ClassificationManager

        manager = ClassificationManager(schema)
        leaves = [
            schema.create("Node", label=f"leaf{i}", value=i)
            for i in range(groups * leaves_per_group)
        ]
        classifications = []
        for variant in range(2):
            classification = manager.create(f"v{variant}-{groups}")
            for g in range(groups):
                parent = schema.create("Node", label=f"g{variant}.{g}", value=g)
                start = (g * leaves_per_group + variant) % len(leaves)
                for offset in range(leaves_per_group):
                    leaf = leaves[(start + offset) % len(leaves)]
                    classification.place("Owns", parent, leaf)
            classifications.append(classification)
        a, b = classifications

        leaf_sets = (
            {l.oid for l in a.leaves()},
            {l.oid for l in b.leaves()},
        )

        def raw_op() -> None:
            _ = leaf_sets[0] & leaf_sets[1]

        raw_ns = measure(raw_op, number=50, repeat=3)

        def prometheus_op() -> None:
            compare_classifications(a, b)

        prom_ns = measure(prometheus_op, number=3, repeat=2)
        rows.append(SweepRow(size=groups, raw_ns=raw_ns, prometheus_ns=prom_ns))
    return rows
