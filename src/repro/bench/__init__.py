"""Benchmark substrate for the performance evaluation (thesis §7.2).

* :mod:`repro.bench.oo7` — the OO7-inspired schema and database builder.
* :mod:`repro.bench.workload` — traversals, queries and structural
  modifications over it.
* :mod:`repro.bench.harness` — timing, sweeps and the Figure 44–46
  series generators.
"""

from .harness import (
    SweepRow,
    format_series,
    measure,
    ratio_growth,
    sweep_s1,
    sweep_s2,
    sweep_t5,
)
from .oo7 import OO7Config, OO7Handles, build_oo7, define_oo7_schema
from .workload import (
    delete_composite,
    insert_composite,
    query_exact,
    query_range,
    query_scan,
    traverse_t1,
    traverse_t2,
    traverse_t6,
)

__all__ = [
    "OO7Config",
    "OO7Handles",
    "SweepRow",
    "build_oo7",
    "define_oo7_schema",
    "delete_composite",
    "format_series",
    "insert_composite",
    "measure",
    "query_exact",
    "query_range",
    "query_scan",
    "ratio_growth",
    "sweep_s1",
    "sweep_s2",
    "sweep_t5",
    "traverse_t1",
    "traverse_t2",
    "traverse_t6",
]
