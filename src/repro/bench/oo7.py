"""The OO7-inspired benchmark database (thesis §7.2.1.1, Figures 41–43).

The thesis evaluates Prometheus with a benchmark *inspired by* OO7
[Carey '93]: the classic module → assembly hierarchy → composite parts →
atomic-part graphs schema, rebuilt with Prometheus relationship classes
so that every OO7 reference exercises the relationship machinery whose
cost is being measured.

Scale parameters follow OO7's *small* configuration, scaled down by
default (``tiny``) so tests run quickly; benchmarks use ``small`` or
explicit sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.attributes import Attribute
from ..core.instances import PObject
from ..core.schema import Schema
from ..core.semantics import Cardinality, RelationshipSemantics, RelKind
from ..core import types as T

# -- class names ------------------------------------------------------------

DESIGN_OBJ = "DesignObj"
ATOMIC_PART = "AtomicPart"
COMPOSITE_PART = "CompositePart"
DOCUMENT = "Document"
ASSEMBLY = "Assembly"
BASE_ASSEMBLY = "BaseAssembly"
COMPLEX_ASSEMBLY = "ComplexAssembly"
MODULE = "Module"

CONNECTS = "Connects"
COMPONENT_PRIVATE = "ComponentPrivate"
ROOT_PART = "RootPart"
DOCUMENTATION = "Documentation"
SUB_ASSEMBLY = "SubAssembly"
COMPONENT_SHARED = "ComponentShared"
MODULE_ROOT = "ModuleRoot"


@dataclass(frozen=True)
class OO7Config:
    """Benchmark scale parameters (names follow the OO7 paper)."""

    num_atomic_per_comp: int = 20
    num_conn_per_atomic: int = 3
    num_comp_per_module: int = 50
    num_assm_levels: int = 4
    num_assm_per_assm: int = 3
    num_comp_per_assm: int = 3
    doc_words: int = 20
    seed: int = 7

    @classmethod
    def tiny(cls) -> "OO7Config":
        return cls(
            num_atomic_per_comp=5,
            num_conn_per_atomic=2,
            num_comp_per_module=8,
            num_assm_levels=3,
            num_assm_per_assm=2,
            num_comp_per_assm=2,
            doc_words=5,
        )

    @classmethod
    def small(cls) -> "OO7Config":
        return cls()


@dataclass
class OO7Handles:
    """Handles into a built OO7 database."""

    schema: Schema
    config: OO7Config
    module: PObject
    root_assembly: PObject
    base_assemblies: list[PObject] = field(default_factory=list)
    complex_assemblies: list[PObject] = field(default_factory=list)
    composite_parts: list[PObject] = field(default_factory=list)
    atomic_parts: list[PObject] = field(default_factory=list)
    documents: list[PObject] = field(default_factory=list)

    @property
    def totals(self) -> dict[str, int]:
        return {
            "base_assemblies": len(self.base_assemblies),
            "complex_assemblies": len(self.complex_assemblies),
            "composite_parts": len(self.composite_parts),
            "atomic_parts": len(self.atomic_parts),
            "documents": len(self.documents),
        }


def define_oo7_schema(schema: Schema) -> None:
    """Register the OO7 classes and relationship classes (Figure 43)."""
    schema.define_class(
        DESIGN_OBJ,
        [
            Attribute("ident", T.INTEGER, required=True),
            Attribute("kind", T.STRING),
            Attribute("build_date", T.INTEGER),
        ],
        abstract=True,
        doc="Common OO7 design-object state",
    )
    schema.define_class(
        ATOMIC_PART,
        [
            Attribute("x", T.INTEGER),
            Attribute("y", T.INTEGER),
            Attribute("doc_id", T.INTEGER),
        ],
        superclasses=(DESIGN_OBJ,),
    )
    schema.define_class(COMPOSITE_PART, superclasses=(DESIGN_OBJ,))
    schema.define_class(
        DOCUMENT,
        [
            Attribute("title", T.STRING),
            Attribute("text", T.STRING),
        ],
        superclasses=(DESIGN_OBJ,),
    )
    schema.define_class(ASSEMBLY, superclasses=(DESIGN_OBJ,), abstract=True)
    schema.define_class(BASE_ASSEMBLY, superclasses=(ASSEMBLY,))
    schema.define_class(COMPLEX_ASSEMBLY, superclasses=(ASSEMBLY,))
    schema.define_class(
        MODULE,
        [Attribute("manual", T.STRING)],
        superclasses=(DESIGN_OBJ,),
    )

    schema.define_relationship(
        CONNECTS,
        ATOMIC_PART,
        ATOMIC_PART,
        semantics=RelationshipSemantics(kind=RelKind.ASSOCIATION),
        attributes=[
            Attribute("conn_type", T.STRING),
            Attribute("length", T.INTEGER),
        ],
        doc="Atomic-part graph edges (weighted: type + length)",
    )
    schema.define_relationship(
        COMPONENT_PRIVATE,
        COMPOSITE_PART,
        ATOMIC_PART,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            lifetime_dependent=True,
        ),
        doc="A composite part privately owns its atomic parts",
    )
    schema.define_relationship(
        ROOT_PART,
        COMPOSITE_PART,
        ATOMIC_PART,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            cardinality=Cardinality(max_out=1),
        ),
        doc="Distinguished entry point into the atomic-part graph",
    )
    schema.define_relationship(
        DOCUMENTATION,
        COMPOSITE_PART,
        DOCUMENT,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            lifetime_dependent=True,
            cardinality=Cardinality(max_out=1),
        ),
    )
    schema.define_relationship(
        SUB_ASSEMBLY,
        COMPLEX_ASSEMBLY,
        ASSEMBLY,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, exclusive=True
        ),
        doc="Assembly hierarchy edges",
    )
    schema.define_relationship(
        COMPONENT_SHARED,
        BASE_ASSEMBLY,
        COMPOSITE_PART,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION, shareable=True
        ),
        doc="Base assemblies share composite parts (OO7 'shared')",
    )
    schema.define_relationship(
        MODULE_ROOT,
        MODULE,
        COMPLEX_ASSEMBLY,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            cardinality=Cardinality(max_out=1),
        ),
    )


_WORDS = (
    "design", "assembly", "part", "module", "widget", "fastener",
    "torque", "flange", "bracket", "rivet", "gasket", "manifold",
)


def build_oo7(schema: Schema, config: OO7Config | None = None) -> OO7Handles:
    """Construct one OO7 module per ``config`` (deterministic by seed)."""
    config = config or OO7Config.tiny()
    rng = random.Random(config.seed)
    ident = iter(range(1, 10_000_000))

    module = schema.create(
        MODULE, ident=next(ident), kind="module", manual="Manual text"
    )
    handles = OO7Handles(
        schema=schema,
        config=config,
        module=module,
        root_assembly=module,  # replaced below
    )

    # Composite parts with their private atomic-part graphs.
    for _ in range(config.num_comp_per_module):
        composite = schema.create(
            COMPOSITE_PART,
            ident=next(ident),
            kind="composite",
            build_date=rng.randint(1000, 9999),
        )
        handles.composite_parts.append(composite)
        document = schema.create(
            DOCUMENT,
            ident=next(ident),
            title=f"doc for {composite.get('ident')}",
            text=" ".join(rng.choice(_WORDS) for _ in range(config.doc_words)),
        )
        handles.documents.append(document)
        schema.relate(DOCUMENTATION, composite, document)
        atoms: list[PObject] = []
        for _ in range(config.num_atomic_per_comp):
            atom = schema.create(
                ATOMIC_PART,
                ident=next(ident),
                kind="atomic",
                build_date=rng.randint(1000, 9999),
                x=rng.randint(0, 9999),
                y=rng.randint(0, 9999),
                doc_id=document.get("ident"),
            )
            atoms.append(atom)
            handles.atomic_parts.append(atom)
            schema.relate(COMPONENT_PRIVATE, composite, atom)
        schema.relate(ROOT_PART, composite, atoms[0])
        # Each atomic part connects to num_conn_per_atomic others; the
        # ring-plus-random pattern of OO7 keeps the graph connected.
        count = len(atoms)
        for index, atom in enumerate(atoms):
            targets = {(index + 1) % count}
            while len(targets) < min(config.num_conn_per_atomic, count - 1):
                targets.add(rng.randrange(count))
            targets.discard(index)
            for target in sorted(targets):
                schema.relate(
                    CONNECTS,
                    atom,
                    atoms[target],
                    conn_type=rng.choice(("rigid", "flex")),
                    length=rng.randint(1, 1000),
                )

    # Assembly hierarchy: a complete tree of complex assemblies with base
    # assemblies at the leaves, each referencing composite parts.
    def build_assembly(level: int) -> PObject:
        if level < config.num_assm_levels:
            assembly = schema.create(
                COMPLEX_ASSEMBLY, ident=next(ident), kind="complex"
            )
            handles.complex_assemblies.append(assembly)
            for _ in range(config.num_assm_per_assm):
                child = build_assembly(level + 1)
                schema.relate(SUB_ASSEMBLY, assembly, child)
            return assembly
        base = schema.create(BASE_ASSEMBLY, ident=next(ident), kind="base")
        handles.base_assemblies.append(base)
        for _ in range(config.num_comp_per_assm):
            composite = rng.choice(handles.composite_parts)
            schema.relate(COMPONENT_SHARED, base, composite)
        return base

    root = build_assembly(1)
    handles.root_assembly = root
    schema.relate(MODULE_ROOT, module, root)
    return handles
