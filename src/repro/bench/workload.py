"""OO7-inspired benchmark operations (thesis §7.2.1.2).

Three families, mirroring the evaluation's structure:

* **raw performance** (§7.2.1.2.1) — traversals over the design
  hierarchy and atomic-part graphs, hot and cold, read-only and
  updating;
* **queries** (§7.2.1.2.2) — exact-match, range and scan queries,
  expressible both through POOL and as direct API calls;
* **structural modifications** (§7.2.1.2.3) — inserting and deleting
  composite parts (with their private graphs) under full semantics
  enforcement.

Each operation returns a small result (visit count, match count) so
benchmarks can assert correctness while timing.
"""

from __future__ import annotations

import random

from ..core.instances import PObject
from ..core.schema import Schema
from .oo7 import (
    ATOMIC_PART,
    COMPONENT_PRIVATE,
    COMPONENT_SHARED,
    CONNECTS,
    DOCUMENT,
    DOCUMENTATION,
    MODULE_ROOT,
    OO7Handles,
    ROOT_PART,
    SUB_ASSEMBLY,
)

# ---------------------------------------------------------------------------
# traversals (T1, T2, T6 analogues)
# ---------------------------------------------------------------------------

def traverse_t1(handles: OO7Handles) -> int:
    """OO7 T1: full traversal.

    Walk the assembly hierarchy from the module root; at each base
    assembly visit its composite parts; for each composite part perform a
    depth-first search of the atomic-part graph.  Returns the number of
    atomic-part visits.
    """
    schema = handles.schema
    visits = 0
    for root in handles.module.related(MODULE_ROOT):
        stack = [root]
        while stack:
            assembly = stack.pop()
            children = assembly.related(SUB_ASSEMBLY)
            if children:
                stack.extend(children)
                continue
            for composite in assembly.related(COMPONENT_SHARED):
                visits += _dfs_atomic(schema, composite)
    return visits


def _dfs_atomic(schema: Schema, composite: PObject) -> int:
    roots = composite.related(ROOT_PART)
    if not roots:
        return 0
    visits = 0
    seen: set[int] = set()
    stack = [roots[0]]
    while stack:
        atom = stack.pop()
        if atom.oid in seen:
            continue
        seen.add(atom.oid)
        visits += 1
        stack.extend(atom.related(CONNECTS))
    return visits


def traverse_t2(handles: OO7Handles, variant: str = "a") -> int:
    """OO7 T2: traversal with updates.

    Variant ``a`` updates one atomic part per composite part, ``b``
    updates every atomic part once, ``c`` updates every atomic part four
    times.  Returns the number of updates performed.
    """
    repeat = {"a": 1, "b": 1, "c": 4}[variant]
    updates = 0
    for composite in handles.composite_parts:
        atoms = composite.related(COMPONENT_PRIVATE)
        targets = atoms[:1] if variant == "a" else atoms
        for atom in targets:
            for _ in range(repeat):
                x, y = atom.get("x"), atom.get("y")
                atom.set("x", y)
                atom.set("y", x)
                updates += 1
    return updates


def traverse_t6(handles: OO7Handles) -> int:
    """OO7 T6: sparse traversal — visit only the root atomic part of each
    composite part reachable from the assembly hierarchy."""
    visits = 0
    stack = list(handles.module.related(MODULE_ROOT))
    while stack:
        assembly = stack.pop()
        children = assembly.related(SUB_ASSEMBLY)
        if children:
            stack.extend(children)
            continue
        for composite in assembly.related(COMPONENT_SHARED):
            visits += len(composite.related(ROOT_PART))
    return visits


# ---------------------------------------------------------------------------
# queries (Q1, Q2/Q3, Q7 analogues)
# ---------------------------------------------------------------------------

def query_exact(handles: OO7Handles, idents: list[int]) -> int:
    """OO7 Q1: exact-match lookups of atomic parts by ident."""
    wanted = set(idents)
    return sum(
        1
        for atom in handles.schema.extent(ATOMIC_PART)
        if atom.get("ident") in wanted
    )


def query_range(handles: OO7Handles, low: int, high: int) -> int:
    """OO7 Q2/Q3: range query over atomic-part build dates."""
    return sum(
        1
        for atom in handles.schema.extent(ATOMIC_PART)
        if low <= (atom.get("build_date") or 0) <= high
    )


def query_scan(handles: OO7Handles) -> int:
    """OO7 Q7: full scan of atomic parts."""
    return sum(1 for _ in handles.schema.extent(ATOMIC_PART))


def pool_query_exact(db: "object", ident: int) -> int:
    """Q1 through POOL (with index fast path when one is declared)."""
    result = db.query(  # type: ignore[attr-defined]
        "select a from a in AtomicPart where a.ident = $i", params={"i": ident}
    )
    return len(result)


# ---------------------------------------------------------------------------
# structural modifications (§7.2.1.2.3)
# ---------------------------------------------------------------------------

def insert_composite(
    handles: OO7Handles, ident_base: int, rng: random.Random | None = None
) -> PObject:
    """Insert one composite part with its private atomic-part graph and
    attach it to a random base assembly — the OO7 insert."""
    rng = rng or random.Random(ident_base)
    schema = handles.schema
    config = handles.config
    composite = schema.create(
        "CompositePart", ident=ident_base, kind="composite",
        build_date=rng.randint(1000, 9999),
    )
    document = schema.create(
        DOCUMENT, ident=ident_base + 1, title="new doc", text="insert"
    )
    schema.relate(DOCUMENTATION, composite, document)
    atoms = []
    for offset in range(config.num_atomic_per_comp):
        atom = schema.create(
            ATOMIC_PART,
            ident=ident_base + 2 + offset,
            x=rng.randint(0, 9999),
            y=rng.randint(0, 9999),
            build_date=rng.randint(1000, 9999),
        )
        atoms.append(atom)
        schema.relate(COMPONENT_PRIVATE, composite, atom)
    schema.relate(ROOT_PART, composite, atoms[0])
    for index, atom in enumerate(atoms[:-1]):
        schema.relate(CONNECTS, atom, atoms[index + 1], length=1)
    if handles.base_assemblies:
        base = rng.choice(handles.base_assemblies)
        schema.relate(COMPONENT_SHARED, base, composite)
    handles.composite_parts.append(composite)
    handles.atomic_parts.extend(atoms)
    handles.documents.append(document)
    return composite


def delete_composite(handles: OO7Handles, composite: PObject) -> int:
    """Delete a composite part; lifetime dependency cascades to its
    private atomic parts and document — the OO7 delete.  Returns the
    number of objects removed."""
    schema = handles.schema
    doomed = 1
    doomed += len(composite.related(COMPONENT_PRIVATE))
    doomed += len(composite.related(DOCUMENTATION))
    schema.delete(composite, cascade=True)
    handles.composite_parts = [
        c for c in handles.composite_parts if not c.deleted
    ]
    handles.atomic_parts = [a for a in handles.atomic_parts if not a.deleted]
    handles.documents = [d for d in handles.documents if not d.deleted]
    return doomed
