"""Cross-layer telemetry: metrics registry, tracer, slow-query log.

The thesis architecture is layered (events → objects → views/indexes →
query → rules → HTTP); this package makes every layer observable without
wiring any layer into another.  One :class:`Telemetry` facade bundles

* a :class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
  histograms with p50/p95/p99, scrape-time collectors),
* a :class:`~repro.telemetry.tracing.Tracer` (nested spans), and
* a bounded **slow-query log**,

and is threaded through the engine by :class:`~repro.engine.database.
PrometheusDB`.  The HTTP layer exposes it as ``GET /metrics``
(Prometheus text format) and ``GET /stats`` (JSON).

Every instrumentation hook in the database follows the discipline::

    tel = self._telemetry
    if tel.enabled:
        ...record...

so a disabled facade costs one attribute load and one branch per hook
(``benchmarks/bench_telemetry_overhead.py`` keeps this honest).
Components default to the shared :data:`DISABLED` facade, which is
permanently off — enabling telemetry is always an explicit act of
wiring a live facade in.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Any

from . import propagation
from .events import EventJournal
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .propagation import (
    TRACEPARENT_HEADER,
    TraceBuffer,
    TraceContext,
    format_traceparent,
    new_context,
    parse_traceparent,
)
from .tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "Telemetry",
    "DISABLED",
    "EventJournal",
    "TraceBuffer",
    "TraceContext",
    "TRACEPARENT_HEADER",
    "new_context",
    "parse_traceparent",
    "format_traceparent",
    "propagation",
]

_slow_logger = logging.getLogger("repro.query.slow")


class Telemetry:
    """Registry + tracer + slow-query log behind one enabled flag.

    ``enabled`` is a plain bool attribute (the hot-path contract);
    :meth:`enable` / :meth:`disable` flip the facade and both halves
    together.  ``slow_query_ms`` turns on the slow-query log: queries
    slower than the threshold are appended to a bounded ring and logged
    through the ``repro.query.slow`` stdlib logger at WARNING.
    """

    def __init__(
        self,
        enabled: bool = True,
        slow_query_ms: float | None = None,
        slow_query_keep: int = 100,
        trace_keep: int = 512,
        event_keep: int = 1024,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.traces = TraceBuffer(keep=trace_keep)
        self.tracer.buffer = self.traces
        self.events = EventJournal(keep=event_keep)
        self.slow_query_ms = slow_query_ms
        self.slow_queries: deque[dict[str, Any]] = deque(maxlen=slow_query_keep)
        self.created_at = time.time()

    def set_node(self, node: str) -> "Telemetry":
        """Stamp a node name into span records and journal entries."""
        self.traces.node = node
        self.events.node = node
        return self

    # -- switches -----------------------------------------------------------

    def enable(self) -> "Telemetry":
        self.enabled = True
        self.registry.enabled = True
        self.tracer.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        self.registry.enabled = False
        self.tracer.enabled = False
        return self

    # -- slow-query log -----------------------------------------------------

    def record_query(self, text: str, elapsed_ms: float, rows: int) -> None:
        """Feed one finished query; kept only if over the threshold.

        Called by the query layer regardless of ``enabled`` *only when*
        ``slow_query_ms`` is set, so the off-path stays one branch.
        """
        threshold = self.slow_query_ms
        if threshold is None or elapsed_ms < threshold:
            return
        ctx = propagation.current()
        entry = {
            "query": text if len(text) <= 500 else text[:497] + "...",
            "elapsed_ms": round(elapsed_ms, 3),
            "rows": rows,
            "at": time.time(),
            "trace_id": ctx.trace_id if ctx is not None else None,
        }
        self.slow_queries.append(entry)
        _slow_logger.warning(
            "slow query (%.1f ms, %d rows, trace=%s): %s",
            elapsed_ms,
            rows,
            entry["trace_id"],
            entry["query"],
        )

    # -- snapshots ----------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.time() - self.created_at

    def snapshot(self) -> dict[str, Any]:
        """The JSON body of ``GET /stats``."""
        return {
            "enabled": self.enabled,
            "uptime_s": round(self.uptime_s, 3),
            "metrics": self.registry.snapshot(),
            "recent_traces": self.tracer.snapshot(),
            "slow_queries": list(self.slow_queries),
            "slow_query_ms": self.slow_query_ms,
        }

    def summary(self) -> dict[str, Any]:
        """A compact roll-up for ``/health``: totals only, no series."""
        snap = self.registry.snapshot()
        totals = {
            name: value
            for name, value in snap.items()
            if isinstance(value, (int, float)) and name.endswith("_total")
        }
        return {
            "enabled": self.enabled,
            "uptime_s": round(self.uptime_s, 3),
            "counters": totals,
            "slow_queries": len(self.slow_queries),
        }


#: Shared permanently-disabled facade: the default wiring target for
#: every instrumented component, so hooks never need a None check.
DISABLED = Telemetry(enabled=False)
