"""W3C ``traceparent``-style trace-context propagation.

One trace — a client query fanning out through the federation, a
replication pull long-polling the primary, a supervisor probe — crosses
several processes.  This module carries the identity of that trace
across each HTTP hop in the Dapper/OpenTelemetry style:

* a :class:`TraceContext` is ``(trace_id, span_id, sampled)``;
* :func:`format_traceparent` / :func:`parse_traceparent` read and write
  the ``00-<32 hex>-<16 hex>-<2 hex flags>`` wire header;
* a per-thread **context stack** (:func:`push` / :func:`pop` /
  :func:`current` / :func:`activate`) makes the active context visible
  to the tracer without threading it through every call signature;
* a :class:`TraceBuffer` is the bounded per-node ring of finished span
  records that ``GET /trace/<trace_id>`` serves.

The propagation layer is deliberately independent of the
:class:`~repro.telemetry.Telemetry` enabled flag: pushing a context is
two list operations, and a node with telemetry disabled still forwards
the header so downstream nodes can trace their share of the work.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "TraceBuffer",
    "new_context",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
    "format_traceparent",
    "current",
    "push",
    "pop",
    "activate",
]

#: Canonical header name (HTTP header names are case-insensitive).
TRACEPARENT_HEADER = "traceparent"

_VERSION = "00"
_HEX = set("0123456789abcdef")


class TraceContext:
    """One position in a trace: the trace and the span that owns it."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id[:8]}…, {self.span_id})"

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }


def _rng() -> "random.Random":
    """Per-thread PRNG seeded once from the OS.

    Ids are generated on the query hot path (every root span needs
    one); two ``os.urandom`` syscalls per span are measurably slower
    than ``getrandbits`` and ids only need uniqueness, not secrecy.
    """
    rng = getattr(_local, "rng", None)
    if rng is None:
        rng = random.Random(
            int.from_bytes(os.urandom(16), "big") ^ threading.get_ident()
        )
        _local.rng = rng
    return rng


def new_trace_id() -> str:
    return f"{_rng().getrandbits(128) or 1:032x}"


def new_span_id() -> str:
    return f"{_rng().getrandbits(64) or 1:016x}"


def new_context(sampled: bool = True) -> TraceContext:
    """A fresh root context (new trace, new span)."""
    return TraceContext(new_trace_id(), new_span_id(), sampled)


def format_traceparent(ctx: TraceContext) -> str:
    flags = "01" if ctx.sampled else "00"
    return f"{_VERSION}-{ctx.trace_id}-{ctx.span_id}-{flags}"


def _is_hex(value: str) -> bool:
    return bool(value) and all(ch in _HEX for ch in value)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    Per the W3C spec an all-zero trace or span id is invalid, and an
    unknown version is accepted as long as the first four fields parse.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[:4]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or trace_id == "0" * 32:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) or span_id == "0" * 16:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(trace_id, span_id, sampled=bool(int(flags, 16) & 1))


# -- the per-thread context stack -------------------------------------------

_local = threading.local()


def _stack() -> list[TraceContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current() -> TraceContext | None:
    """The active context on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def push(ctx: TraceContext) -> None:
    _stack().append(ctx)


def pop(ctx: TraceContext) -> None:
    """Remove ``ctx`` (tolerating out-of-order exits, like the tracer)."""
    stack = _stack()
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] is ctx:
            del stack[i:]
            return


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """``with activate(ctx): ...`` — scoped :func:`push` / :func:`pop`."""
    if ctx is None:
        yield None
        return
    push(ctx)
    try:
        yield ctx
    finally:
        pop(ctx)


# -- the per-node span ring --------------------------------------------------


class TraceBuffer:
    """Bounded ring of finished span records, queryable by trace_id.

    Records are flat dicts (not :class:`~repro.telemetry.tracing.Span`
    objects) so ``GET /trace/<id>`` can serve them directly and a span
    record survives its tree being garbage collected.  ``node`` is
    stamped into every record so merged cross-node traces stay
    attributable.
    """

    def __init__(self, keep: int = 512, node: str = "") -> None:
        self.node = node
        self._spans: deque[dict[str, Any]] = deque(maxlen=keep)
        self._lock = threading.Lock()

    def record(self, record: dict[str, Any]) -> None:
        record.setdefault("node", self.node)
        with self._lock:
            self._spans.append(record)

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """All retained spans of one trace, oldest first."""
        with self._lock:
            return [dict(r) for r in self._spans if r.get("trace_id") == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently retained, oldest first."""
        seen: dict[str, None] = {}
        with self._lock:
            for record in self._spans:
                seen.setdefault(record.get("trace_id", ""), None)
        return [tid for tid in seen if tid]

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def span_record(
    *,
    trace_id: str,
    span_id: str,
    parent_span_id: str | None,
    name: str,
    duration_ms: float,
    attributes: dict[str, Any],
) -> dict[str, Any]:
    """The canonical shape of one :class:`TraceBuffer` entry."""
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_span_id": parent_span_id,
        "name": name,
        "at": time.time(),
        "duration_ms": round(duration_ms, 4),
        "attributes": attributes,
    }
