"""Structured event journal for HA/replication lifecycle events.

Metrics answer "how much"; traces answer "where did this request go";
the **event journal** answers "what happened to the cluster, in what
order".  Promotions, fences, lease grants and expiries, epoch changes,
replica resets and divergences, breaker transitions — each is one
structured entry stamped with wall time, node name, cluster epoch, LSN
and the active trace id, kept in a bounded ring, appended as one JSON
line to a journal file beside the store, and served by
``GET /events?since=<seq>``.

The journal is wall-clock ordered *per node*; a post-mortem merges the
journals of every node by ``(at, seq)`` to reconstruct a failover
timeline (see ``docs/OBSERVABILITY.md`` for the walkthrough).  ``clock``
and ``node`` are plain attributes so deterministic harnesses (the chaos
tests) can wire virtual clocks in after construction.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from typing import Any

from . import propagation

__all__ = ["EventJournal"]

_logger = logging.getLogger("repro.events")


class EventJournal:
    """Bounded ring + optional JSONL file of cluster lifecycle events."""

    def __init__(
        self,
        path: str | None = None,
        node: str = "",
        keep: int = 1024,
        clock=time.time,
    ) -> None:
        self.path = path
        self.node = node
        self.clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=keep)
        self._lock = threading.Lock()
        self._seq = 0

    def record(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        lsn: int | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Append one event; returns the entry (with its ``seq``).

        ``kind`` is dotted (``ha.promote``, ``replication.diverged``,
        ``federation.breaker``); extra keyword fields ride along
        verbatim.  The active trace context, if any, is stamped in so a
        failover triggered mid-request correlates with its trace.
        """
        ctx = propagation.current()
        with self._lock:
            self._seq += 1
            entry: dict[str, Any] = {
                "seq": self._seq,
                "at": self.clock(),
                "node": self.node,
                "kind": kind,
                "epoch": epoch,
                "lsn": lsn,
                "trace_id": ctx.trace_id if ctx is not None else None,
            }
            entry.update(fields)
            self._ring.append(entry)
            path = self.path
            if path is not None:
                try:
                    with open(path, "a", encoding="utf-8") as fh:
                        fh.write(json.dumps(entry, default=str) + "\n")
                except OSError:  # pragma: no cover - journal is best-effort
                    _logger.warning("event journal write failed: %s", path)
        _logger.info(
            "%s node=%s epoch=%s lsn=%s", kind, self.node, epoch, lsn
        )
        return entry

    # -- reading -------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def events(self, since: int = 0) -> list[dict[str, Any]]:
        """Entries with ``seq > since``, oldest first (the ``?since=``
        cursor of ``GET /events``)."""
        with self._lock:
            return [dict(e) for e in self._ring if e["seq"] > since]

    def tail(self, n: int = 20) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in list(self._ring)[-n:]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
