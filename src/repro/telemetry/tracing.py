"""Span-based tracer: the structural half of the telemetry layer.

A :class:`Span` is one timed region of work with a name, attributes and
parent/child nesting; a :class:`Tracer` hands out spans through a
context-manager API and keeps the nesting per thread::

    with tracer.span("query.select", clause="where") as span:
        ...
        span.set("rows", len(result))

Finished *root* spans (with their whole subtree) are retained in a
bounded ring so ``/stats`` and PROFILE reports can show recent
structure.  A disabled tracer hands out one shared no-op span: the cost
of an instrumentation point is then a single attribute load and branch,
matching the discipline of :mod:`repro.telemetry.metrics`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from . import propagation
from .propagation import TraceContext

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region.  Durations are monotonic, reported in ms.

    Every span handed out by an enabled tracer carries a **trace
    identity**: a 32-hex ``trace_id`` shared by the whole (possibly
    cross-process) trace, its own 16-hex ``span_id``, and the
    ``parent_span_id`` it hangs under — which may belong to a span on
    another node when the trace arrived over HTTP.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "parent",
        "start_ns",
        "end_ns",
        "_tracer",
        "trace_id",
        "span_id",
        "parent_span_id",
        "_ctx",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer | None" = None,
        parent: "Span | None" = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.parent = parent
        self.start_ns = 0
        self.end_ns = 0
        self._tracer = tracer
        self.trace_id = ""
        self.span_id = ""
        self.parent_span_id: str | None = None
        self._ctx: TraceContext | None = None

    @property
    def duration_ms(self) -> float:
        if not self.end_ns:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        self.end_ns = time.perf_counter_ns()
        if self._tracer is not None:
            self._tracer._finish(self)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
        return out


class _NullSpan(Span):
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("disabled")

    def set(self, key: str, value: Any) -> None:  # noqa: D102
        pass

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-thread span stack plus a bounded ring of finished roots.

    When a span opens it derives its trace identity from, in order: the
    enclosing open span on this thread, the active
    :mod:`~repro.telemetry.propagation` context (a remote parent that
    arrived by ``traceparent`` header, or a captured context attached
    after a thread hop), or — as a last resort — a freshly minted trace.
    Each open span also publishes its own context on the propagation
    stack, so outbound HTTP made under it is stamped with *its* span id
    and the downstream node's spans hang directly beneath it.
    """

    def __init__(self, enabled: bool = True, keep: int = 64) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._finished: deque[Span] = deque(maxlen=keep)
        self._lock = threading.Lock()
        #: Optional :class:`~repro.telemetry.propagation.TraceBuffer`
        #: every finished span is recorded into (set by ``Telemetry``).
        self.buffer = None

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """A new child of the current span (or a new root).

        The span only starts timing when entered, so it can be created
        and decorated before the timed region begins.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, tracer=self, parent=parent, attributes=attributes)
        if parent is not None:
            parent.children.append(span)
            span.trace_id = parent.trace_id
            span.parent_span_id = parent.span_id or None
        else:
            ctx = propagation.current()
            if ctx is not None:
                span.trace_id = ctx.trace_id
                span.parent_span_id = ctx.span_id
            else:
                span.trace_id = propagation.new_trace_id()
        span.span_id = propagation.new_span_id()
        span._ctx = TraceContext(span.trace_id, span.span_id)
        propagation.push(span._ctx)
        stack.append(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Exits normally come in LIFO order, but be tolerant of a span
        # exited out of order (generator-held spans): unwind to it.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span._ctx is not None:
            propagation.pop(span._ctx)
        buffer = self.buffer
        if buffer is not None and span.trace_id:
            buffer.record(
                propagation.span_record(
                    trace_id=span.trace_id,
                    span_id=span.span_id,
                    parent_span_id=span.parent_span_id,
                    name=span.name,
                    duration_ms=span.duration_ms,
                    attributes=dict(span.attributes),
                )
            )
        if span.parent is None:
            with self._lock:
                self._finished.append(span)

    # -- cross-thread handoff -----------------------------------------------

    def capture(self) -> TraceContext | None:
        """Snapshot the caller's trace position for a thread hop.

        The per-thread span stack does not follow work onto executor or
        daemon threads; without a handoff, spans opened there become
        orphan roots with fresh trace ids.  Capture on the submitting
        thread, then :meth:`attach` inside the worker::

            handle = tracer.capture()
            executor.submit(lambda: run_with(handle))

            def run_with(handle):
                with tracer.attach(handle):
                    ...  # spans here join the captured trace
        """
        if self.enabled:
            stack = self._stack()
            if stack and stack[-1]._ctx is not None:
                return stack[-1]._ctx
        return propagation.current()

    @contextmanager
    def attach(self, handle: TraceContext | None) -> Iterator[None]:
        """Adopt a captured context on this (worker) thread.

        Spans opened inside the ``with`` become children of the captured
        span through the propagation fallback in :meth:`span`; outbound
        HTTP under it carries the captured trace.  A ``None`` handle is
        a no-op, so call sites never need their own guard.
        """
        if handle is None:
            yield
            return
        propagation.push(handle)
        try:
            yield
        finally:
            propagation.pop(handle)

    # -- inspection ---------------------------------------------------------

    def finished_roots(self) -> list[Span]:
        """Recent finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def snapshot(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.finished_roots()]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
