"""Span-based tracer: the structural half of the telemetry layer.

A :class:`Span` is one timed region of work with a name, attributes and
parent/child nesting; a :class:`Tracer` hands out spans through a
context-manager API and keeps the nesting per thread::

    with tracer.span("query.select", clause="where") as span:
        ...
        span.set("rows", len(result))

Finished *root* spans (with their whole subtree) are retained in a
bounded ring so ``/stats`` and PROFILE reports can show recent
structure.  A disabled tracer hands out one shared no-op span: the cost
of an instrumentation point is then a single attribute load and branch,
matching the discipline of :mod:`repro.telemetry.metrics`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region.  Durations are monotonic, reported in ms."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "parent",
        "start_ns",
        "end_ns",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer | None" = None,
        parent: "Span | None" = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.parent = parent
        self.start_ns = 0
        self.end_ns = 0
        self._tracer = tracer

    @property
    def duration_ms(self) -> float:
        if not self.end_ns:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        self.end_ns = time.perf_counter_ns()
        if self._tracer is not None:
            self._tracer._finish(self)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class _NullSpan(Span):
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("disabled")

    def set(self, key: str, value: Any) -> None:  # noqa: D102
        pass

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-thread span stack plus a bounded ring of finished roots."""

    def __init__(self, enabled: bool = True, keep: int = 64) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._finished: deque[Span] = deque(maxlen=keep)
        self._lock = threading.Lock()

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """A new child of the current span (or a new root).

        The span only starts timing when entered, so it can be created
        and decorated before the timed region begins.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, tracer=self, parent=parent, attributes=attributes)
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Exits normally come in LIFO order, but be tolerant of a span
        # exited out of order (generator-held spans): unwind to it.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span.parent is None:
            with self._lock:
                self._finished.append(span)

    # -- inspection ---------------------------------------------------------

    def finished_roots(self) -> list[Span]:
        """Recent finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def snapshot(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.finished_roots()]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
