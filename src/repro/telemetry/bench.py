"""Machine-readable benchmark results, emitted through the registry.

Every benchmark run should leave a ``BENCH_<name>.json`` artefact behind
so the perf trajectory accumulates across PRs instead of evaporating
with the terminal scrollback.  A :class:`BenchRecorder` owns one
:class:`~repro.telemetry.metrics.MetricsRegistry`; numeric fields of
every recorded result are mirrored into the registry as labelled
gauges, and the JSON file carries both the per-test results and the
registry snapshot::

    {
      "benchmark": "bench_oo7_queries",
      "created": 1754500000.0,
      "results": {"test_q1_exact_match_pool_indexed": {"mean_ns": ...}},
      "series": {"fig44_t5": [{"size": 100, "raw_ns": ...}, ...]},
      "metrics": {"bench_mean_ns": {"test=...": ...}}
    }

``benchmarks/conftest.py`` wires a recorder per benchmark module and
captures pytest-benchmark stats automatically; sweep-style benchmarks
call :meth:`record_series` with their row data.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Mapping

from .metrics import MetricsRegistry

__all__ = ["BenchRecorder"]


class BenchRecorder:
    """Accumulates one benchmark module's results, then writes JSON."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.registry = MetricsRegistry(enabled=True, namespace="bench")
        self.results: dict[str, dict[str, Any]] = {}
        self.series: dict[str, list[dict[str, Any]]] = {}
        self.meta: dict[str, Any] = {}

    def record(self, test: str, **fields: Any) -> None:
        """Record one test's measurements (numbers become gauges)."""
        entry = self.results.setdefault(test, {})
        entry.update(fields)
        for key, value in fields.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.registry.gauge(
                f"bench_{key}", {"test": test}
            ).set(value)

    def record_series(
        self, series_name: str, rows: list[Mapping[str, Any]]
    ) -> None:
        """Record a sweep (size vs cost) as an ordered list of points."""
        points = [dict(row) for row in rows]
        self.series[series_name] = points
        for point in points:
            label = str(point.get("size", point.get("x", len(points))))
            for key, value in point.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                self.registry.gauge(
                    f"bench_{series_name}_{key}", {"point": label}
                ).set(value)

    def as_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.name,
            "created": time.time(),
            "meta": dict(self.meta),
            "results": {k: dict(v) for k, v in self.results.items()},
            "series": {k: list(v) for k, v in self.series.items()},
            "metrics": self.registry.snapshot(),
        }

    def write(self, directory: str | os.PathLike[str]) -> str:
        """Write ``BENCH_<name>.json`` under ``directory``; return path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(os.fspath(directory), f"BENCH_{self.name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path
