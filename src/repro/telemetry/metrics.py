"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of the telemetry layer (the tracer in
:mod:`repro.telemetry.tracing` is the structural half).  Three metric
kinds, all process-local and lock-free on the hot path (CPython attribute
assignment is atomic, and the store layers above already serialise
writers):

* :class:`Counter` — a monotonically increasing count;
* :class:`Gauge` — a value that goes up and down (queue depths);
* :class:`Histogram` — count/sum/min/max plus a bounded reservoir from
  which p50/p95/p99 are computed at *snapshot* time, never on the hot
  path.

Cost discipline
---------------
Instrumentation hooks throughout the database follow one pattern::

    if registry.enabled:
        registry.counter("repro_events_published_total").inc()

A disabled registry therefore costs exactly one attribute load and one
branch per hook — verified by ``benchmarks/bench_telemetry_overhead.py``.
Metric handles may also be cached by the instrumented component so the
enabled path skips the name lookup.

Scrape-time **collectors** let a component expose state it already
counts for free (store op stats, breaker states, queue depths) without
any hot-path hook at all: a collector is a callable run when the
registry is rendered or snapshotted.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
]


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonic counter.  ``inc`` only; never decremented or reset."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "counter"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def render(self) -> Iterable[str]:
        yield f"{self.name}{_format_labels(self.labels)} {_num(self.value)}"

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """A value that can move both ways (queue depth, cache size)."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def render(self) -> Iterable[str]:
        yield f"{self.name}{_format_labels(self.labels)} {_num(self.value)}"

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """Count/sum/min/max plus a bounded reservoir for percentiles.

    ``observe`` appends to a ring buffer of the most recent
    ``reservoir_size`` observations; p50/p95/p99 are computed from that
    window only when the registry is scraped.  The window biases the
    percentiles toward recent behaviour, which is what an operator
    watching a live system wants.
    """

    __slots__ = (
        "name",
        "labels",
        "help",
        "count",
        "sum",
        "min",
        "max",
        "_reservoir",
        "_cursor",
        "_size",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        help: str = "",
        reservoir_size: int = 512,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._cursor = 0
        self._size = reservoir_size

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._size:
            self._reservoir.append(value)
        else:
            self._reservoir[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._size

    def percentiles(self) -> dict[str, float]:
        """p50/p95/p99 over the reservoir window (0.0 when empty)."""
        window = sorted(self._reservoir)
        if not window:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

        def pick(q: float) -> float:
            index = min(len(window) - 1, int(q * (len(window) - 1) + 0.5))
            return window[index]

        return {"p50": pick(0.50), "p95": pick(0.95), "p99": pick(0.99)}

    def render(self) -> Iterable[str]:
        base = self.name
        labels = self.labels
        quantiles = self.percentiles()
        for q, value in (("0.5", quantiles["p50"]),
                         ("0.95", quantiles["p95"]),
                         ("0.99", quantiles["p99"])):
            yield (
                f"{base}{_format_labels(labels + (('quantile', q),))} "
                f"{_num(value)}"
            )
        yield f"{base}_count{_format_labels(labels)} {_num(self.count)}"
        yield f"{base}_sum{_format_labels(labels)} {_num(self.sum)}"

    def snapshot(self) -> Any:
        data: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            data["min"] = self.min
            data["max"] = self.max
            data.update(self.percentiles())
        return data


_Metric = Counter | Gauge | Histogram

#: A scrape-time contributor: called with the registry when it is
#: rendered or snapshotted, free to set gauges/counters from state the
#: component already tracks.
Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """Named metrics plus scrape-time collectors.

    ``enabled`` is a plain attribute so the hot-path check compiles to a
    single attribute load; metric constructors are only reached when it
    is True (or when a collector runs at scrape time, where cost does
    not matter).
    """

    def __init__(self, enabled: bool = True, namespace: str = "repro") -> None:
        self.enabled = enabled
        self.namespace = namespace
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], _Metric] = {}
        self._collectors: list[Collector] = []
        self._lock = threading.Lock()

    # -- metric access ------------------------------------------------------

    def _get(
        self,
        factory: type,
        name: str,
        labels: dict[str, str] | None,
        help: str,
        **kwargs: Any,
    ) -> Any:
        label_items = tuple(sorted((labels or {}).items()))
        key = (name, label_items)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory(name, label_items, help, **kwargs)
                    self._metrics[key] = metric
        if type(metric) is not factory:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, labels: dict[str, str] | None = None, help: str = ""
    ) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: dict[str, str] | None = None, help: str = ""
    ) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        help: str = "",
        reservoir_size: int = 512,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, help, reservoir_size=reservoir_size
        )

    # -- collectors ---------------------------------------------------------

    def add_collector(self, collector: Collector) -> Callable[[], None]:
        """Register a scrape-time contributor; returns a remover."""
        self._collectors.append(collector)

        def remove() -> None:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

        return remove

    def _run_collectors(self) -> None:
        for collector in list(self._collectors):
            try:
                collector(self)
            except Exception:  # pragma: no cover - defensive: a broken
                pass           # collector must not take down the scrape

    # -- exposition ---------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self._run_collectors()
        lines: list[str] = []
        seen_help: set[str] = set()
        for key in sorted(self._metrics, key=lambda k: (k[0], k[1])):
            metric = self._metrics[key]
            if metric.name not in seen_help:
                seen_help.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                kind = "summary" if metric.kind == "histogram" else metric.kind
                lines.append(f"# TYPE {metric.name} {kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe nested snapshot: name -> (value | {labels: value})."""
        self._run_collectors()
        out: dict[str, Any] = {}
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            value = metric.snapshot()
            if not labels:
                out[name] = value
            else:
                label_key = ",".join(f"{k}={v}" for k, v in labels)
                out.setdefault(name, {})[label_key] = value
        return out

    def reset(self) -> None:
        """Drop all metrics (collectors are kept).  Test/bench helper."""
        with self._lock:
            self._metrics.clear()


def _num(value: float) -> str:
    """Render a number the Prometheus way (integers without '.0')."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus 0.0.4 text back into ``{series: value}``.

    The inverse (good enough for our own output) of
    :meth:`MetricsRegistry.render_prometheus`: comment lines are
    dropped, each sample line becomes one entry keyed by its full series
    name **including** the label block (``repro_store_ops_total{op="append"}``).
    Used by the cluster scatter-gather endpoints to merge per-node
    ``/metrics`` scrapes without shipping a JSON variant of every
    metric.  Unparseable lines are skipped, not fatal — a merge should
    survive one node running a newer build.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # name{labels} value  |  name value  (no timestamps emitted).
        try:
            series, value = line.rsplit(None, 1)
            out[series] = float(value)
        except ValueError:
            continue
    return out
