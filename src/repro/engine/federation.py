"""Federation over localised taxonomic databases (thesis chapter 8).

The thesis closes by naming, as further work, "distribution of the
system over many localised taxonomic database systems" — the vision of
herbarium-local Prometheus installations queried as one.  This module
implements that layer on top of the HTTP access layer (§6.1.7):

* :class:`RemoteDatabase` — a thin JSON client for one node;
* :class:`Federation` — fans a POOL query out to every node, collects
  per-node results, and offers the cross-herbarium conveniences the
  thesis motivates (find a name anywhere; which nodes classify a given
  epithet; aggregate counts).

The federation is read-only: each node stays autonomous (its own rules,
its own classifications), which is exactly the multiple-overlapping-
classifications stance — no global merged hierarchy is ever fabricated.

Resilience
----------
Herbarium nodes are expected to be flaky — dial-up era links, machines
under desks.  The fan-out therefore degrades rather than fails, and the
degradation is *visible*:

* per-node **retry** with exponential backoff and seeded jitter
  (:class:`RetryPolicy`);
* a per-node **circuit breaker** (:class:`CircuitBreaker`): after N
  consecutive failures the node is skipped outright until a cooldown
  elapses, then a single half-open probe decides whether to close the
  circuit again;
* **concurrent fan-out with an overall deadline** in
  :meth:`Federation.query_all`: a hung node costs the deadline, not the
  sum of every node's timeout, and is reported as failed;
* aggregates such as :meth:`Federation.count_all` carry ``__errors__``
  and ``__partial__`` markers so a degraded answer can never be
  mistaken for a complete one.
"""

from __future__ import annotations

import concurrent.futures
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..errors import PrometheusError, WireError
from ..telemetry import DISABLED, Telemetry, propagation
from ..telemetry.metrics import parse_prometheus
from . import wire


class FederationError(PrometheusError):
    """A remote node failed or answered malformed data."""


class CircuitOpenError(FederationError):
    """The node's circuit breaker is open; the call was not attempted."""


class RemoteDatabase:
    """JSON client for one Prometheus HTTP node.

    ``use_repb=True`` negotiates the compact REPB v1 binary codec
    (:mod:`repro.engine.wire`) for response bodies via the ``Accept``
    header; the decoded payload tree is identical to the JSON one, so
    nothing else changes.  A server predating the codec simply keeps
    answering JSON and the client accepts it — negotiation degrades,
    never breaks.
    """

    def __init__(
        self, url: str, timeout: float = 10.0, use_repb: bool = False
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.use_repb = use_repb

    # -- raw HTTP ---------------------------------------------------------

    @staticmethod
    def _trace_headers() -> dict[str, str]:
        """The outbound trace-context header, when a trace is active.

        Every HTTP edge the client makes — fan-out queries, replication
        status probes, HA control calls — carries the caller's
        ``traceparent`` so the serving node's spans join the same trace.
        """
        ctx = propagation.current()
        if ctx is None:
            return {}
        return {propagation.TRACEPARENT_HEADER: propagation.format_traceparent(ctx)}

    def _open(self, path: str, data: bytes | None = None,
              headers: dict[str, str] | None = None) -> Any:
        merged = {**self._trace_headers(), **(headers or {})}
        if self.use_repb:
            merged.setdefault("Accept", wire.CONTENT_TYPE)
        request = urllib.request.Request(
            self.url + path, data=data, headers=merged
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
                if wire.is_repb(response.headers.get("Content-Type")):
                    return wire.decode_frame(raw)
                return json.loads(raw.decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError, WireError) as exc:
            raise FederationError(f"{self.url}{path}: {exc}") from exc

    def _get(self, path: str) -> Any:
        return self._open(path)

    def _get_text(self, path: str) -> str:
        request = urllib.request.Request(
            self.url + path, headers=self._trace_headers()
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise FederationError(f"{self.url}{path}: {exc}") from exc

    def _post(self, path: str, payload: dict[str, Any]) -> Any:
        return self._open(
            path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )

    # -- API ------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return self._get("/schema")

    def health(self) -> dict[str, Any]:
        return self._get("/health")

    def classifications(self) -> list[str]:
        return self._get("/classifications")

    def classification(self, name: str) -> dict[str, Any]:
        return self._get(
            "/classifications/" + urllib.request.quote(name, safe="")
        )

    def extent(self, class_name: str) -> list[int]:
        return self._get(f"/classes/{class_name}/extent")

    def object(self, oid: int) -> dict[str, Any]:
        return self._get(f"/objects/{oid}")

    def query(self, text: str, params: dict[str, Any] | None = None) -> Any:
        body = self._post("/query", {"query": text, "params": params or {}})
        return body["result"]

    def resolve(
        self,
        names: "list[str]",
        attr: str = "name",
        class_name: "str | None" = None,
        lineage: bool = False,
        classification: "str | None" = None,
        as_of: "int | None" = None,
    ) -> dict[str, Any]:
        """Batched name→object/lineage resolution (``POST /resolve``).

        One round-trip answers every name in ``names`` — the set-at-a-
        time access pattern a federation fan-out wants, instead of one
        ``/query`` per name per node.
        """
        payload: dict[str, Any] = {"names": list(names), "attr": attr}
        if class_name is not None:
            payload["class"] = class_name
        if lineage:
            payload["lineage"] = True
        if classification is not None:
            payload["classification"] = classification
        if as_of is not None:
            payload["as_of"] = as_of
        return self._post("/resolve", payload)

    def query_with_lsn(
        self, text: str, params: dict[str, Any] | None = None
    ) -> tuple[Any, int | None]:
        """Run a query and return ``(result, serving node's commit LSN)``.

        The LSN is None for in-memory nodes (or servers predating
        replication); staleness-bounded routing then cannot use them as
        replicas.
        """
        body = self._post("/query", {"query": text, "params": params or {}})
        lsn = body.get("lsn")
        return body["result"], (None if lsn is None else int(lsn))

    def replication_status(self) -> dict[str, Any]:
        return self._get("/replicate/status")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text from ``GET /metrics``."""
        return self._get_text("/metrics")

    def trace(self, trace_id: str) -> dict[str, Any]:
        """This node's retained spans of one trace."""
        return self._get(f"/trace/{trace_id}")

    def events(self, since: int = 0) -> dict[str, Any]:
        """The node's lifecycle event journal after ``since``."""
        return self._get(f"/events?since={int(since)}")

    def ping(self) -> bool:
        try:
            self._get("/schema")
            return True
        except FederationError:
            return False

    # -- high availability --------------------------------------------------

    def liveness(self) -> dict[str, Any]:
        """The cheap ``/health/liveness`` probe (no store locks held)."""
        return self._get("/health/liveness")

    def readiness(self) -> dict[str, Any]:
        return self._get("/health/readiness")

    def ha_status(self) -> dict[str, Any]:
        return self._get("/ha/status")

    def ha_promote(self, epoch: int) -> dict[str, Any]:
        return self._post("/ha/promote", {"epoch": epoch})

    def ha_demote(
        self, epoch: int, primary_url: str | None = None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"epoch": epoch}
        if primary_url:
            body["primary_url"] = primary_url
        return self._post("/ha/demote", body)

    def ha_repoint(self, primary_url: str, epoch: int) -> dict[str, Any]:
        return self._post(
            "/ha/repoint", {"primary_url": primary_url, "epoch": epoch}
        )

    def ha_lease(self, epoch: int, ttl_s: float) -> dict[str, Any]:
        return self._post("/ha/lease", {"epoch": epoch, "ttl_s": ttl_s})


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic (seeded) jitter.

    Delay before retry *k* (0-based) is
    ``min(base_delay * 2**k, max_delay)`` plus a uniform jitter of up to
    ``jitter`` times that value, drawn from a :class:`random.Random`
    seeded per :meth:`call` — so a test re-running a policy sees the
    same delays.
    """

    attempts: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delays(self) -> Iterable[float]:
        """The backoff schedule (one delay per retry, jitter included)."""
        rng = random.Random(self.seed)
        for attempt in range(max(0, self.attempts - 1)):
            delay = min(self.base_delay * (2 ** attempt), self.max_delay)
            yield delay + delay * self.jitter * rng.random()

    def call(
        self,
        fn: Callable[[], Any],
        *,
        sleep: Callable[[float], None] = time.sleep,
        retry_on: tuple[type[BaseException], ...] = (FederationError,),
    ) -> Any:
        last: BaseException | None = None
        schedule = list(self.delays())
        for attempt in range(max(1, self.attempts)):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt < len(schedule):
                    sleep(schedule[attempt])
        assert last is not None
        raise last


class CircuitBreaker:
    """Classic three-state breaker guarding one remote node.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open** — calls are refused without touching the network until
      ``reset_timeout`` seconds pass.
    * **half-open** — one probe call is admitted; success closes the
      circuit, failure re-opens it with a fresh cooldown.

    The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False
        #: Optional ``listener(old_state, new_state)`` fired (outside
        #: the breaker lock) on every open/close transition — the
        #: federation journals these as ``federation.breaker`` events.
        self.listener: Callable[[str, str], None] | None = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._current_state()

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def _current_state(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Claims the half-open probe.)"""
        with self._lock:
            state = self._current_state()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            old = self._current_state()
            self._failures = 0
            self._state = "closed"
            self._probing = False
        if old != "closed":
            self._notify(old, "closed")

    def record_failure(self) -> None:
        with self._lock:
            old = self._current_state()
            self._failures += 1
            probe_failed = old == "half_open"
            self._probing = False
            opened = probe_failed or self._failures >= self.failure_threshold
            if opened:
                self._state = "open"
                self._opened_at = self._clock()
        if opened and old != "open":
            self._notify(old, "open")

    def _notify(self, old: str, new: str) -> None:
        listener = self.listener
        if listener is not None:
            try:
                listener(old, new)
            except Exception:  # pragma: no cover - observers never break calls
                pass


@dataclass
class NodeResult:
    """One node's answer (or failure) to a federated query.

    ``served_by`` names which physical endpoint answered — the node
    itself, or one of its read replicas when
    :meth:`Federation.query_all_reads` off-loaded the read.
    """

    node: str
    result: Any = None
    error: str = ""
    elapsed: float = 0.0
    served_by: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


@dataclass
class Federation:
    """A named set of remote Prometheus nodes queried together.

    ``deadline`` bounds the *whole* fan-out of :meth:`query_all`; nodes
    that have not answered by then are reported failed (and count
    against their circuit breaker).  ``retry`` is applied per node
    *inside* the fan-out; set it to ``None`` to disable retries.
    """

    nodes: dict[str, RemoteDatabase] = field(default_factory=dict)
    #: Per-node read replicas: node name -> {replica name -> client}.
    #: Reads through :meth:`query_all_reads` prefer these; writes and
    #: :meth:`query_all` never touch them.
    replicas: dict[str, dict[str, RemoteDatabase]] = field(
        default_factory=dict
    )
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    deadline: float | None = 30.0
    breaker_threshold: int = 5
    breaker_reset: float = 30.0
    max_workers: int = 8
    telemetry: Telemetry = field(default=DISABLED, repr=False)
    _breakers: dict[str, CircuitBreaker] = field(
        default_factory=dict, repr=False
    )

    #: Breaker-state gauge encoding (scraped by the telemetry collector).
    _BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Wire a live facade in and register the breaker-state collector.

        Request counts, latency, retries and errors are recorded on the
        hot path (one branch when disabled); breaker states are scraped
        for free at exposition time.
        """
        self.telemetry = telemetry
        telemetry.registry.add_collector(self._collect_breakers)

    def _collect_breakers(self, registry: Any) -> None:
        for name in sorted(self.nodes):
            breaker = self.breaker(name)
            registry.gauge(
                "repro_federation_breaker_state",
                {"node": name},
                help="Circuit-breaker state (0=closed, 1=half_open, 2=open)",
            ).set(self._BREAKER_STATES.get(breaker.state, -1))
            registry.gauge(
                "repro_federation_breaker_consecutive_failures",
                {"node": name},
            ).set(breaker.consecutive_failures)

    def add_node(self, name: str, url_or_client: str | RemoteDatabase) -> None:
        if isinstance(url_or_client, str):
            url_or_client = RemoteDatabase(url_or_client)
        self.nodes[name] = url_or_client

    def add_read_replica(
        self, node: str, name: str, url_or_client: str | RemoteDatabase
    ) -> None:
        """Register a read replica of ``node`` (its own breaker key is
        ``node/name``)."""
        if node not in self.nodes:
            raise FederationError(f"unknown federation node {node!r}")
        if isinstance(url_or_client, str):
            url_or_client = RemoteDatabase(url_or_client)
        self.replicas.setdefault(node, {})[name] = url_or_client

    def remove_node(self, name: str) -> None:
        self.nodes.pop(name, None)
        for replica in self.replicas.pop(name, {}):
            self._breakers.pop(f"{name}/{replica}", None)
        self._breakers.pop(name, None)

    def follow_promotion(self, node: str, replica_name: str) -> None:
        """Failover: ``replica_name`` (one of ``node``'s read replicas)
        was promoted to primary — swap it into the node slot.

        The promoted replica's client becomes the federation's endpoint
        for ``node``; it leaves the replica set (reads against it are
        now primary reads) and both the node's breaker and the old
        replica breaker are reset, so the first post-failover call is
        not rejected on the dead primary's accumulated failures.  The
        deposed primary is dropped entirely — fenced, it must re-join as
        a replica through the normal registration path.
        """
        replicas = self.replicas.get(node, {})
        promoted = replicas.pop(replica_name, None)
        if promoted is None:
            raise FederationError(
                f"node {node!r} has no read replica {replica_name!r}"
            )
        self.nodes[node] = promoted
        self._breakers.pop(node, None)
        self._breakers.pop(f"{node}/{replica_name}", None)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "repro_federation_failovers_total",
                {"node": node},
                help="Promotions followed (replica swapped into the "
                "primary slot)",
            ).inc()

    def __len__(self) -> int:
        return len(self.nodes)

    # -- resilience machinery ----------------------------------------------

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``name``."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset,
            )
            breaker.listener = self._breaker_transition(name)
            self._breakers[name] = breaker
        return breaker

    def _breaker_transition(
        self, name: str
    ) -> Callable[[str, str], None]:
        """A journal hook for one breaker's open/close transitions."""

        def on_transition(old: str, new: str) -> None:
            tel = self.telemetry
            if tel.enabled:
                tel.events.record(
                    "federation.breaker",
                    target=name,
                    from_state=old,
                    to_state=new,
                )

        return on_transition

    def _call_node(self, name: str, fn: Callable[[], Any]) -> Any:
        """One guarded node call: breaker gate, retries, breaker update."""
        breaker = self.breaker(name)
        tel = self.telemetry
        if not tel.enabled:
            if not breaker.allow():
                raise CircuitOpenError(
                    f"{name}: circuit open "
                    f"({breaker.consecutive_failures} consecutive failures)"
                )
            try:
                result = self.retry.call(fn) if self.retry is not None else fn()
            except Exception:
                breaker.record_failure()
                raise
            breaker.record_success()
            return result

        registry = tel.registry
        node_label = {"node": name}
        registry.counter(
            "repro_federation_requests_total",
            node_label,
            help="Guarded federation calls per node",
        ).inc()
        if not breaker.allow():
            registry.counter(
                "repro_federation_breaker_rejections_total", node_label
            ).inc()
            raise CircuitOpenError(
                f"{name}: circuit open "
                f"({breaker.consecutive_failures} consecutive failures)"
            )
        attempts = 0

        def counted() -> Any:
            nonlocal attempts
            attempts += 1
            return fn()

        started = time.monotonic()
        try:
            result = (
                self.retry.call(counted) if self.retry is not None else counted()
            )
        except Exception:
            breaker.record_failure()
            registry.counter(
                "repro_federation_errors_total", node_label
            ).inc()
            if attempts > 1:
                registry.counter(
                    "repro_federation_retries_total", node_label
                ).inc(attempts - 1)
            raise
        if attempts > 1:
            registry.counter(
                "repro_federation_retries_total",
                node_label,
                help="Retry attempts beyond the first, per node",
            ).inc(attempts - 1)
        registry.histogram(
            "repro_federation_request_ms",
            node_label,
            help="Per-node federation request latency (ms), retries included",
        ).observe((time.monotonic() - started) * 1000.0)
        breaker.record_success()
        return result

    # -- fan-out -----------------------------------------------------------

    def query_all(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> list[NodeResult]:
        """Run one POOL query on every node; failures are per-node.

        Nodes are queried concurrently; the call returns within
        ``deadline`` seconds (default: the federation's) even if a node
        hangs — that node yields a ``NodeResult`` with ``error`` set and
        its breaker records the failure.  The federation degrades, it
        does not fail (autonomous locals).
        """
        if deadline is None:
            deadline = self.deadline
        names = sorted(self.nodes)
        if not names:
            return []

        # Fan-out hops threads: capture the caller's trace position so
        # each per-node call (and its outbound traceparent) stays in the
        # caller's trace instead of orphaning into a fresh one.
        tracer = self.telemetry.tracer
        handle = tracer.capture()

        def run(name: str) -> tuple[Any, float]:
            client = self.nodes[name]
            started = time.monotonic()
            with tracer.attach(handle):
                result = self._call_node(
                    name, lambda: client.query(text, params)
                )
            return result, time.monotonic() - started

        results: dict[str, NodeResult] = {}
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(names)),
            thread_name_prefix="federation",
        )
        try:
            futures = {pool.submit(run, name): name for name in names}
            done, not_done = concurrent.futures.wait(
                futures, timeout=deadline
            )
            for future in done:
                name = futures[future]
                try:
                    result, elapsed = future.result()
                    results[name] = NodeResult(
                        node=name, result=result, elapsed=elapsed
                    )
                except Exception as exc:
                    # `or type name`: an exception with an empty message
                    # (bare CircuitOpenError, ConnectionError) must not
                    # produce error="" — NodeResult.ok would read True.
                    results[name] = NodeResult(
                        node=name, error=str(exc) or type(exc).__name__
                    )
            for future in not_done:
                name = futures[future]
                future.cancel()
                results[name] = NodeResult(
                    node=name,
                    error=f"deadline exceeded after {deadline}s",
                    elapsed=deadline or 0.0,
                )
                self.breaker(name).record_failure()
        finally:
            # Never wait for hung worker threads; their sockets time out
            # on their own and the results are already discarded.
            pool.shutdown(wait=False, cancel_futures=True)
        return [results[name] for name in names]

    def query_all_reads(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        staleness_bytes: float | None = None,
        min_lsn: int = 0,
        deadline: float | None = None,
    ) -> list[NodeResult]:
        """Fan a read out, preferring each node's replicas.

        Per node: try its replicas first (in name order), each guarded
        by its own ``node/replica`` circuit breaker; fall back to the
        primary when the replica fails, reports no LSN, lags behind
        ``min_lsn`` (the caller's read-your-writes floor), or — when
        ``staleness_bytes`` is set — lags the primary's commit LSN by
        more than that many bytes.  ``served_by`` on each result records
        which endpoint actually answered.
        """
        if deadline is None:
            deadline = self.deadline
        names = sorted(self.nodes)
        if not names:
            return []

        tracer = self.telemetry.tracer
        handle = tracer.capture()

        def run(name: str) -> tuple[Any, float, str]:
            started = time.monotonic()
            with tracer.attach(handle):
                return run_traced(name, started)

        def run_traced(name: str, started: float) -> tuple[Any, float, str]:
            replicas = self.replicas.get(name, {})
            for replica_name in sorted(replicas):
                key = f"{name}/{replica_name}"
                client = replicas[replica_name]
                floor = min_lsn
                try:
                    if staleness_bytes is not None:
                        status = self._call_node(
                            name, self.nodes[name].replication_status
                        )
                        primary_lsn = int(status.get("commit_lsn") or 0)
                        floor = max(floor, primary_lsn - int(staleness_bytes))
                    result, lsn = self._call_node(
                        key, lambda: client.query_with_lsn(text, params)
                    )
                except (FederationError, CircuitOpenError):
                    continue
                if lsn is None or lsn < floor:
                    # Too stale for this read; the replica is healthy,
                    # so its breaker is untouched.
                    continue
                return result, time.monotonic() - started, key
            result = self._call_node(
                name, lambda: self.nodes[name].query(text, params)
            )
            return result, time.monotonic() - started, name

        results: dict[str, NodeResult] = {}
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(names)),
            thread_name_prefix="federation-read",
        )
        try:
            futures = {pool.submit(run, name): name for name in names}
            done, not_done = concurrent.futures.wait(
                futures, timeout=deadline
            )
            for future in done:
                name = futures[future]
                try:
                    result, elapsed, served_by = future.result()
                    results[name] = NodeResult(
                        node=name,
                        result=result,
                        elapsed=elapsed,
                        served_by=served_by,
                    )
                except Exception as exc:
                    results[name] = NodeResult(
                        node=name, error=str(exc) or type(exc).__name__
                    )
            for future in not_done:
                name = futures[future]
                future.cancel()
                results[name] = NodeResult(
                    node=name,
                    error=f"deadline exceeded after {deadline}s",
                    elapsed=deadline or 0.0,
                )
                self.breaker(name).record_failure()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [results[name] for name in names]

    # -- cluster observability (scatter-gather) -----------------------------

    def endpoints(self) -> dict[str, RemoteDatabase]:
        """Every physical endpoint: nodes plus ``node/replica`` keys."""
        out: dict[str, RemoteDatabase] = dict(sorted(self.nodes.items()))
        for node in sorted(self.replicas):
            for replica, client in sorted(self.replicas[node].items()):
                out[f"{node}/{replica}"] = client
        return out

    def _scatter(
        self,
        calls: dict[str, Callable[[], Any]],
        deadline: float | None = None,
    ) -> dict[str, tuple[Any, str]]:
        """Run ``{name: thunk}`` concurrently under the deadline.

        Returns ``{name: (result, error)}`` — exactly one of the pair is
        meaningful.  Used by the ``/cluster/*`` aggregation endpoints;
        unlike :meth:`query_all` it does not touch breakers (these *are*
        the observability probes an operator uses to watch a node come
        back).
        """
        if deadline is None:
            deadline = self.deadline
        if not calls:
            return {}
        tracer = self.telemetry.tracer
        handle = tracer.capture()

        def run(fn: Callable[[], Any]) -> Any:
            with tracer.attach(handle):
                return fn()

        results: dict[str, tuple[Any, str]] = {}
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(calls)),
            thread_name_prefix="federation-scatter",
        )
        try:
            futures = {
                pool.submit(run, fn): name for name, fn in calls.items()
            }
            done, not_done = concurrent.futures.wait(
                futures, timeout=deadline
            )
            for future in done:
                name = futures[future]
                try:
                    results[name] = (future.result(), "")
                except Exception as exc:
                    results[name] = (None, str(exc) or type(exc).__name__)
            for future in not_done:
                name = futures[future]
                future.cancel()
                results[name] = (
                    None,
                    f"deadline exceeded after {deadline}s",
                )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def cluster_metrics(
        self, deadline: float | None = None
    ) -> dict[str, Any]:
        """Scatter-gather merge of every endpoint's ``/metrics``.

        Per endpoint the full parsed series map is returned; counters
        (series whose bare name ends ``_total``) are additionally summed
        into ``totals`` for a one-look cluster rate view.  Failed
        endpoints land in ``errors`` and flip ``partial`` — a degraded
        merge never masquerades as a complete one (the
        :meth:`count_all` convention).
        """
        endpoints = self.endpoints()
        scattered = self._scatter(
            {
                name: client.metrics_text
                for name, client in endpoints.items()
            },
            deadline,
        )
        nodes: dict[str, Any] = {}
        totals: dict[str, float] = {}
        errors: dict[str, str] = {}
        for name, client in endpoints.items():
            text, error = scattered.get(name, (None, "not scattered"))
            if error:
                errors[name] = error
                continue
            series = parse_prometheus(text)
            nodes[name] = {"url": client.url, "series": series}
            for key, value in series.items():
                if key.split("{", 1)[0].endswith("_total"):
                    totals[key] = totals.get(key, 0.0) + value
        return {
            "nodes": nodes,
            "totals": totals,
            "errors": errors,
            "partial": bool(errors),
        }

    def cluster_overview(
        self, deadline: float | None = None
    ) -> dict[str, Any]:
        """One merged row per endpoint: role, epoch, LSNs, lag, breaker.

        The ``/cluster/overview`` payload — each endpoint's
        ``/replicate/status`` joined with its ``/ha/status`` (absent on
        nodes without an HA controller) and the federation's own breaker
        state for that endpoint, plus a cluster summary (who is primary,
        the highest epoch seen, total replication lag).
        """
        endpoints = self.endpoints()

        def probe(client: RemoteDatabase) -> Callable[[], dict[str, Any]]:
            def call() -> dict[str, Any]:
                status = client.replication_status()
                shipping = status.get("shipping") or {}
                lag = shipping.get("lag_bytes")
                row: dict[str, Any] = {
                    "url": client.url,
                    "role": status.get("role"),
                    "epoch": status.get("epoch"),
                    "log_epoch": status.get("log_epoch"),
                    "commit_lsn": status.get("commit_lsn"),
                    "applied_lsn": status.get("applied_lsn"),
                    "lag_bytes": sum(lag.values())
                    if isinstance(lag, dict)
                    else lag,
                }
                try:
                    ha = client.ha_status()
                except FederationError:
                    ha = None  # no HA controller on that node
                if ha is not None and "error" not in ha:
                    row["ha"] = {
                        "fenced": ha.get("fenced"),
                        "writes_allowed": ha.get("writes_allowed"),
                        "lease_remaining_s": ha.get("lease_remaining_s"),
                        "promotions": ha.get("promotions"),
                        "fences": ha.get("fences"),
                    }
                return row

            return call

        scattered = self._scatter(
            {
                name: probe(client)
                for name, client in endpoints.items()
            },
            deadline,
        )
        nodes: dict[str, Any] = {}
        errors: dict[str, str] = {}
        primaries: list[str] = []
        max_epoch = 0
        total_lag = 0.0
        for name, client in endpoints.items():
            row, error = scattered.get(name, (None, "not scattered"))
            if error:
                errors[name] = error
                nodes[name] = {
                    "url": client.url,
                    "error": error,
                    "breaker": self.breaker(name).state,
                }
                continue
            row = dict(row)
            row["breaker"] = self.breaker(name).state
            nodes[name] = row
            if row.get("role") == "primary":
                primaries.append(name)
            try:
                max_epoch = max(max_epoch, int(row.get("epoch") or 0))
            except (TypeError, ValueError):
                pass
            if isinstance(row.get("lag_bytes"), (int, float)):
                total_lag += row["lag_bytes"]
        return {
            "nodes": nodes,
            "summary": {
                "endpoints": len(endpoints),
                "primaries": primaries,
                "max_epoch": max_epoch,
                "total_lag_bytes": total_lag,
                "errors": len(errors),
                "partial": bool(errors),
            },
        }

    def gather(
        self, text: str, params: dict[str, Any] | None = None
    ) -> list[tuple[str, Any]]:
        """Flatten successful list results to (node, item) pairs."""
        out: list[tuple[str, Any]] = []
        for node_result in self.query_all(text, params):
            if node_result.ok and isinstance(node_result.result, list):
                out.extend((node_result.node, item) for item in node_result.result)
        return out

    # -- taxonomic conveniences --------------------------------------------------

    def find_name(self, epithet: str) -> list[tuple[str, dict[str, Any]]]:
        """Every node's published names matching ``epithet``.

        The cross-herbarium question of §1.1: has this name been used
        anywhere, by anyone?
        """
        return self.gather(
            "select n from n in NomenclaturalTaxon where n.epithet = $e",
            {"e": epithet},
        )

    def classification_inventory(self) -> dict[str, list[str]]:
        """Classification names per node (nothing is merged)."""
        inventory: dict[str, list[str]] = {}
        for name in sorted(self.nodes):
            client = self.nodes[name]
            try:
                inventory[name] = self._call_node(name, client.classifications)
            except FederationError:
                inventory[name] = []
        return inventory

    def count_all(self, class_name: str) -> dict[str, Any]:
        """Instance counts of a class per node (plus a ``__total__``).

        A failed node counts as 0 but is *recorded*: ``__errors__`` maps
        each failed node to its error and ``__partial__`` is True, so a
        degraded total can never masquerade as a complete one.
        """
        counts: dict[str, Any] = {}
        errors: dict[str, str] = {}
        total = 0
        for node_result in self.query_all(
            f"select count(x) from x in {class_name}"
        ):
            value = 0
            if not node_result.ok:
                errors[node_result.node] = node_result.error
            elif (
                isinstance(node_result.result, list)
                and len(node_result.result) == 1
                and isinstance(node_result.result[0], (int, float))
                and not isinstance(node_result.result[0], bool)
            ):
                value = int(node_result.result[0])
            else:
                # ok-but-malformed (a node died mid-scatter and an empty
                # body slipped through): a silent 0 here would let a
                # degraded total pass as complete.
                errors[node_result.node] = (
                    f"malformed count result: {node_result.result!r}"
                )
            counts[node_result.node] = value
            total += value
        counts["__total__"] = total
        counts["__errors__"] = errors
        counts["__partial__"] = bool(errors)
        return counts

    def alive(self) -> dict[str, bool]:
        """Probe every node directly (bypasses breakers: this *is* the
        health check that lets an operator see a node come back)."""
        return {name: client.ping() for name, client in sorted(self.nodes.items())}

    def health_report(self) -> dict[str, dict[str, Any]]:
        """Per-node liveness plus breaker state, for operators."""
        report: dict[str, dict[str, Any]] = {}
        for name, client in sorted(self.nodes.items()):
            breaker = self.breaker(name)
            report[name] = {
                "url": client.url,
                "alive": client.ping(),
                "breaker": breaker.state,
                "consecutive_failures": breaker.consecutive_failures,
            }
        return report
