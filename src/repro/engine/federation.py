"""Federation over localised taxonomic databases (thesis chapter 8).

The thesis closes by naming, as further work, "distribution of the
system over many localised taxonomic database systems" — the vision of
herbarium-local Prometheus installations queried as one.  This module
implements that layer on top of the HTTP access layer (§6.1.7):

* :class:`RemoteDatabase` — a thin JSON client for one node;
* :class:`Federation` — fans a POOL query out to every node, collects
  per-node results, and offers the cross-herbarium conveniences the
  thesis motivates (find a name anywhere; which nodes classify a given
  epithet; aggregate counts).

The federation is read-only: each node stays autonomous (its own rules,
its own classifications), which is exactly the multiple-overlapping-
classifications stance — no global merged hierarchy is ever fabricated.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from ..errors import PrometheusError


class FederationError(PrometheusError):
    """A remote node failed or answered malformed data."""


class RemoteDatabase:
    """JSON client for one Prometheus HTTP node."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- raw HTTP ---------------------------------------------------------

    def _get(self, path: str) -> Any:
        try:
            with urllib.request.urlopen(
                self.url + path, timeout=self.timeout
            ) as response:
                return json.load(response)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise FederationError(f"{self.url}{path}: {exc}") from exc

    def _post(self, path: str, payload: dict[str, Any]) -> Any:
        data = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.load(response)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise FederationError(f"{self.url}{path}: {exc}") from exc

    # -- API ------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return self._get("/schema")

    def classifications(self) -> list[str]:
        return self._get("/classifications")

    def classification(self, name: str) -> dict[str, Any]:
        return self._get(
            "/classifications/" + urllib.request.quote(name, safe="")
        )

    def extent(self, class_name: str) -> list[int]:
        return self._get(f"/classes/{class_name}/extent")

    def object(self, oid: int) -> dict[str, Any]:
        return self._get(f"/objects/{oid}")

    def query(self, text: str, params: dict[str, Any] | None = None) -> Any:
        body = self._post("/query", {"query": text, "params": params or {}})
        return body["result"]

    def ping(self) -> bool:
        try:
            self._get("/schema")
            return True
        except FederationError:
            return False


@dataclass
class NodeResult:
    """One node's answer (or failure) to a federated query."""

    node: str
    result: Any = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


@dataclass
class Federation:
    """A named set of remote Prometheus nodes queried together."""

    nodes: dict[str, RemoteDatabase] = field(default_factory=dict)

    def add_node(self, name: str, url_or_client: str | RemoteDatabase) -> None:
        if isinstance(url_or_client, str):
            url_or_client = RemoteDatabase(url_or_client)
        self.nodes[name] = url_or_client

    def remove_node(self, name: str) -> None:
        self.nodes.pop(name, None)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- fan-out -----------------------------------------------------------

    def query_all(
        self, text: str, params: dict[str, Any] | None = None
    ) -> list[NodeResult]:
        """Run one POOL query on every node; failures are per-node.

        A node being down yields a ``NodeResult`` with ``error`` set —
        the federation degrades, it does not fail (autonomous locals).
        """
        results: list[NodeResult] = []
        for name in sorted(self.nodes):
            client = self.nodes[name]
            try:
                results.append(
                    NodeResult(node=name, result=client.query(text, params))
                )
            except FederationError as exc:
                results.append(NodeResult(node=name, error=str(exc)))
        return results

    def gather(
        self, text: str, params: dict[str, Any] | None = None
    ) -> list[tuple[str, Any]]:
        """Flatten successful list results to (node, item) pairs."""
        out: list[tuple[str, Any]] = []
        for node_result in self.query_all(text, params):
            if node_result.ok and isinstance(node_result.result, list):
                out.extend((node_result.node, item) for item in node_result.result)
        return out

    # -- taxonomic conveniences --------------------------------------------------

    def find_name(self, epithet: str) -> list[tuple[str, dict[str, Any]]]:
        """Every node's published names matching ``epithet``.

        The cross-herbarium question of §1.1: has this name been used
        anywhere, by anyone?
        """
        return self.gather(
            "select n from n in NomenclaturalTaxon where n.epithet = $e",
            {"e": epithet},
        )

    def classification_inventory(self) -> dict[str, list[str]]:
        """Classification names per node (nothing is merged)."""
        inventory: dict[str, list[str]] = {}
        for name in sorted(self.nodes):
            try:
                inventory[name] = self.nodes[name].classifications()
            except FederationError:
                inventory[name] = []
        return inventory

    def count_all(self, class_name: str) -> dict[str, int]:
        """Instance counts of a class per node (plus a ``__total__``)."""
        counts: dict[str, int] = {}
        total = 0
        for node_result in self.query_all(
            f"select count(x) from x in {class_name}"
        ):
            value = (
                int(node_result.result[0])
                if node_result.ok and node_result.result
                else 0
            )
            counts[node_result.node] = value
            total += value
        counts["__total__"] = total
        return counts

    def alive(self) -> dict[str, bool]:
        return {name: client.ping() for name, client in sorted(self.nodes.items())}
