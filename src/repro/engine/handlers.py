"""Transport-agnostic HTTP request handling (the server's brain).

Both front ends — the threaded :class:`~repro.engine.server.PrometheusServer`
(stdlib ``http.server``) and the asyncio
:class:`~repro.engine.aserver.AsyncPrometheusServer` — delegate every
request to one :class:`HttpHandlers` instance.  A front end parses
bytes into a :class:`Request`, calls :meth:`HttpHandlers.handle`, and
writes the returned :class:`Response` back to its socket.  Because the
routing, serialization, tracing, access logging and metrics all live
here, the two front ends are behaviourally identical by construction —
the property the differential suite
(``tests/engine/test_server_differential.py``) then proves request by
request.

Beyond the routes documented in :mod:`repro.engine.server`, this layer
owns three throughput features:

* **Content negotiation** — ``Accept: application/x-repb`` answers with
  the compact checksummed REPB v1 binary codec (:mod:`repro.engine.wire`)
  instead of JSON; ``Content-Type: application/x-repb`` submits a
  binary request body.  The payload tree is identical either way.
* **Pre-serialized response cache** — 200-responses of ``POST /query``
  and ``POST /resolve`` are cached as ready-to-send bytes, keyed by the
  raw request (path + body + codec) like the planner's literal-
  normalized plan cache, and stamped with ``(schema.version,
  index epoch, commit LSN, events published, cluster epoch)``.  Any
  schema change, commit, direct mutation, index change or promotion
  changes the stamp and the entry misses — a cache hit never serves a
  stale byte.  Hits skip parsing, planning, evaluation *and*
  serialization; the ``repro_server_response_cache_*`` counters are
  reconciled at scrape time.
* **Batched resolution** — ``POST /resolve`` answers many
  name→object/lineage lookups in one round-trip (the set-at-a-time
  access the OverRelational Manifesto argues a storage boundary should
  expose), using attribute indexes when they cover the probe.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable
from urllib.parse import parse_qs, unquote, urlparse

from ..classification import GraphView
from ..core.identity import OidRef
from ..core.instances import PObject
from ..core.metamodel import describe_class
from ..core.relationships import RelationshipInstance
from ..concurrency import Session
from ..errors import (
    ConflictError,
    NodeDemotedError,
    PrometheusError,
    SchemaError,
    SessionError,
    SnapshotError,
    StalePrimaryError,
    WireError,
)
from ..telemetry import propagation
from . import wire
from .database import PrometheusDB
from .federation import Federation

_server_logger = logging.getLogger("repro.server")
_access_logger = logging.getLogger("repro.server.access")

#: Routes whose 200-responses are cached pre-serialized.
_CACHEABLE = {("POST", "query"), ("POST", "resolve")}

#: Ceiling on one ``POST /resolve`` batch.
MAX_RESOLVE_NAMES = 1000


def jsonable(value: Any) -> Any:
    """Convert query results / object state to JSON-safe structures."""
    if isinstance(value, PObject):
        data: dict[str, Any] = {
            "oid": value.oid,
            "class": value.pclass.name,
            "values": {k: jsonable(v) for k, v in value.attributes()},
        }
        if isinstance(value, RelationshipInstance):
            data["origin"] = value.origin_oid
            data["destination"] = value.destination_oid
        return data
    if isinstance(value, OidRef):
        return {"ref": value.oid}
    if isinstance(value, GraphView):
        return {
            "name": value.name,
            "nodes": {str(k): jsonable(v) for k, v in value.nodes.items()},
            "edges": [
                {
                    "from": p,
                    "to": c,
                    "relationship": r,
                    "attributes": jsonable(a),
                }
                for p, c, r, a in value.edges
            ],
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class Request:
    """One parsed HTTP request, as the transport hands it over.

    ``headers`` keys are lower-cased by the transport; ``path`` is the
    raw request target (path plus query string, still percent-encoded).
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name, default)


@dataclass
class Response:
    """What the transport writes back: status, body, extra headers."""

    status: int = 0
    content_type: str = "application/json"
    body: bytes = b""
    headers: list[tuple[str, str]] = field(default_factory=list)
    #: Served from the pre-serialized response cache (diagnostics).
    cached: bool = False


class ResponseCache:
    """LRU of pre-serialized 200-response bodies, with stamp validation.

    Every entry stores the stamp tuple it was built under; a lookup
    whose current stamp differs treats the entry as dead (evicts it and
    misses).  The stamp covers every input a read's bytes can depend
    on, so invalidation is automatic — there is no explicit flush.
    Hit/miss tallies are kept under the cache's own lock (authoritative,
    reconciled into the metrics registry at scrape time).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple, tuple[tuple, str, bytes]
        ] = OrderedDict()

    def get(self, key: tuple, stamp: tuple) -> tuple[str, bytes] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            entry_stamp, content_type, body = entry
            if entry_stamp != stamp:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return content_type, body

    def put(
        self, key: tuple, stamp: tuple, content_type: str, body: bytes
    ) -> None:
        with self._lock:
            self._entries[key] = (stamp, content_type, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class HttpHandlers:
    """The shared request brain: route, serialize, trace, count.

    One instance per served node; safe to call from many threads at
    once (the threaded server's handler threads, the async server's
    worker pool).  Holds the node wiring that used to live on the
    stdlib handler class: database, federation view, replication
    roles, HA controller, supervisor.
    """

    def __init__(
        self,
        db: PrometheusDB,
        federation: Federation | None = None,
        shipper: Any = None,
        replica_client: Any = None,
        primary_url: str | None = None,
        ha: Any = None,
        supervisor: Any = None,
        started_at: float = 0.0,
        cache_capacity: int = 256,
    ) -> None:
        if ha is not None:
            if shipper is None:
                shipper = ha.shipper
            if replica_client is None:
                replica_client = ha.replica_client
            if primary_url is None:
                primary_url = ha.primary_url
        self.db = db
        self.federation = federation
        self.shipper = shipper
        self.replica_client = replica_client
        self.primary_url = primary_url
        self.ha = ha
        self.supervisor = supervisor
        self.started_at = started_at or time.time()
        self.cache = ResponseCache(cache_capacity)
        if db.telemetry.enabled:
            db.telemetry.registry.add_collector(self._collect)

    def _collect(self, registry: Any) -> None:
        """Scrape-time reconciliation of the response-cache tallies."""
        snap = self.cache.snapshot()
        registry.counter(
            "repro_server_response_cache_hits_total",
            help="Responses served pre-serialized from the cache",
        ).value = snap["hits"]
        registry.counter(
            "repro_server_response_cache_misses_total",
            help="Cacheable requests that had to run and serialize",
        ).value = snap["misses"]
        registry.gauge(
            "repro_server_response_cache_entries",
            help="Pre-serialized responses currently cached",
        ).set(snap["entries"])

    # -- role helpers (HA owns the mutable role state when present) --------

    def _shipper(self) -> Any:
        return self.ha.shipper if self.ha is not None else self.shipper

    def _replica_client(self) -> Any:
        if self.ha is not None:
            return self.ha.replica_client
        return self.replica_client

    def _primary(self) -> str | None:
        if self.ha is not None:
            return self.ha.primary_url
        return self.primary_url

    # -- the entry point ---------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route + catch errors + emit the access log and HTTP metrics.

        Trace propagation happens here, once for every route and both
        front ends: an inbound ``traceparent`` header is activated
        *as-is* (so the server span's parent is exactly the caller's
        recorded span id — the linkage a cross-node trace join relies
        on), a per-request ``http.request`` span is opened when
        telemetry is enabled, and the trace id is stamped into the
        response header, error payloads and access log.
        """
        started = time.perf_counter_ns()
        method = request.method or "?"
        remote = propagation.parse_traceparent(
            request.header("traceparent")
        )
        if remote is not None:
            propagation.push(remote)
        tel = self.db.telemetry
        span = None
        exchange = _Exchange(self, request)
        if tel.enabled:
            span = tel.tracer.span(
                "http.request",
                method=method,
                path=urlparse(request.path or "").path,
            )
            span.__enter__()
            exchange._trace_id = span.trace_id
        else:
            exchange._trace_id = (
                remote.trace_id if remote is not None else None
            )
        try:
            if not self._serve_cached(exchange):
                exchange.dispatch()
        except PrometheusError as exc:
            exchange._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            exchange._error(500, f"{type(exc).__name__}: {exc}")
        finally:
            if span is not None:
                span.set("status", exchange.response.status)
                span.__exit__(None, None, None)
            if remote is not None:
                propagation.pop(remote)
            if exchange._trace_id:
                exchange.response.headers.append(
                    ("X-Repro-Trace-Id", exchange._trace_id)
                )
            duration_ms = (time.perf_counter_ns() - started) / 1e6
            # The access line is formatted only when a handler is
            # actually listening: under load the string build and the
            # extra-dict allocation are real costs on the serve path.
            if _access_logger.isEnabledFor(logging.INFO):
                path = request.path or "?"
                _access_logger.info(
                    "%s %s status=%d duration_ms=%.2f trace=%s",
                    method,
                    path,
                    exchange.response.status,
                    duration_ms,
                    exchange._trace_id or "-",
                    extra={
                        "http_method": method,
                        "http_path": path,
                        "http_status": exchange.response.status,
                        "duration_ms": round(duration_ms, 3),
                        "trace_id": exchange._trace_id,
                    },
                )
            if tel.enabled:
                tel.registry.counter(
                    "repro_http_requests_total",
                    {
                        "method": method,
                        "status": str(exchange.response.status),
                    },
                    help="HTTP requests served",
                ).inc()
                tel.registry.histogram(
                    "repro_http_request_ms",
                    help="HTTP request handling latency (ms)",
                ).observe(duration_ms)
        return exchange.response

    # -- the response cache ------------------------------------------------

    def _stamp(self) -> tuple:
        """The invalidation stamp: every version a read can depend on.

        ``schema.version`` (class/index-relevant DDL), the index-catalog
        epoch (plans change), the commit LSN (committed data changes —
        on a replica this advances with every applied batch), the event
        bus's lifetime publish count (direct *uncommitted* mutations on
        the implicit session are query-visible), the cluster epoch
        (a promotion must never serve the deposed reign's bytes), and
        the shard-map epoch (a rebalance moved objects — bodies cached
        against the old placement must not outlive it).
        """
        db = self.db
        if self.ha is not None:
            epoch = self.ha.epoch
        elif db.store is not None:
            epoch = db.store.cluster_epoch
        else:
            epoch = 0
        return (
            db.schema.version,
            db.indexes.epoch,
            db.lsn,
            db.schema.events.published,
            epoch,
            db.shard_map_epoch,
        )

    def _cache_key(self, request: Request) -> tuple | None:
        parts = [p for p in urlparse(request.path).path.split("/") if p]
        if len(parts) != 1:
            return None
        if (request.method, parts[0]) not in _CACHEABLE:
            return None
        return (
            request.method,
            request.path,
            request.body,
            wire.accepts_repb(request.header("accept")),
        )

    def _serve_cached(self, exchange: "_Exchange") -> bool:
        """Try the pre-serialized cache; arm insertion on miss."""
        key = self._cache_key(exchange.request)
        if key is None:
            return False
        stamp = self._stamp()
        hit = self.cache.get(key, stamp)
        if hit is None:
            # The route's _send will insert the serialized 200 body
            # under this (key, stamp) — stamped *before* execution, so
            # a mutation racing the read can only under-cache, never
            # poison the entry.
            exchange._cache_slot = (key, stamp)
            return False
        content_type, body = hit
        exchange.response.status = 200
        exchange.response.content_type = content_type
        exchange.response.body = body
        exchange.response.cached = True
        return True


class _Exchange:
    """Per-request state + every route, shared by both front ends.

    This is the stdlib handler's old body, lifted off the socket: it
    reads a :class:`Request`, fills in a :class:`Response`, and never
    touches a transport.
    """

    def __init__(self, core: HttpHandlers, request: Request) -> None:
        self.core = core
        self.db = core.db
        self.request = request
        self.path = request.path
        self.response = Response()
        self._trace_id: str | None = None
        self._cache_slot: tuple[tuple, tuple] | None = None
        self._repb_out = wire.accepts_repb(request.header("accept"))

    # -- response plumbing -------------------------------------------------

    def _send(self, status: int, payload: Any) -> None:
        if status >= 400 and isinstance(payload, dict):
            # Error bodies carry the trace id so a client retry loop
            # (conflict, stale-primary) can be correlated with the
            # server-side spans that produced each rejection.
            if self._trace_id and "trace_id" not in payload:
                payload = dict(payload, trace_id=self._trace_id)
        if self._repb_out:
            body = wire.encode_frame(payload)
            content_type = wire.CONTENT_TYPE
        else:
            body = json.dumps(payload, indent=2).encode("utf-8")
            content_type = "application/json"
        self._send_bytes(status, content_type, body)
        if status == 200 and self._cache_slot is not None:
            key, stamp = self._cache_slot
            self.core.cache.put(key, stamp, content_type, body)

    def _send_bytes(
        self, status: int, content_type: str, body: bytes
    ) -> None:
        self.response.status = status
        self.response.content_type = content_type
        self.response.body = body

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # -- dispatch ----------------------------------------------------------

    def dispatch(self) -> None:
        method = self.request.method
        if method == "GET":
            self._route_get()
        elif method == "POST":
            self._route_post()
        else:
            self._error(501, f"method {method!r} not supported")

    # -- role helpers ------------------------------------------------------

    def _shipper(self) -> Any:
        return self.core._shipper()

    def _replica_client(self) -> Any:
        return self.core._replica_client()

    def _primary(self) -> str | None:
        return self.core._primary()

    # -- GET routes --------------------------------------------------------

    def _route_get(self) -> None:
        db = self.db
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        if len(parts) == 2 and parts[0] == "trace":
            trace_id = parts[1].lower()
            spans = db.telemetry.traces.spans(trace_id)
            if not spans:
                self._error(404, f"no spans retained for trace {parts[1]!r}")
                return
            self._send(
                200,
                {
                    "trace_id": trace_id,
                    "node": db.telemetry.traces.node,
                    "spans": spans,
                },
            )
            return
        if parts == ["events"]:
            query = parse_qs(parsed.query)
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._error(400, "'since' must be an integer")
                return
            journal = db.telemetry.events
            self._send(
                200,
                {
                    "node": journal.node,
                    "last_seq": journal.last_seq,
                    "events": journal.events(since=since),
                },
            )
            return
        if parts == ["cluster", "metrics"]:
            if self.core.federation is None:
                self._error(404, "this node aggregates no cluster")
                return
            self._send(200, self.core.federation.cluster_metrics())
            return
        if parts == ["cluster", "overview"]:
            if self.core.federation is None:
                self._error(404, "this node aggregates no cluster")
                return
            overview = self.core.federation.cluster_overview()
            if self.core.supervisor is not None:
                overview["supervisor"] = self.core.supervisor.status()
            self._send(200, overview)
            return
        if parts == ["health"]:
            self._send(200, self._health_payload())
            return
        if parts == ["health", "liveness"]:
            # Deliberately minimal: plain attribute reads only, no store
            # or session locks — a node wedged on a lock still answers,
            # and the failure detector measures *process* liveness.
            ha = self.core.ha
            self._send(
                200,
                {
                    "status": "alive",
                    "role": self._role(),
                    "epoch": ha.epoch
                    if ha is not None
                    else (
                        db.store.cluster_epoch
                        if db.store is not None
                        else 0
                    ),
                    "uptime_s": round(
                        time.time() - self.core.started_at, 3
                    )
                    if self.core.started_at
                    else None,
                },
            )
            return
        if parts == ["health", "readiness"]:
            ready, reasons = self._readiness()
            self._send(
                200 if ready else 503,
                {"ready": ready, "reasons": reasons, "role": self._role()},
            )
            return
        if parts == ["ha", "status"]:
            if self.core.ha is None:
                self._error(404, "this node has no HA controller")
                return
            self._send(200, self.core.ha.status())
            return
        if parts == ["metrics"]:
            text = self.db.telemetry.registry.render_prometheus()
            self._send_bytes(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"),
            )
            return
        if parts == ["stats"]:
            self._send(200, self.db.telemetry.snapshot())
            return
        if parts == ["schema"]:
            self._send(200, jsonable(db.describe()))
            return
        if len(parts) >= 2 and parts[0] == "classes":
            name = parts[1]
            if not db.schema.has_class(name):
                self._error(404, f"unknown class {name!r}")
                return
            if len(parts) == 2:
                self._send(
                    200, jsonable(describe_class(db.schema.get_class(name)))
                )
                return
            if len(parts) == 3 and parts[2] == "extent":
                self._send(
                    200, [obj.oid for obj in db.schema.extent(name)]
                )
                return
        if len(parts) == 2 and parts[0] == "objects":
            try:
                oid = int(parts[1])
            except ValueError:
                self._error(400, "oid must be an integer")
                return
            if not db.schema.has_object(oid):
                self._error(404, f"no object {oid}")
                return
            self._send(200, jsonable(db.schema.get_object(oid)))
            return
        if len(parts) == 2 and parts[0] == "session":
            try:
                session = db.sessions.get(parts[1])
            except SessionError as exc:
                self._error(404, str(exc))
                return
            self._send(200, session.info())
            return
        if parts == ["replicate", "status"]:
            shipper = self._shipper()
            replica_client = self._replica_client()
            ha = self.core.ha
            payload: dict[str, Any] = {
                "role": self._role(),
                "commit_lsn": db.store.commit_lsn
                if db.store is not None
                else None,
                "applied_lsn": db.store.commit_lsn
                if db.store is not None
                else None,
                "epoch": ha.epoch
                if ha is not None
                else (
                    db.store.cluster_epoch if db.store is not None else 0
                ),
                # The reign the log's data belongs to — the failover
                # census ranks candidates by this, not the wire epoch.
                "log_epoch": db.store.cluster_epoch
                if db.store is not None
                else 0,
            }
            if shipper is not None:
                payload["shipping"] = shipper.status()
            if replica_client is not None:
                payload["applying"] = replica_client.status()
                payload["primary_url"] = self._primary()
            self._send(200, payload)
            return
        if parts == ["classifications"]:
            self._send(200, db.classifications.names())
            return
        if len(parts) == 2 and parts[0] == "classifications":
            name = parts[1]
            if name not in db.classifications:
                self._error(404, f"unknown classification {name!r}")
                return
            classification = db.classifications.get(name)
            self._send(
                200,
                {
                    "name": classification.name,
                    "author": classification.author,
                    "year": classification.year,
                    "edges": [
                        {
                            "oid": e.oid,
                            "from": e.origin_oid,
                            "to": e.destination_oid,
                            "relationship": e.pclass.name,
                        }
                        for e in classification.edges()
                    ],
                    "roots": [r.oid for r in classification.roots()],
                },
            )
            return
        self._error(404, f"no route for {self.path!r}")

    def _health_payload(self) -> dict[str, Any]:
        """Store/recovery status for operators and federation probes.

        ``status`` is ``"ok"`` for an in-memory or cleanly recovered
        database and ``"degraded"`` when the last recovery had to drop,
        truncate, or salvage anything — a node that lost data says so.
        """
        db = self.db
        store = db.store
        payload: dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self.core.started_at, 3)
            if self.core.started_at
            else None,
            "classes": sum(1 for _ in db.schema.classes()),
            "classifications": len(db.classifications.names()),
            "store": None,
            "telemetry": db.telemetry.summary(),
            "transactions": db.transactions.snapshot(),
            "sessions": db._sessions.snapshot()
            if db._sessions is not None
            else None,
        }
        if store is not None:
            report = getattr(store, "last_recovery", None)
            payload["store"] = {
                "path": store.path,
                "file_size": store.file_size,
                "live_records": len(store),
                "in_transaction": store.in_transaction,
                # A store without a recovery report (never recovered, or
                # a minimal store implementation) is not an error: the
                # health check reports the absence and stays "ok".
                "recovery": report.as_dict() if report is not None else None,
            }
            if report is not None and not report.clean:
                payload["status"] = "degraded"
        federation = self.core.federation
        if federation is not None:
            payload["federation"] = {
                name: {
                    "breaker": federation.breaker(name).state,
                    "consecutive_failures": federation.breaker(
                        name
                    ).consecutive_failures,
                }
                for name in sorted(federation.nodes)
            }
        shipper = self._shipper()
        replica_client = self._replica_client()
        if shipper is not None or replica_client is not None:
            replication: dict[str, Any] = {"role": self._role()}
            if shipper is not None:
                status = shipper.status()
                replication["commit_lsn"] = status["commit_lsn"]
                replication["replicas"] = status["replicas"]
                replication["lag_bytes"] = status["lag_bytes"]
                replication["epoch"] = status.get("epoch", 0)
            if replica_client is not None:
                replication["applying"] = replica_client.status()
                if not replica_client.running:
                    payload["status"] = "degraded"
            payload["replication"] = replication
        if self.core.ha is not None:
            payload["ha"] = self.core.ha.status()
        return payload

    def _readiness(self) -> tuple[bool, list[str]]:
        """May this node serve its role right now?  (reasons when not)

        A fenced node is not ready (clients should go to the successor),
        a replica whose pull loop died is not ready (it only gets
        staler), a store that needed salvage on recovery is not ready
        until an operator looks at it.
        """
        reasons: list[str] = []
        store = self.db.store
        if store is not None:
            report = getattr(store, "last_recovery", None)
            if report is not None and not report.clean:
                reasons.append("recovery-not-clean")
        if self.core.ha is not None and self.core.ha.fenced:
            reasons.append("fenced")
        replica_client = self._replica_client()
        if replica_client is not None and not replica_client.running:
            reasons.append("pull-loop-stopped")
        return not reasons, reasons

    def _role(self) -> str:
        ha = self.core.ha
        if ha is not None:
            return ha.role if not ha.fenced else "fenced"
        if self._replica_client() is not None:
            return "replica"
        if self._shipper() is not None:
            return "primary"
        return "standalone"

    # -- reads -------------------------------------------------------------

    def _run_query(
        self,
        text: str,
        params: dict[str, Any] | None,
        as_of: int | None = None,
    ) -> Any:
        """Run a read, under the applier's read lock on a replica so the
        result is a commit-boundary snapshot, never a half-applied
        batch.  ``as_of`` reads resolve against immutable version
        chains, so on a replica they skip the applier's read lock
        entirely — time travel never waits behind a splice."""
        replica_client = self._replica_client()
        if replica_client is not None:
            return replica_client.applier.query(
                text, params=params, as_of=as_of
            )
        return self.db.query(text, params=params, as_of=as_of)

    def _query_as_of(self, payload: dict[str, Any]) -> int | None:
        """``as_of`` from the JSON body or the ``?as_of=`` query string."""
        as_of = payload.get("as_of")
        if as_of is None:
            values = parse_qs(urlparse(self.path).query).get("as_of")
            if values:
                as_of = values[0]
        if as_of is None:
            return None
        try:
            return int(as_of)
        except (TypeError, ValueError):
            raise SnapshotError(
                f"as_of must be an integer LSN, got {as_of!r}"
            ) from None

    def _snapshot_unavailable(self, exc: SnapshotError) -> None:
        mvcc = self.db.mvcc
        self._send(
            404,
            {
                "error": str(exc),
                "snapshot": "unavailable",
                "floor": mvcc.floor if mvcc is not None else 0,
                "head": self.db.lsn,
            },
        )

    # -- POST routes ---------------------------------------------------------

    def _route_post(self) -> None:
        raw = self.request.body or b"{}"
        if wire.is_repb(self.request.header("content-type")):
            try:
                payload = wire.decode_frame(raw)
            except WireError as exc:
                self._error(400, f"invalid REPB body: {exc}")
                return
        else:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._error(400, "invalid JSON body")
                return
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["query"]:
            if not isinstance(payload, dict):
                self._error(400, "body must be an object")
                return
            text = payload.get("query", "")
            params = payload.get("params", {})
            if not isinstance(text, str) or not text.strip():
                self._error(400, "missing 'query'")
                return
            try:
                as_of = self._query_as_of(payload)
                result = self._run_query(text, params, as_of=as_of)
            except SnapshotError as exc:
                self._snapshot_unavailable(exc)
                return
            except PrometheusError as exc:
                self._error(400, str(exc))
                return
            body: dict[str, Any] = {"result": jsonable(result)}
            if as_of is not None:
                body["as_of"] = as_of
            if self.db.store is not None:
                # The LSN this read reflects; router/checker clients use
                # it to verify their staleness bound was honoured.
                body["lsn"] = self.db.store.commit_lsn
            self._send(200, body)
            return
        if parts == ["resolve"]:
            if not isinstance(payload, dict):
                self._error(400, "body must be an object")
                return
            self._route_resolve(payload)
            return
        if parts == ["replicate", "pull"]:
            self._route_pull(payload)
            return
        if parts and parts[0] == "ha":
            self._route_ha(parts[1:], payload)
            return
        if parts and parts[0] == "session":
            self._route_session(parts[1:], payload)
            return
        self._error(404, f"no route for {self.path!r}")

    # -- batched name resolution ---------------------------------------------

    def _route_resolve(self, payload: dict[str, Any]) -> None:
        """Many name→object/lineage lookups in one round-trip."""
        if "oids" in payload:
            self._route_resolve_oids(payload)
            return
        names = payload.get("names")
        if not isinstance(names, list) or not all(
            isinstance(n, str) for n in names
        ):
            self._error(400, "missing 'names' (a list of strings)")
            return
        if len(names) > MAX_RESOLVE_NAMES:
            self._error(
                400,
                f"too many names: {len(names)} > {MAX_RESOLVE_NAMES} "
                "per batch",
            )
            return
        attr = payload.get("attr", "name")
        if not isinstance(attr, str):
            self._error(400, "'attr' must be a string")
            return
        class_name = payload.get("class")
        want_lineage = bool(payload.get("lineage", False))
        classification_name = payload.get("classification")
        try:
            as_of = self._query_as_of(payload)
        except SnapshotError as exc:
            self._snapshot_unavailable(exc)
            return
        replica_client = self._replica_client()
        try:
            if as_of is not None:
                # Immutable snapshot view: no lock needed, identical on
                # every node that applied the same log prefix.
                schema, classifications = self.db._snapshot_view(as_of)
                body = self._resolve(
                    schema, classifications, None, names, attr,
                    class_name, want_lineage, classification_name,
                )
            elif replica_client is not None:
                with replica_client.applier.read_lock():
                    body = self._resolve(
                        self.db.schema, self.db.classifications,
                        None, names, attr,
                        class_name, want_lineage, classification_name,
                    )
            else:
                body = self._resolve(
                    self.db.schema, self.db.classifications,
                    self.db.indexes.probe, names, attr,
                    class_name, want_lineage, classification_name,
                )
        except SnapshotError as exc:
            self._snapshot_unavailable(exc)
            return
        except _ResolveError as exc:
            self._error(exc.status, str(exc))
            return
        if as_of is not None:
            body["as_of"] = as_of
        body["lsn"] = self.db.lsn
        self._send(200, body)

    def _route_resolve_oids(self, payload: dict[str, Any]) -> None:
        """Batched OID→record resolution: the shard coordinator's
        cross-shard endpoint-fetch fan-out (one POST per shard instead
        of one GET per dangling relationship endpoint)."""
        oids = payload.get("oids")
        if not isinstance(oids, list) or not all(
            isinstance(o, int) and not isinstance(o, bool) for o in oids
        ):
            self._error(400, "missing 'oids' (a list of integers)")
            return
        if len(oids) > MAX_RESOLVE_NAMES:
            self._error(
                400,
                f"too many oids: {len(oids)} > {MAX_RESOLVE_NAMES} "
                "per batch",
            )
            return
        try:
            as_of = self._query_as_of(payload)
        except SnapshotError as exc:
            self._snapshot_unavailable(exc)
            return
        from ..core.schema import Schema

        try:
            if as_of is not None:
                schema, _ = self.db._snapshot_view(as_of)
            else:
                schema = self.db.schema
        except SnapshotError as exc:
            self._snapshot_unavailable(exc)
            return
        records = []
        for oid in sorted(set(oids)):
            if schema.has_object(oid):
                obj = schema.get_object(oid)
                records.append([oid, Schema._to_record(schema, obj)])
        body: dict[str, Any] = {"records": records, "lsn": self.db.lsn}
        if as_of is not None:
            body["as_of"] = as_of
        self._send(200, body)

    def _resolve(
        self,
        schema: Any,
        classifications: Any,
        probe: Callable[[str, str, Any], list[PObject] | None] | None,
        names: list[str],
        attr: str,
        class_name: str | None,
        want_lineage: bool,
        classification_name: Any,
    ) -> dict[str, Any]:
        if class_name is not None:
            if not schema.has_class(class_name):
                raise _ResolveError(404, f"unknown class {class_name!r}")
            candidates = [class_name]
        else:
            # Every top-level concrete class declaring the attribute;
            # subclasses are reached through the polymorphic extent.
            candidates = sorted(
                pclass.name
                for pclass in schema.classes()
                if pclass.has_attribute(attr)
                and not pclass.is_relationship_class
                and not any(
                    sup.has_attribute(attr) for sup in pclass.mro[1:]
                )
            )
        lineage_sources: list[Any] = []
        if classification_name is not None:
            if classification_name not in classifications:
                raise _ResolveError(
                    404,
                    f"unknown classification {classification_name!r}",
                )
            lineage_sources = [classifications.get(classification_name)]
            want_lineage = True
        elif want_lineage:
            lineage_sources = [
                classifications.get(name)
                for name in classifications.names()
            ]
        membership: list[tuple[Any, set[int]]] = [
            (c, set(c.node_oids())) for c in lineage_sources
        ]
        results: dict[str, list[dict[str, Any]]] = {}
        missing: list[str] = []
        for name in names:
            matches: dict[int, PObject] = {}
            for cls in candidates:
                rows = probe(cls, attr, name) if probe is not None else None
                if rows is None:
                    rows = [
                        obj
                        for obj in schema.extent(cls)
                        if obj.pclass.has_attribute(attr)
                        and obj.get(attr) == name
                    ]
                for obj in rows:
                    matches[obj.oid] = obj
            entries: list[dict[str, Any]] = []
            for oid in sorted(matches):
                entry = jsonable(matches[oid])
                if want_lineage:
                    entry["lineage"] = [
                        {
                            "classification": c.name,
                            "ancestors": [
                                {
                                    "oid": a.oid,
                                    "class": a.pclass.name,
                                    attr: a.get(attr)
                                    if a.pclass.has_attribute(attr)
                                    else None,
                                }
                                for a in c.ancestors(oid)
                            ],
                        }
                        for c, members in membership
                        if oid in members
                    ]
                entries.append(entry)
            if entries:
                results[name] = entries
            else:
                missing.append(name)
        return {
            "results": results,
            "resolved": len(results),
            "missing": missing,
        }

    # -- replication / HA ----------------------------------------------------

    def _route_pull(self, payload: dict[str, Any]) -> None:
        """One replica pull against the local shipper (primary role)."""
        shipper = self._shipper()
        if shipper is None:
            self._error(404, "this node does not ship its log")
            return
        try:
            from_lsn = int(payload.get("from_lsn", 0))
            wait_s = float(payload.get("wait_s", 0.0))
            prefix_crc = payload.get("prefix_crc")
            prefix_crc = None if prefix_crc is None else int(prefix_crc)
            max_bytes = payload.get("max_bytes")
            max_bytes = None if max_bytes is None else int(max_bytes)
            epoch = payload.get("epoch")
            epoch = None if epoch is None else int(epoch)
        except (TypeError, ValueError):
            self._error(400, "pull fields must be numeric")
            return
        ha = self.core.ha
        if epoch is not None and ha is not None:
            # A puller reporting a higher epoch is proof of a promotion
            # this node missed: self-fence before even consulting the
            # shipper, so the write path closes in the same breath.
            ha.observe_epoch(epoch)
        status, frame = shipper.pull(
            from_lsn,
            prefix_crc=prefix_crc,
            wait_s=wait_s,
            max_bytes=max_bytes,
            replica=str(payload.get("replica", "")),
            epoch=epoch,
        )
        if status == "stale-primary":
            self._send(
                409,
                {
                    "status": "stale-primary",
                    "conflict_kind": "stale-primary",
                    "epoch": ha.epoch if ha is not None else shipper.epoch,
                    "primary_url": self._primary(),
                },
            )
            return
        if status == "diverged":
            self._send(
                409, {"status": "diverged", "conflict_kind": "diverged"}
            )
            return
        if status == "empty":
            self._send_bytes(204, "application/octet-stream", b"")
            return
        self._send_bytes(200, "application/octet-stream", frame or b"")

    def _route_ha(self, parts: list[str], payload: dict[str, Any]) -> None:
        """HA transitions, executed by the node's controller."""
        ha = self.core.ha
        if ha is None:
            self._error(404, "this node has no HA controller")
            return
        action = parts[0] if len(parts) == 1 else None
        try:
            if action == "promote":
                lsn = ha.promote(int(payload.get("epoch", 0)))
                self._send(
                    200,
                    {
                        "promoted": True,
                        "epoch": ha.epoch,
                        "stamp_lsn": lsn,
                    },
                )
                return
            if action == "demote":
                ha.demote(
                    int(payload.get("epoch", 0)),
                    payload.get("primary_url"),
                )
                self._send(200, {"demoted": True, "epoch": ha.epoch})
                return
            if action == "repoint":
                ha.repoint(
                    str(payload.get("primary_url", "")),
                    int(payload.get("epoch", 0)),
                )
                client = ha.replica_client
                if client is not None and not client.running:
                    client.start()
                self._send(
                    200,
                    {
                        "repointed": True,
                        "primary_url": ha.primary_url,
                        "epoch": ha.epoch,
                    },
                )
                return
            if action == "lease":
                ha.grant_lease(
                    int(payload.get("epoch", 0)),
                    float(payload.get("ttl_s", 0.0)),
                )
                self._send(200, {"leased": True, "epoch": ha.epoch})
                return
        except StalePrimaryError as exc:
            self._send(
                409,
                {
                    "error": str(exc),
                    "status": "stale-primary",
                    "conflict_kind": "stale-primary",
                    "epoch": exc.epoch,
                    "primary_url": exc.primary_url or self._primary(),
                },
            )
            return
        except (TypeError, ValueError):
            self._error(400, "ha fields must be numeric")
            return
        self._error(404, f"no route for {self.path!r}")

    # -- session-scoped transactions (repro.concurrency) --------------------

    def _route_session(self, parts: list[str], payload: Any) -> None:
        db = self.db
        if not parts:  # POST /session — issue a token
            try:
                session = db.sessions.create()
            except SessionError as exc:
                self._error(429, str(exc))
                return
            self._send(201, {"session": session.session_id})
            return
        try:
            session = db.sessions.get(parts[0])
        except SessionError as exc:
            self._error(404, str(exc))
            return
        action = parts[1] if len(parts) == 2 else None
        if action == "query":
            text = payload.get("query", "")
            if not isinstance(text, str) or not text.strip():
                self._error(400, "missing 'query'")
                return
            # Queries run over committed state (read-committed): the
            # session's staged writes are not yet query-visible — see
            # docs/CONCURRENCY.md.
            try:
                as_of = self._query_as_of(payload)
                result = self._run_query(
                    text, payload.get("params", {}), as_of=as_of
                )
            except SnapshotError as exc:
                self._snapshot_unavailable(exc)
                return
            self._send(200, {"result": jsonable(result)})
            return
        if action in ("apply", "commit"):
            if self._replica_client() is not None:
                self._send(
                    403,
                    {
                        "error": "this node is a read replica; "
                        "writes go to the primary",
                        "primary_url": self._primary(),
                    },
                )
                return
            ha = self.core.ha
            if ha is not None and not ha.writes_allowed():
                # Fenced (or lease-expired) ex-primary: 409 + the
                # current epoch, so the client rediscovers instead of
                # retrying against a node that can never accept.
                tel = db.telemetry
                if tel.enabled:
                    tel.registry.counter(
                        "repro_ha_fenced_writes_total",
                        help="Writes refused because this node is "
                        "fenced or lost its lease",
                    ).inc()
                self._send(
                    409,
                    {
                        "error": "this node is fenced: it is not the "
                        "current primary",
                        "conflict_kind": "fenced",
                        "stale_primary": True,
                        "epoch": ha.epoch,
                        "primary_url": self._primary(),
                        "retry": True,
                    },
                )
                return
        if action == "apply":
            ops = payload.get("ops")
            if not isinstance(ops, list):
                self._error(400, "missing 'ops' (a list)")
                return
            try:
                results = self._apply_ops(session, ops)
            except NodeDemotedError as exc:
                self._send_demoted(exc)
                return
            self._send(200, {"results": results})
            return
        if action == "commit":
            try:
                ts = session.commit()
            except NodeDemotedError as exc:
                self._send_demoted(exc)
                return
            except ConflictError as exc:
                # Machine-readable rejection: write-write validation
                # lost the race (vs the fencing/demotion 409s, which
                # carry their own conflict_kind).  ``stale_oids`` names
                # the objects another transaction committed first.
                self._send(
                    409,
                    {
                        "error": str(exc),
                        "conflict": True,
                        "conflict_kind": "write-write",
                        "stale_oids": list(exc.oids),
                        "retry": True,
                    },
                )
                return
            body: dict[str, Any] = {
                "committed": True,
                "commit_ts": ts,
                # For read-your-writes routing: reads bounded by this
                # LSN must go to nodes that have applied it.
                "commit_lsn": session.last_commit_lsn,
            }
            min_acks = payload.get("wait_replicated")
            shipper = self._shipper()
            if min_acks and shipper is not None:
                # Semi-synchronous ack: only report replicated=True once
                # the commit's bytes were pulled by that many replicas.
                body["replicated"] = shipper.wait_replicated(
                    session.last_commit_lsn or 0,
                    min_acks=int(min_acks),
                    timeout_s=float(payload.get("wait_timeout_s", 5.0)),
                )
            self._send(200, body)
            return
        if action == "abort":
            session.abort()
            self._send(200, {"aborted": True})
            return
        if action == "release":
            db.sessions.release(session.session_id)
            self._send(200, {"released": True})
            return
        self._error(404, f"no route for {self.path!r}")

    def _send_demoted(self, exc: NodeDemotedError) -> None:
        """The typed demotion answer: 409 + the successor's address."""
        self._send(
            409,
            {
                "error": str(exc),
                "demoted": True,
                "conflict_kind": "demoted",
                "epoch": exc.epoch,
                "primary_url": exc.primary_url or self._primary(),
                "retry": True,
            },
        )

    def _apply_ops(self, session: Session, ops: list[Any]) -> list[Any]:
        """Stage each op on the session's transaction, in order.

        Staging is fail-fast: an invalid op raises (→ 400) and ops after
        it are not staged; ops before it remain staged — the client
        decides whether to commit, abort, or re-send.
        """
        txn = session.txn
        results: list[Any] = []
        for op in ops:
            if not isinstance(op, dict):
                raise SchemaError("each op must be an object")
            kind = op.get("op")
            try:
                self._apply_one(txn, kind, op, results)
            except KeyError as exc:
                raise SchemaError(
                    f"op {kind!r} is missing field {exc.args[0]!r}"
                ) from None
        return results

    def _apply_one(
        self, txn: Any, kind: Any, op: dict[str, Any], results: list[Any]
    ) -> None:
        if kind == "create":
            oid = txn.create(op["class"], **op.get("attrs", {}))
            results.append({"oid": oid})
        elif kind == "set":
            txn.set(int(op["oid"]), op["attr"], op.get("value"))
            results.append({"ok": True})
        elif kind == "update":
            txn.update(int(op["oid"]), **op.get("attrs", {}))
            results.append({"ok": True})
        elif kind == "delete":
            txn.delete(int(op["oid"]), cascade=op.get("cascade", True))
            results.append({"ok": True})
        elif kind == "relate":
            oid = txn.relate(
                op["class"],
                int(op["origin"]),
                int(op["destination"]),
                participants={
                    role: int(v)
                    for role, v in op.get("participants", {}).items()
                }
                or None,
                **op.get("attrs", {}),
            )
            results.append({"oid": oid})
        elif kind == "unrelate":
            txn.unrelate(int(op["oid"]))
            results.append({"ok": True})
        elif kind == "get":
            results.append({"values": jsonable(txn.get(int(op["oid"])))})
        else:
            raise SchemaError(f"unknown op {kind!r}")


class _ResolveError(PrometheusError):
    """Internal: a resolve request failed with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
