"""The assembled database: every layer of Figure 26 behind one facade.

:class:`PrometheusDB` wires together, bottom-up:

* the **object store** (optional — omit for an in-memory database),
* the **event layer** (owned by the schema),
* the **object layer** (schema: classes, instances, relationships),
* the **views layer**,
* the **index layer**,
* the **query layer** (POOL with type checking and index fast path),
* the **rules layer**,
* the **classification layer** (manager + trace log),

and exposes the operations applications actually call.  The HTTP server
(§6.1.7) wraps an instance of this class.
"""

from __future__ import annotations

import os
from typing import Any

from ..classification import ClassificationManager, TraceLog
from ..core.metamodel import describe_schema
from ..core.schema import Schema
from ..errors import QueryError
from ..query import parse
from ..query.evaluator import Evaluator, QueryContext
from ..query.nodes import QueryPlanInfo
from ..query.typecheck import typecheck
from ..rules import RuleEngine
from ..storage.store import ObjectStore
from .indexes import IndexManager
from .views import ViewManager


class PrometheusDB:
    """The full Prometheus database system.

    Args:
        path: log file path for persistence, or None for in-memory.
        name: diagnostic label.
        cache_size: object-store record cache capacity.
        sync: fsync after commits (durable but slow).
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        name: str = "prometheus",
        cache_size: int = 4096,
        sync: bool = False,
    ) -> None:
        self.store: ObjectStore | None = (
            ObjectStore(path, cache_size=cache_size, sync=sync)
            if path is not None
            else None
        )
        self.schema = Schema(self.store, name=name)
        self.rules = RuleEngine(self.schema)
        self.indexes = IndexManager(self.schema)
        self._loaded = False
        self._classifications: ClassificationManager | None = None
        self._views: ViewManager | None = None
        self._trace: TraceLog | None = None

    # -- lifecycle --------------------------------------------------------

    def load(self) -> int:
        """Load persisted instances (call after declaring all classes)."""
        count = self.schema.load_all()
        self._loaded = True
        return count

    def close(self) -> None:
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "PrometheusDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- lazily-built upper layers ------------------------------------------
    # (classifications and views want the instance data present, so they
    # are created on first use, after load()).

    @property
    def classifications(self) -> ClassificationManager:
        if self._classifications is None:
            self._classifications = ClassificationManager(self.schema)
        return self._classifications

    @property
    def views(self) -> ViewManager:
        if self._views is None:
            self._views = ViewManager(self.schema, self.classifications)
        return self._views

    @property
    def trace(self) -> TraceLog:
        if self._trace is None:
            self._trace = TraceLog(self.schema)
        return self._trace

    # -- transactions -------------------------------------------------------

    def commit(self) -> None:
        self.schema.commit()

    def abort(self) -> None:
        self.schema.abort()

    # -- the query layer (§6.1.5) ----------------------------------------------

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        check: bool = True,
    ) -> Any:
        """Type-check then evaluate POOL ``text``.

        Returns a list for SELECT, a GraphView for EXTRACT GRAPH.
        """
        ast = parse(text)
        if check:
            report = typecheck(self.schema, ast, self._classifications)
            if not report.ok:
                raise QueryError(
                    "query does not type-check: " + "; ".join(report.errors)
                )
        context = QueryContext(
            schema=self.schema,
            classifications=self._classifications,
            params=params or {},
            index_probe=self.indexes.probe,
        )
        return Evaluator(context).run(ast)

    def explain(
        self, text: str, params: dict[str, Any] | None = None
    ) -> QueryPlanInfo:
        """Evaluate and return the plan info (index use, extent scans)."""
        ast = parse(text)
        context = QueryContext(
            schema=self.schema,
            classifications=self._classifications,
            params=params or {},
            index_probe=self.indexes.probe,
        )
        Evaluator(context).run(ast)
        return context.plan

    # -- introspection --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        info = describe_schema(self.schema)
        info["indexes"] = [index.name for index in self.indexes.indexes()]
        info["rules"] = [rule.name for rule in self.rules.rules()]
        if self._classifications is not None:
            info["classifications"] = self._classifications.names()
        if self._views is not None:
            info["views"] = self._views.names()
        if self.store is not None:
            info["storage"] = self.store.stats.snapshot() | {
                "file_size": self.store.file_size,
                "objects": len(self.store),
            }
        return info

    def check_integrity(self) -> list[str]:
        """Schema-level integrity plus all invariant rules."""
        problems = self.schema.check_integrity()
        problems.extend(
            f"rule {v.rule_name}: {v.message} (oid {v.target_oid})"
            for v in self.rules.check_all_invariants()
        )
        return problems
