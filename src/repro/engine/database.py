"""The assembled database: every layer of Figure 26 behind one facade.

:class:`PrometheusDB` wires together, bottom-up:

* the **object store** (optional — omit for an in-memory database),
* the **event layer** (owned by the schema),
* the **object layer** (schema: classes, instances, relationships),
* the **views layer**,
* the **index layer**,
* the **query layer** (POOL with type checking and index fast path),
* the **rules layer**,
* the **classification layer** (manager + trace log),

and exposes the operations applications actually call.  The HTTP server
(§6.1.7) wraps an instance of this class.
"""

from __future__ import annotations

import os
import time
from typing import Any

from ..classification import ClassificationManager, TraceLog
from ..concurrency import SessionManager, Transaction, TransactionManager
from ..core.metamodel import describe_schema
from ..core.schema import Schema
from ..errors import QueryError, SnapshotError, StorageError
from ..mvcc import MvccStore, SnapshotSchema
from ..query import parse
from ..query.evaluator import Evaluator, QueryContext
from ..query.nodes import QueryPlanInfo
from ..query.planner import Planner
from ..query.plans import AdjacencyCache
from ..query.typecheck import typecheck
from ..rules import RuleEngine
from ..storage.store import ObjectStore
from ..telemetry import Telemetry
from .indexes import IndexManager
from .views import ViewManager


class PrometheusDB:
    """The full Prometheus database system.

    Args:
        path: log file path for persistence, or None for in-memory.
        name: diagnostic label.
        cache_size: object-store record cache capacity.
        sync: fsync after commits (durable but slow).
        telemetry: a :class:`~repro.telemetry.Telemetry` facade to use,
            or None to create an enabled one.  Pass
            ``repro.telemetry.DISABLED`` (or any disabled facade) to
            turn all instrumentation down to one branch per hook.
        slow_query_ms: threshold for the slow-query log (None = off);
            only consulted when building the default facade.
        planner: execute queries through the cost-based planner
            (:mod:`repro.query.planner`); False falls back to the naive
            AST interpreter everywhere (the differential-test reference).
        read_only: open the store as a replica — local writes raise and
            the log only grows through
            :meth:`~repro.storage.store.ObjectStore.apply_replicated`.
        mvcc: keep per-OID version chains (:mod:`repro.mvcc`) so
            transactions read lock-free pinned snapshots and
            ``query(..., as_of=lsn)`` time travel works; False turns
            the chains off (transactions fall back to locked live
            reads; validation stays snapshot-based).
        faults: a :class:`~repro.storage.faults.FaultPlan` threaded down
            to the store's log file (crash/torn-write injection for the
            recovery and replication sweeps).
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        name: str = "prometheus",
        cache_size: int = 4096,
        sync: bool = False,
        telemetry: Telemetry | None = None,
        slow_query_ms: float | None = None,
        planner: bool = True,
        read_only: bool = False,
        faults: Any | None = None,
        mvcc: bool = True,
    ) -> None:
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=True, slow_query_ms=slow_query_ms)
        )
        self.store: ObjectStore | None = (
            ObjectStore(
                path,
                cache_size=cache_size,
                sync=sync,
                read_only=read_only,
                faults=faults,
            )
            if path is not None
            else None
        )
        if (
            path is not None
            and self.telemetry.enabled
            and self.telemetry.events.path is None
        ):
            # Persist the lifecycle journal beside the store so a
            # failover post-mortem survives the process.
            self.telemetry.events.path = str(
                os.fspath(path)
            ) + ".events.jsonl"
        self.schema = Schema(self.store, name=name)
        self.schema.events.telemetry = self.telemetry
        self.rules = RuleEngine(self.schema, telemetry=self.telemetry)
        self.indexes = IndexManager(self.schema)
        self.planner: Planner | None = None
        if planner:
            self.planner = Planner(
                self.schema, catalog=self.indexes, telemetry=self.telemetry
            )
            self.planner.attach(self.schema.events)
        self.mvcc: MvccStore | None = MvccStore() if mvcc else None
        self.transactions = TransactionManager(
            self.schema,
            rules=self.rules,
            store=self.store,
            telemetry=self.telemetry,
            mvcc=self.mvcc,
        )
        if self.mvcc is not None:
            # Direct schema.commit() calls feed the chains too.
            self.schema._mvcc_sink = self.transactions.ingest_implicit
        #: Small LRU of materialized as_of views; each holds a GC pin.
        self._snapshot_views: dict[
            int, tuple[SnapshotSchema, Any, ClassificationManager]
        ] = {}
        self._loaded = False
        self._classifications: ClassificationManager | None = None
        self._views: ViewManager | None = None
        self._trace: TraceLog | None = None
        self._sessions: SessionManager | None = None
        self._last_plan: QueryPlanInfo | None = None
        self._shard_map_epoch = 0  # in-memory shards: set by coordinator
        self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Register scrape-time collectors and seed the metric families.

        Seeding guarantees ``GET /metrics`` always exposes at least one
        counter per layer (events, rules, query, storage, federation),
        even before any traffic arrives.
        """
        registry = self.telemetry.registry
        registry.counter(
            "repro_events_published_total", help="Events published on the bus"
        )
        registry.counter("repro_rules_fired_total", help="Rule evaluations")
        registry.counter(
            "repro_rules_violations_total", help="Rule violations"
        )
        registry.counter("repro_query_total", help="POOL queries executed")
        registry.counter(
            "repro_storage_ops_total", help="Object-store operations"
        )
        registry.counter(
            "repro_federation_requests_total",
            help="Guarded federation calls (all nodes)",
        )
        registry.counter(
            "repro_txn_commits_total", help="Managed transactions committed"
        )
        registry.counter(
            "repro_txn_aborts_total", help="Managed transactions aborted"
        )
        registry.counter(
            "repro_txn_conflicts_total",
            help="Commits rejected by write-set validation",
        )
        registry.gauge(
            "repro_txn_active", help="Managed transactions in flight"
        )
        registry.gauge(
            "repro_sessions_active", help="Live (non-evicted) sessions"
        )
        registry.counter(
            "repro_planner_plans_built_total", help="Plans compiled"
        )
        registry.counter(
            "repro_planner_cache_hits_total", help="Plan-cache hits"
        )
        registry.counter(
            "repro_planner_cache_misses_total", help="Plan-cache misses"
        )
        if self.mvcc is not None:
            registry.gauge(
                "repro_mvcc_pinned_snapshots",
                help="Snapshot pins currently held (readers + cached views)",
            )
            registry.gauge(
                "repro_mvcc_watermark_lsn",
                help="Oldest pinned snapshot LSN (GC reclaim boundary)",
            )
            registry.gauge(
                "repro_mvcc_floor_lsn",
                help="Oldest LSN still materializable (history floor)",
            )
            registry.gauge(
                "repro_mvcc_head_lsn", help="Newest committed snapshot LSN"
            )
            registry.gauge(
                "repro_mvcc_chains", help="OIDs with a live version chain"
            )
            registry.gauge(
                "repro_mvcc_versions_live",
                help="Record versions currently held across all chains",
            )
            registry.counter(
                "repro_mvcc_versions_appended_total",
                help="Versions appended to chains since start",
            )
            registry.counter(
                "repro_mvcc_versions_collected_total",
                help="Versions reclaimed by chain GC",
            )
            registry.counter(
                "repro_mvcc_gc_runs_total", help="Version-chain GC passes"
            )
            registry.counter(
                "repro_mvcc_snapshot_reads_total",
                help="Snapshot views materialized (as_of queries)",
            )
        registry.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry: Any) -> None:
        """Scrape-time storage/index/cache metrics: these numbers are
        maintained by the layers anyway, so observing them is free."""
        store = self.store
        if store is not None:
            snap = store.telemetry_snapshot()
            ops = registry.counter("repro_storage_ops_total")
            ops.value = (
                snap["reads"] + snap["writes"] + snap["deletes"]
                + snap["commits"] + snap["aborts"]
            )
            for op in ("reads", "writes", "deletes", "commits", "aborts"):
                registry.counter(
                    "repro_storage_ops_by_kind_total", {"op": op}
                ).value = snap[op]
            registry.counter(
                "repro_storage_cache_hits_total"
            ).value = snap["cache_hits"]
            registry.counter(
                "repro_storage_cache_misses_total"
            ).value = snap["cache_misses"]
            registry.gauge(
                "repro_storage_cache_hit_rate",
                help="Record-cache hit rate since last reset",
            ).set(round(snap["cache_hit_rate"], 6))
            registry.counter(
                "repro_storage_log_appends_total"
            ).value = snap["log_appends"]
            registry.counter(
                "repro_storage_log_fsyncs_total",
                help="fsync calls issued by the record log",
            ).value = snap["log_fsyncs"]
            registry.counter(
                "repro_storage_group_commit_batches_total",
                help="Shared fsync barriers executed by group commit",
            ).value = snap["group_commit_batches"]
            registry.counter(
                "repro_storage_group_commit_commits_total",
                help="Commits whose durability rode a shared fsync",
            ).value = snap["group_commit_batched"]
            registry.gauge("repro_storage_file_bytes").set(snap["file_size"])
            registry.gauge(
                "repro_storage_live_records"
            ).set(snap["live_records"])
        for index in self.indexes.indexes():
            registry.counter(
                "repro_index_probes_total", {"index": index.name}
            ).value = index.probes
            registry.gauge(
                "repro_index_entries", {"index": index.name}
            ).set(len(index))
        registry.gauge(
            "repro_events_bus_published",
            help="Lifetime publish count kept by the bus itself",
        ).set(self.schema.events.published)
        # Transaction counters are reconciled from the manager's
        # authoritative (lock-protected) stats at scrape time — the
        # registry's lock-free counters can under-count under threads.
        txn = self.transactions.stats.snapshot()
        registry.counter("repro_txn_commits_total").value = txn["committed"]
        registry.counter("repro_txn_aborts_total").value = txn["aborted"]
        registry.counter("repro_txn_conflicts_total").value = txn["conflicts"]
        registry.gauge("repro_txn_active").set(
            self.transactions.active_count
        )
        if self._sessions is not None:
            registry.gauge("repro_sessions_active").set(
                self._sessions.active_count
            )
        if self.planner is not None:
            snap = self.planner.snapshot()
            registry.gauge(
                "repro_planner_cache_plans",
                help="Plans currently held by the LRU plan cache",
            ).set(snap["cache_size"])
            # Reconcile from the planner's lock-protected tallies.
            registry.counter(
                "repro_planner_cache_hits_total"
            ).value = snap["hits"]
            registry.counter(
                "repro_planner_cache_misses_total"
            ).value = snap["misses"]
            registry.counter(
                "repro_planner_plans_built_total"
            ).value = snap["built"]
        if self.mvcc is not None:
            snap = self.mvcc.telemetry_snapshot()
            registry.gauge(
                "repro_mvcc_pinned_snapshots"
            ).set(snap["pinned_snapshots"])
            registry.gauge(
                "repro_mvcc_watermark_lsn"
            ).set(snap["watermark_lsn"])
            registry.gauge("repro_mvcc_floor_lsn").set(snap["floor_lsn"])
            registry.gauge("repro_mvcc_head_lsn").set(snap["head_lsn"])
            registry.gauge("repro_mvcc_chains").set(snap["chains"])
            registry.gauge(
                "repro_mvcc_versions_live"
            ).set(snap["versions_live"])
            registry.counter(
                "repro_mvcc_versions_appended_total"
            ).value = snap["versions_appended"]
            registry.counter(
                "repro_mvcc_versions_collected_total"
            ).value = snap["versions_collected"]
            registry.counter(
                "repro_mvcc_gc_runs_total"
            ).value = snap["gc_runs"]
            registry.counter(
                "repro_mvcc_snapshot_reads_total"
            ).value = snap["snapshot_reads"]

    # -- lifecycle --------------------------------------------------------

    def load(self) -> int:
        """Load persisted instances (call after declaring all classes).

        Also seeds the MVCC version chains with the loaded state at the
        current commit LSN: time-travel history starts here (the log's
        earlier offsets are not replayed), and grows with every commit.
        """
        count = self.schema.load_all()
        if self.mvcc is not None and self.store is not None:
            base = self.store.commit_lsn
            self.mvcc.seed(self.store.items(), base)
            self.transactions.publish_floor(base)
        self._loaded = True
        return count

    def close(self) -> None:
        self.release_snapshots()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "PrometheusDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- lazily-built upper layers ------------------------------------------
    # (classifications and views want the instance data present, so they
    # are created on first use, after load()).

    @property
    def classifications(self) -> ClassificationManager:
        if self._classifications is None:
            self._classifications = ClassificationManager(self.schema)
        return self._classifications

    @property
    def views(self) -> ViewManager:
        if self._views is None:
            self._views = ViewManager(self.schema, self.classifications)
        return self._views

    @property
    def trace(self) -> TraceLog:
        if self._trace is None:
            self._trace = TraceLog(self.schema)
        return self._trace

    # -- transactions -------------------------------------------------------

    def commit(self) -> None:
        """Commit the implicit session's pending changes.

        Routed through the transaction manager so managed transactions
        racing direct mutations still see version bumps (and conflict).
        """
        self.transactions.commit_implicit()

    def abort(self) -> None:
        self.schema.abort()

    def begin(self, validate_reads: bool = False) -> Transaction:
        """Start a managed transaction (copy-on-write overlay).

        Use as a context manager — commits on clean exit, aborts on
        exception; :class:`~repro.errors.ConflictError` from commit
        means another writer won and the caller should retry.
        """
        return self.transactions.begin(validate_reads=validate_reads)

    @property
    def sessions(self) -> SessionManager:
        """Token-issuing session registry (built on first use)."""
        if self._sessions is None:
            self._sessions = SessionManager(
                self.transactions, telemetry=self.telemetry
            )
        return self._sessions

    # -- time travel (MVCC snapshots) ---------------------------------------

    @property
    def lsn(self) -> int:
        """The newest queryable snapshot LSN (commit log position)."""
        if self.store is not None:
            return self.store.commit_lsn
        return self.transactions.published_snapshot[1]

    @property
    def shard_map_epoch(self) -> int:
        """Newest shard-map epoch this node knows about (0 = unsharded).

        Store-backed nodes read the durable stamp; in-memory shards are
        told theirs by the sharding coordinator via the setter.  The
        response cache folds this into its invalidation stamp so a
        rebalance can never serve bytes computed against old placement.
        """
        if self.store is not None:
            return self.store.shard_map_epoch
        return self._shard_map_epoch

    @shard_map_epoch.setter
    def shard_map_epoch(self, epoch: int) -> None:
        if self.store is not None:
            raise StorageError(
                "store-backed nodes learn the shard-map epoch from the "
                "log (stamp_shard_map), not by assignment"
            )
        self._shard_map_epoch = epoch

    def snapshot(self, as_of: int | None = None) -> "DatabaseSnapshot":
        """Pin a consistent point-in-time handle (default: now).

        The handle keeps its LSN's versions safe from GC until
        released; use as a context manager.
        """
        if self.mvcc is None:
            raise SnapshotError("snapshots require mvcc=True")
        lsn = self.lsn if as_of is None else self._check_as_of(as_of)
        pin = self.mvcc.pin(lsn)
        if pin is None:
            raise SnapshotError(
                f"snapshot lsn {lsn} predates retained history "
                f"(floor {self.mvcc.floor})"
            )
        return DatabaseSnapshot(self, lsn, pin)

    def mvcc_gc(self) -> int:
        """Run one version-chain GC pass; returns versions collected."""
        if self.mvcc is None:
            return 0
        return self.mvcc.run_gc()

    def release_snapshots(self) -> None:
        """Drop all cached as_of views (and their GC pins)."""
        for _, pin, _ in self._snapshot_views.values():
            pin.release()
        self._snapshot_views.clear()

    def _check_as_of(self, as_of: Any) -> int:
        if isinstance(as_of, bool) or not isinstance(as_of, int):
            raise SnapshotError(f"as_of must be an integer LSN, got {as_of!r}")
        head = self.lsn
        if as_of > head:
            raise SnapshotError(
                f"snapshot lsn {as_of} not yet available (head is {head})"
            )
        if self.mvcc is not None and as_of < self.mvcc.floor:
            raise SnapshotError(
                f"snapshot lsn {as_of} predates retained history "
                f"(floor {self.mvcc.floor})"
            )
        return as_of

    def _snapshot_view(
        self, as_of: int
    ) -> tuple[SnapshotSchema, ClassificationManager]:
        """Materialized (cached) schema view + classifications at a LSN."""
        if self.mvcc is None:
            raise SnapshotError("as_of queries require mvcc=True")
        as_of = self._check_as_of(as_of)
        cached = self._snapshot_views.get(as_of)
        if cached is not None:
            view, _, classifications = cached
            return view, classifications
        pin = self.mvcc.pin(as_of)
        if pin is None:
            raise SnapshotError(
                f"snapshot lsn {as_of} predates retained history "
                f"(floor {self.mvcc.floor})"
            )
        view = self.mvcc.view(self.schema, as_of)
        classifications = ClassificationManager(view)  # type: ignore[arg-type]
        self._snapshot_views[as_of] = (view, pin, classifications)
        while len(self._snapshot_views) > 4:
            oldest = next(iter(self._snapshot_views))
            _, old_pin, _ = self._snapshot_views.pop(oldest)
            old_pin.release()
        return view, classifications

    # -- the query layer (§6.1.5) ----------------------------------------------

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        check: bool = True,
        as_of: int | None = None,
    ) -> Any:
        """Type-check then evaluate POOL ``text``.

        Returns a list for SELECT, a GraphView for EXTRACT GRAPH.

        ``as_of`` evaluates the query against the consistent snapshot
        at that commit LSN (time travel): reads never block writers,
        and the same LSN returns byte-identical results on every node
        that applied the same log prefix.

        The text may be prefixed with ``EXPLAIN`` or ``PROFILE``
        (case-insensitive): instead of the result rows the call then
        returns a plan report dict — ``EXPLAIN`` describes the access
        paths taken (index vs scan, rows examined, traversal depth),
        ``PROFILE`` additionally includes the per-clause span tree and
        wall time.  Both run the query for real (POOL is select-only,
        so this is always safe).
        """
        mode, text = self._strip_mode(text)
        if mode is not None:
            return self._run_plan_report(mode, text, params, as_of=as_of)
        tel = self.telemetry
        if not tel.enabled:
            return self._execute(text, params, check, as_of=as_of)
        registry = tel.registry
        registry.counter(
            "repro_query_total", help="POOL queries executed"
        ).inc()
        started = time.perf_counter_ns()
        try:
            result = self._execute(text, params, check, as_of=as_of)
        except Exception:
            registry.counter(
                "repro_query_errors_total", help="POOL queries that raised"
            ).inc()
            raise
        elapsed_ms = (time.perf_counter_ns() - started) / 1e6
        registry.histogram(
            "repro_query_ms", help="POOL query latency (ms)"
        ).observe(elapsed_ms)
        plan = self._last_plan
        if plan is not None:
            if plan.index_used is not None:
                registry.counter(
                    "repro_query_index_hits_total",
                    help="Queries answered through an index fast path",
                ).inc()
            if plan.extent_scans:
                registry.counter(
                    "repro_query_extent_scans_total",
                    help="Full extent scans performed by queries",
                ).inc(plan.extent_scans)
        tel.record_query(text, elapsed_ms, _result_size(result))
        return result

    def _execute(
        self,
        text: str,
        params: dict[str, Any] | None,
        check: bool,
        as_of: int | None = None,
    ) -> Any:
        ast = parse(text)
        if check:
            report = typecheck(self.schema, ast, self._classifications)
            if not report.ok:
                raise QueryError(
                    "query does not type-check: " + "; ".join(report.errors)
                )
        context = self._context(params, as_of=as_of)
        result = Evaluator(context).run(ast)
        self._last_plan = context.plan
        return result

    def _context(
        self, params: dict[str, Any] | None, as_of: int | None = None
    ) -> QueryContext:
        if as_of is not None:
            # Time travel: evaluate against the materialized snapshot.
            # Live attribute indexes reflect current state, so index
            # probes are disabled; the planner keys/stamps every plan
            # with the snapshot LSN (and builds scan-only plans).
            view, classifications = self._snapshot_view(as_of)
            return QueryContext(
                schema=view,  # type: ignore[arg-type]
                classifications=classifications,
                params=params or {},
                index_probe=None,
                telemetry=self.telemetry,
                planner=self.planner,
                adjacency=(
                    AdjacencyCache(view)  # type: ignore[arg-type]
                    if self.planner is not None
                    else None
                ),
                as_of=as_of,
            )
        return QueryContext(
            schema=self.schema,
            classifications=self._classifications,
            params=params or {},
            index_probe=self.indexes.probe,
            telemetry=self.telemetry,
            planner=self.planner,
            adjacency=(
                AdjacencyCache(self.schema)
                if self.planner is not None
                else None
            ),
        )

    @staticmethod
    def _strip_mode(text: str) -> tuple[str | None, str]:
        head, _, rest = text.lstrip().partition(" ")
        if head.lower() in ("explain", "profile") and rest.strip():
            return head.lower(), rest.strip()
        return None, text

    def _run_plan_report(
        self,
        mode: str,
        text: str,
        params: dict[str, Any] | None,
        as_of: int | None = None,
    ) -> dict[str, Any]:
        """Shared body of EXPLAIN and PROFILE (§6.1.5.3 made visible)."""
        ast = parse(text)
        context = self._context(params, as_of=as_of)
        if mode == "profile":
            # PROFILE always traces, even when telemetry is disabled:
            # the caller asked for this one query's structure.
            local = Telemetry(enabled=True)
            context.telemetry = local
        started = time.perf_counter_ns()
        result = Evaluator(context).run(ast)
        elapsed_ms = (time.perf_counter_ns() - started) / 1e6
        report: dict[str, Any] = {
            "mode": mode,
            "query": text,
            "plan": context.plan.as_dict(),
            "rows": _result_size(result),
        }
        if mode == "profile":
            report["elapsed_ms"] = round(elapsed_ms, 4)
            report["spans"] = local.tracer.snapshot()
        return report

    def explain(
        self, text: str, params: dict[str, Any] | None = None
    ) -> QueryPlanInfo:
        """Evaluate and return the plan info (index use, extent scans)."""
        ast = parse(text)
        context = self._context(params)
        Evaluator(context).run(ast)
        return context.plan

    def profile(
        self, text: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Run ``text`` with tracing forced on; return the full report."""
        return self._run_plan_report("profile", text, params)

    # -- introspection --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        info = describe_schema(self.schema)
        info["indexes"] = [index.name for index in self.indexes.indexes()]
        info["rules"] = [rule.name for rule in self.rules.rules()]
        info["transactions"] = self.transactions.snapshot()
        if self.planner is not None:
            info["planner"] = self.planner.snapshot()
        if self._sessions is not None:
            info["sessions"] = self._sessions.snapshot()
        if self._classifications is not None:
            info["classifications"] = self._classifications.names()
        if self._views is not None:
            info["views"] = self._views.names()
        if self.store is not None:
            info["storage"] = self.store.stats.snapshot() | {
                "file_size": self.store.file_size,
                "objects": len(self.store),
            }
        return info

    def check_integrity(self) -> list[str]:
        """Schema-level integrity plus all invariant rules."""
        problems = self.schema.check_integrity()
        problems.extend(
            f"rule {v.rule_name}: {v.message} (oid {v.target_oid})"
            for v in self.rules.check_all_invariants()
        )
        return problems


class DatabaseSnapshot:
    """A pinned, consistent point-in-time handle over one database.

    Holds a GC pin for its LSN so every version reachable at that
    point stays materializable for the handle's lifetime.  All reads
    (queries, object access, classifications) resolve against the
    version chains — writers are never blocked and never observed.
    """

    def __init__(self, db: PrometheusDB, lsn: int, pin: Any) -> None:
        self.db = db
        self.lsn = lsn
        self._pin = pin
        self._released = False

    # -- reads ---------------------------------------------------------------

    def query(
        self, text: str, params: dict[str, Any] | None = None
    ) -> Any:
        self._check_open()
        return self.db.query(text, params, as_of=self.lsn)

    @property
    def schema(self) -> SnapshotSchema:
        """The materialized read-only object layer at this LSN."""
        self._check_open()
        view, _ = self.db._snapshot_view(self.lsn)
        return view

    @property
    def classifications(self) -> ClassificationManager:
        """Classifications as they stood at this LSN (time travel)."""
        self._check_open()
        _, classifications = self.db._snapshot_view(self.lsn)
        return classifications

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pin.release()

    def _check_open(self) -> None:
        if self._released:
            raise SnapshotError(f"snapshot at lsn {self.lsn} was released")

    def __enter__(self) -> "DatabaseSnapshot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover
        state = "released" if self._released else "pinned"
        return f"<DatabaseSnapshot lsn={self.lsn} {state}>"


def _result_size(result: Any) -> int:
    if isinstance(result, list):
        return len(result)
    return 1 if result is not None else 0
