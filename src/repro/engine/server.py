"""Threaded HTTP front end (thesis §6.1.7).

A small JSON/REPB API over a :class:`~repro.engine.database.PrometheusDB`,
playing the role of the prototype's HTTP server: remote clients (the
thesis's taxonomic front-ends) browse the schema, fetch objects, run
POOL queries and inspect classifications without linking the database.

All routing, serialization, tracing and metrics live in the transport-
agnostic :mod:`repro.engine.handlers` core, which this module shares
with the asyncio front end (:mod:`repro.engine.aserver`); the class
here is only the stdlib ``ThreadingHTTPServer`` transport — one thread
per connection, HTTP/1.0, a new connection per request.  It is the
simple, obviously-correct baseline the differential conformance suite
(``tests/engine/test_server_differential.py``) measures the async
server against, and the baseline the throughput bench reports speedups
over.

Endpoints::

    GET  /schema                      — class metaobjects
    GET  /classes/<name>              — one class description
    GET  /classes/<name>/extent       — instance OIDs (polymorphic)
    GET  /objects/<oid>               — one object's state
    GET  /classifications             — classification names
    GET  /classifications/<name>      — nodes + edges of one classification
    GET  /health                      — aggregate: liveness, recovery,
                                        breakers, replication
    GET  /health/liveness             — cheap am-I-up probe (no store
                                        locks; the HA detector's target)
    GET  /health/readiness            — 200/503: may this node serve?
    GET  /metrics                     — Prometheus text exposition
    GET  /stats                       — telemetry snapshot (JSON)
    GET  /trace/<trace_id>            — this node's retained spans of
                                        one (possibly cross-node) trace
    GET  /events?since=<seq>          — HA/replication lifecycle journal
    GET  /cluster/metrics             — scatter-gather merge of every
                                        peer's /metrics (federation)
    GET  /cluster/overview            — per-node role/epoch/LSN/lag/
                                        breaker summary (+ supervisor)
    POST /query                       — {"query": "...", "params": {...}}
                                        (text may start with EXPLAIN or
                                        PROFILE for a plan report;
                                        ``?as_of=LSN`` or ``"as_of"`` in
                                        the body time-travels the read —
                                        404 when outside the retained
                                        MVCC window)
    POST /resolve                     — {"names": [...], "attr": "name",
                                        "class": c?, "lineage": bool,
                                        "classification": n?, "as_of": l?}
                                        batched name→object/lineage
                                        resolution in one round-trip

Replication (repro.replication)::

    POST /replicate/pull              — {"from_lsn": n, "prefix_crc": c,
                                        "wait_s": w} → 200 binary frame,
                                        204 caught-up, 409 diverged
                                        (primary role only)
    GET  /replicate/status            — shipper/applier status + role

High availability (repro.ha, active when an ``HAController`` is wired)::

    GET  /ha/status                   — role, epoch, fencing, lease
    POST /ha/promote                  — {"epoch": n} replica → primary
    POST /ha/demote                   — {"epoch": n, "primary_url": u}
    POST /ha/repoint                  — {"primary_url": u, "epoch": n}
    POST /ha/lease                    — {"epoch": n, "ttl_s": t}

A server wired as a *replica* (``replica_client`` set) answers 403 to
``/session/<id>/apply`` and ``/commit`` with the primary's URL in the
body, so write clients can follow the topology.  A *fenced* ex-primary
(deposed by a newer cluster epoch) answers 409 with the current epoch
on writes and pulls — see ``docs/HA.md``.  Read queries carry the
serving node's ``lsn`` so clients can enforce staleness bounds.

Session-scoped transactions (repro.concurrency)::

    POST /session                     — issue a token; 201 {"session": id}
    GET  /session/<id>                — session status
    POST /session/<id>/query          — POOL query (read-committed view)
    POST /session/<id>/apply          — {"ops": [...]} staged mutations
    POST /session/<id>/commit         — commit; 409 + {"conflict": true,
                                        "conflict_kind": "write-write",
                                        "stale_oids": [...]} when
                                        write-write validation rejects
                                        (fencing/demotion 409s carry
                                        their own conflict_kind)
    POST /session/<id>/abort          — discard the overlay
    POST /session/<id>/release        — end the session

Unknown/expired session tokens answer 404.  Mutations staged through
``/apply`` are invisible to every other client until ``/commit``; the
classic endpoints stay on the implicit autocommit session.

The server is synchronous and threaded; concurrent writers go through
sessions and the optimistic transaction manager.

Content negotiation, the pre-serialized response cache and the
observability contract (access log, ``repro_http_*`` metrics, W3C
``traceparent`` adoption, ``X-Repro-Trace-Id``) are documented in
:mod:`repro.engine.handlers` and ``docs/SERVER.md``.
"""

from __future__ import annotations

import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .database import PrometheusDB
from .federation import Federation
from .handlers import HttpHandlers, Request, jsonable  # noqa: F401  (re-export)

_server_logger = logging.getLogger("repro.server")


class _Handler(BaseHTTPRequestHandler):
    """Thin stdlib transport: parse → :meth:`HttpHandlers.handle` → write."""

    core: HttpHandlers  # injected by PrometheusServer

    # Route protocol-level chatter through the stdlib logging tree
    # instead of discarding it (or spamming stderr).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _server_logger.debug(
            "%s - %s", self.address_string(), format % args
        )

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch()

    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        request = Request(
            method=self.command or "?",
            path=self.path or "/",
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
        )
        self._write_response(self.core.handle(request))

    def _write_response(self, response: Any) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # Client hung up mid-response; drop the connection quietly
            # instead of letting the handler thread die noisily.
            self.close_connection = True


class PrometheusServer:
    """Threaded HTTP server wrapper with clean startup/shutdown.

    ``federation`` (optional) is the node's client-side view of its
    peers; when provided, ``/health`` reports each peer's circuit-
    breaker state so an operator sees partitions from either side.
    """

    def __init__(
        self,
        db: PrometheusDB,
        host: str = "127.0.0.1",
        port: int = 0,
        federation: Federation | None = None,
        shipper: Any = None,
        replica_client: Any = None,
        primary_url: str | None = None,
        ha: Any = None,
        supervisor: Any = None,
    ):
        self.handlers = HttpHandlers(
            db,
            federation=federation,
            shipper=shipper,
            replica_client=replica_client,
            primary_url=primary_url,
            ha=ha,
            supervisor=supervisor,
            started_at=time.time(),
        )
        handler = type("BoundHandler", (_Handler,), {"core": self.handlers})
        self.ha = ha
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="prometheus-http", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "PrometheusServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
