"""HTTP access layer (thesis §6.1.7).

A small JSON API over a :class:`~repro.engine.database.PrometheusDB`,
playing the role of the prototype's HTTP server: remote clients (the
thesis's taxonomic front-ends) browse the schema, fetch objects, run
POOL queries and inspect classifications without linking the database.

Endpoints::

    GET  /schema                      — class metaobjects
    GET  /classes/<name>              — one class description
    GET  /classes/<name>/extent       — instance OIDs (polymorphic)
    GET  /objects/<oid>               — one object's state
    GET  /classifications             — classification names
    GET  /classifications/<name>      — nodes + edges of one classification
    GET  /health                      — aggregate: liveness, recovery,
                                        breakers, replication
    GET  /health/liveness             — cheap am-I-up probe (no store
                                        locks; the HA detector's target)
    GET  /health/readiness            — 200/503: may this node serve?
    GET  /metrics                     — Prometheus text exposition
    GET  /stats                       — telemetry snapshot (JSON)
    GET  /trace/<trace_id>            — this node's retained spans of
                                        one (possibly cross-node) trace
    GET  /events?since=<seq>          — HA/replication lifecycle journal
    GET  /cluster/metrics             — scatter-gather merge of every
                                        peer's /metrics (federation)
    GET  /cluster/overview            — per-node role/epoch/LSN/lag/
                                        breaker summary (+ supervisor)
    POST /query                       — {"query": "...", "params": {...}}
                                        (text may start with EXPLAIN or
                                        PROFILE for a plan report;
                                        ``?as_of=LSN`` or ``"as_of"`` in
                                        the body time-travels the read —
                                        404 when outside the retained
                                        MVCC window)

Replication (repro.replication)::

    POST /replicate/pull              — {"from_lsn": n, "prefix_crc": c,
                                        "wait_s": w} → 200 binary frame,
                                        204 caught-up, 409 diverged
                                        (primary role only)
    GET  /replicate/status            — shipper/applier status + role

High availability (repro.ha, active when an ``HAController`` is wired)::

    GET  /ha/status                   — role, epoch, fencing, lease
    POST /ha/promote                  — {"epoch": n} replica → primary
    POST /ha/demote                   — {"epoch": n, "primary_url": u}
    POST /ha/repoint                  — {"primary_url": u, "epoch": n}
    POST /ha/lease                    — {"epoch": n, "ttl_s": t}

A server wired as a *replica* (``replica_client`` set) answers 403 to
``/session/<id>/apply`` and ``/commit`` with the primary's URL in the
body, so write clients can follow the topology.  A *fenced* ex-primary
(deposed by a newer cluster epoch) answers 409 with the current epoch
on writes and pulls — see ``docs/HA.md``.  Read queries carry the
serving node's ``lsn`` so clients can enforce staleness bounds.

Session-scoped transactions (repro.concurrency)::

    POST /session                     — issue a token; 201 {"session": id}
    GET  /session/<id>                — session status
    POST /session/<id>/query          — POOL query (read-committed view)
    POST /session/<id>/apply          — {"ops": [...]} staged mutations
    POST /session/<id>/commit         — commit; 409 + {"conflict": true,
                                        "conflict_kind": "write-write",
                                        "stale_oids": [...]} when
                                        write-write validation rejects
                                        (fencing/demotion 409s carry
                                        their own conflict_kind)
    POST /session/<id>/abort          — discard the overlay
    POST /session/<id>/release        — end the session

Unknown/expired session tokens answer 404.  Mutations staged through
``/apply`` are invisible to every other client until ``/commit``; the
classic endpoints stay on the implicit autocommit session.

The server is synchronous and threaded; concurrent writers go through
sessions and the optimistic transaction manager.

Observability: every request is counted and timed in the database's
telemetry registry, and logged as a structured access-log entry on the
``repro.server`` stdlib logger (protocol-level chatter from the stdlib
handler goes to the same logger at DEBUG instead of stderr).  Every
request also participates in distributed tracing: an inbound
``traceparent`` header (W3C trace context) is adopted so the request's
spans join the caller's trace, the trace id is returned in the
``X-Repro-Trace-Id`` response header and stamped into the access log
and 4xx/5xx payloads, and the node's recent spans are queryable at
``GET /trace/<trace_id>`` — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, unquote, urlparse

from ..classification import GraphView
from ..core.identity import OidRef
from ..core.instances import PObject
from ..core.metamodel import describe_class
from ..core.relationships import RelationshipInstance
from ..concurrency import Session
from ..errors import (
    ConflictError,
    NodeDemotedError,
    PrometheusError,
    SchemaError,
    SessionError,
    SnapshotError,
    StalePrimaryError,
)
from ..telemetry import propagation
from .database import PrometheusDB
from .federation import Federation

_server_logger = logging.getLogger("repro.server")
_access_logger = logging.getLogger("repro.server.access")


def jsonable(value: Any) -> Any:
    """Convert query results / object state to JSON-safe structures."""
    if isinstance(value, PObject):
        data: dict[str, Any] = {
            "oid": value.oid,
            "class": value.pclass.name,
            "values": {k: jsonable(v) for k, v in value.attributes()},
        }
        if isinstance(value, RelationshipInstance):
            data["origin"] = value.origin_oid
            data["destination"] = value.destination_oid
        return data
    if isinstance(value, OidRef):
        return {"ref": value.oid}
    if isinstance(value, GraphView):
        return {
            "name": value.name,
            "nodes": {str(k): jsonable(v) for k, v in value.nodes.items()},
            "edges": [
                {
                    "from": p,
                    "to": c,
                    "relationship": r,
                    "attributes": jsonable(a),
                }
                for p, c, r, a in value.edges
            ],
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class _Handler(BaseHTTPRequestHandler):
    db: PrometheusDB  # injected by make_server
    federation: Federation | None = None  # optional, injected by make_server
    started_at: float = 0.0  # server start time, injected by make_server
    # Replication wiring (both optional, injected by PrometheusServer):
    # a LogShipper makes this node a primary, a ReplicationClient makes
    # it a replica serving reads and refusing writes.
    shipper: Any = None
    replica_client: Any = None
    primary_url: str | None = None
    # Optional HAController: when set, it owns the mutable role state
    # (promotion swaps shipper/replica_client under the server's feet),
    # so every role-sensitive route goes through the _shipper()/
    # _replica_client()/_primary() helpers instead of the class attrs.
    ha: Any = None
    # Optional FailoverCoordinator: merged into /cluster/overview so the
    # aggregate view carries phi values and failover history.
    supervisor: Any = None

    def _shipper(self) -> Any:
        return self.ha.shipper if self.ha is not None else self.shipper

    def _replica_client(self) -> Any:
        if self.ha is not None:
            return self.ha.replica_client
        return self.replica_client

    def _primary(self) -> str | None:
        if self.ha is not None:
            return self.ha.primary_url
        return self.primary_url

    # Route protocol-level chatter through the stdlib logging tree
    # instead of discarding it (or spamming stderr).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _server_logger.debug(
            "%s - %s", self.address_string(), format % args
        )

    def _send(self, status: int, payload: Any) -> None:
        if status >= 400 and isinstance(payload, dict):
            # Error bodies carry the trace id so a client retry loop
            # (conflict, stale-primary) can be correlated with the
            # server-side spans that produced each rejection.
            trace_id = getattr(self, "_trace_id", None)
            if trace_id and "trace_id" not in payload:
                payload = dict(payload, trace_id=trace_id)
        body = json.dumps(payload, indent=2).encode("utf-8")
        self._send_bytes(status, "application/json", body)

    def _send_bytes(self, status: int, content_type: str, body: bytes) -> None:
        self._status = status
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            trace_id = getattr(self, "_trace_id", None)
            if trace_id:
                self.send_header("X-Repro-Trace-Id", trace_id)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # Client hung up mid-response; drop the connection quietly
            # instead of letting the handler thread die noisily.
            self.close_connection = True

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._handle(self._route_post)

    def _handle(self, route: Any) -> None:
        """Route + catch errors + emit the access log and HTTP metrics.

        Trace propagation happens here, once for every route: an inbound
        ``traceparent`` header is activated *as-is* (so the server span's
        parent is exactly the caller's recorded span id — the linkage a
        cross-node trace join relies on), a per-request ``http.request``
        span is opened when telemetry is enabled, and the trace id is
        stamped into the response header, error payloads and access log.
        """
        self._status = 0
        started = time.perf_counter_ns()
        method = self.command or "?"
        remote = propagation.parse_traceparent(self.headers.get("traceparent"))
        if remote is not None:
            propagation.push(remote)
        tel = self.db.telemetry
        span = None
        if tel.enabled:
            span = tel.tracer.span(
                "http.request",
                method=method,
                path=urlparse(self.path or "").path,
            )
            span.__enter__()
            self._trace_id = span.trace_id
        else:
            self._trace_id = remote.trace_id if remote is not None else None
        try:
            route()
        except PrometheusError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")
        finally:
            if span is not None:
                span.set("status", self._status)
                span.__exit__(None, None, None)
            if remote is not None:
                propagation.pop(remote)
            duration_ms = (time.perf_counter_ns() - started) / 1e6
            path = self.path or "?"
            _access_logger.info(
                "%s %s status=%d duration_ms=%.2f trace=%s",
                method,
                path,
                self._status,
                duration_ms,
                self._trace_id or "-",
                extra={
                    "http_method": method,
                    "http_path": path,
                    "http_status": self._status,
                    "duration_ms": round(duration_ms, 3),
                    "trace_id": self._trace_id,
                },
            )
            if tel.enabled:
                tel.registry.counter(
                    "repro_http_requests_total",
                    {"method": method, "status": str(self._status)},
                    help="HTTP requests served",
                ).inc()
                tel.registry.histogram(
                    "repro_http_request_ms",
                    help="HTTP request handling latency (ms)",
                ).observe(duration_ms)

    def _route_get(self) -> None:
        db = self.db
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        if len(parts) == 2 and parts[0] == "trace":
            trace_id = parts[1].lower()
            spans = db.telemetry.traces.spans(trace_id)
            if not spans:
                self._error(404, f"no spans retained for trace {parts[1]!r}")
                return
            self._send(
                200,
                {
                    "trace_id": trace_id,
                    "node": db.telemetry.traces.node,
                    "spans": spans,
                },
            )
            return
        if parts == ["events"]:
            query = parse_qs(parsed.query)
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._error(400, "'since' must be an integer")
                return
            journal = db.telemetry.events
            self._send(
                200,
                {
                    "node": journal.node,
                    "last_seq": journal.last_seq,
                    "events": journal.events(since=since),
                },
            )
            return
        if parts == ["cluster", "metrics"]:
            if self.federation is None:
                self._error(404, "this node aggregates no cluster")
                return
            self._send(200, self.federation.cluster_metrics())
            return
        if parts == ["cluster", "overview"]:
            if self.federation is None:
                self._error(404, "this node aggregates no cluster")
                return
            overview = self.federation.cluster_overview()
            if self.supervisor is not None:
                overview["supervisor"] = self.supervisor.status()
            self._send(200, overview)
            return
        if parts == ["health"]:
            self._send(200, self._health_payload())
            return
        if parts == ["health", "liveness"]:
            # Deliberately minimal: plain attribute reads only, no store
            # or session locks — a node wedged on a lock still answers,
            # and the failure detector measures *process* liveness.
            self._send(
                200,
                {
                    "status": "alive",
                    "role": self._role(),
                    "epoch": self.ha.epoch
                    if self.ha is not None
                    else (
                        db.store.cluster_epoch
                        if db.store is not None
                        else 0
                    ),
                    "uptime_s": round(time.time() - self.started_at, 3)
                    if self.started_at
                    else None,
                },
            )
            return
        if parts == ["health", "readiness"]:
            ready, reasons = self._readiness()
            self._send(
                200 if ready else 503,
                {"ready": ready, "reasons": reasons, "role": self._role()},
            )
            return
        if parts == ["ha", "status"]:
            if self.ha is None:
                self._error(404, "this node has no HA controller")
                return
            self._send(200, self.ha.status())
            return
        if parts == ["metrics"]:
            text = self.db.telemetry.registry.render_prometheus()
            self._send_bytes(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"),
            )
            return
        if parts == ["stats"]:
            self._send(200, self.db.telemetry.snapshot())
            return
        if parts == ["schema"]:
            self._send(200, jsonable(db.describe()))
            return
        if len(parts) >= 2 and parts[0] == "classes":
            name = parts[1]
            if not db.schema.has_class(name):
                self._error(404, f"unknown class {name!r}")
                return
            if len(parts) == 2:
                self._send(200, jsonable(describe_class(db.schema.get_class(name))))
                return
            if len(parts) == 3 and parts[2] == "extent":
                self._send(
                    200, [obj.oid for obj in db.schema.extent(name)]
                )
                return
        if len(parts) == 2 and parts[0] == "objects":
            try:
                oid = int(parts[1])
            except ValueError:
                self._error(400, "oid must be an integer")
                return
            if not db.schema.has_object(oid):
                self._error(404, f"no object {oid}")
                return
            self._send(200, jsonable(db.schema.get_object(oid)))
            return
        if len(parts) == 2 and parts[0] == "session":
            try:
                session = db.sessions.get(parts[1])
            except SessionError as exc:
                self._error(404, str(exc))
                return
            self._send(200, session.info())
            return
        if parts == ["replicate", "status"]:
            shipper = self._shipper()
            replica_client = self._replica_client()
            payload: dict[str, Any] = {
                "role": self._role(),
                "commit_lsn": db.store.commit_lsn
                if db.store is not None
                else None,
                "applied_lsn": db.store.commit_lsn
                if db.store is not None
                else None,
                "epoch": self.ha.epoch
                if self.ha is not None
                else (
                    db.store.cluster_epoch if db.store is not None else 0
                ),
                # The reign the log's data belongs to — the failover
                # census ranks candidates by this, not the wire epoch.
                "log_epoch": db.store.cluster_epoch
                if db.store is not None
                else 0,
            }
            if shipper is not None:
                payload["shipping"] = shipper.status()
            if replica_client is not None:
                payload["applying"] = replica_client.status()
                payload["primary_url"] = self._primary()
            self._send(200, payload)
            return
        if parts == ["classifications"]:
            self._send(200, db.classifications.names())
            return
        if len(parts) == 2 and parts[0] == "classifications":
            name = parts[1]
            if name not in db.classifications:
                self._error(404, f"unknown classification {name!r}")
                return
            classification = db.classifications.get(name)
            self._send(
                200,
                {
                    "name": classification.name,
                    "author": classification.author,
                    "year": classification.year,
                    "edges": [
                        {
                            "oid": e.oid,
                            "from": e.origin_oid,
                            "to": e.destination_oid,
                            "relationship": e.pclass.name,
                        }
                        for e in classification.edges()
                    ],
                    "roots": [r.oid for r in classification.roots()],
                },
            )
            return
        self._error(404, f"no route for {self.path!r}")

    def _health_payload(self) -> dict[str, Any]:
        """Store/recovery status for operators and federation probes.

        ``status`` is ``"ok"`` for an in-memory or cleanly recovered
        database and ``"degraded"`` when the last recovery had to drop,
        truncate, or salvage anything — a node that lost data says so.
        """
        db = self.db
        store = db.store
        payload: dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3)
            if self.started_at
            else None,
            "classes": sum(1 for _ in db.schema.classes()),
            "classifications": len(db.classifications.names()),
            "store": None,
            "telemetry": db.telemetry.summary(),
            "transactions": db.transactions.snapshot(),
            "sessions": db._sessions.snapshot()
            if db._sessions is not None
            else None,
        }
        if store is not None:
            report = getattr(store, "last_recovery", None)
            payload["store"] = {
                "path": store.path,
                "file_size": store.file_size,
                "live_records": len(store),
                "in_transaction": store.in_transaction,
                # A store without a recovery report (never recovered, or
                # a minimal store implementation) is not an error: the
                # health check reports the absence and stays "ok".
                "recovery": report.as_dict() if report is not None else None,
            }
            if report is not None and not report.clean:
                payload["status"] = "degraded"
        if self.federation is not None:
            payload["federation"] = {
                name: {
                    "breaker": self.federation.breaker(name).state,
                    "consecutive_failures": self.federation.breaker(
                        name
                    ).consecutive_failures,
                }
                for name in sorted(self.federation.nodes)
            }
        shipper = self._shipper()
        replica_client = self._replica_client()
        if shipper is not None or replica_client is not None:
            replication: dict[str, Any] = {"role": self._role()}
            if shipper is not None:
                status = shipper.status()
                replication["commit_lsn"] = status["commit_lsn"]
                replication["replicas"] = status["replicas"]
                replication["lag_bytes"] = status["lag_bytes"]
                replication["epoch"] = status.get("epoch", 0)
            if replica_client is not None:
                replication["applying"] = replica_client.status()
                if not replica_client.running:
                    payload["status"] = "degraded"
            payload["replication"] = replication
        if self.ha is not None:
            payload["ha"] = self.ha.status()
        return payload

    def _readiness(self) -> tuple[bool, list[str]]:
        """May this node serve its role right now?  (reasons when not)

        A fenced node is not ready (clients should go to the successor),
        a replica whose pull loop died is not ready (it only gets
        staler), a store that needed salvage on recovery is not ready
        until an operator looks at it.
        """
        reasons: list[str] = []
        store = self.db.store
        if store is not None:
            report = getattr(store, "last_recovery", None)
            if report is not None and not report.clean:
                reasons.append("recovery-not-clean")
        if self.ha is not None and self.ha.fenced:
            reasons.append("fenced")
        replica_client = self._replica_client()
        if replica_client is not None and not replica_client.running:
            reasons.append("pull-loop-stopped")
        return not reasons, reasons

    def _role(self) -> str:
        if self.ha is not None:
            return self.ha.role if not self.ha.fenced else "fenced"
        if self._replica_client() is not None:
            return "replica"
        if self._shipper() is not None:
            return "primary"
        return "standalone"

    def _run_query(
        self,
        text: str,
        params: dict[str, Any] | None,
        as_of: int | None = None,
    ) -> Any:
        """Run a read, under the applier's read lock on a replica so the
        result is a commit-boundary snapshot, never a half-applied
        batch.  ``as_of`` reads resolve against immutable version
        chains, so on a replica they skip the applier's read lock
        entirely — time travel never waits behind a splice."""
        replica_client = self._replica_client()
        if replica_client is not None:
            return replica_client.applier.query(text, params=params, as_of=as_of)
        return self.db.query(text, params=params, as_of=as_of)

    def _query_as_of(self, payload: dict[str, Any]) -> int | None:
        """``as_of`` from the JSON body or the ``?as_of=`` query string."""
        as_of = payload.get("as_of")
        if as_of is None:
            values = parse_qs(urlparse(self.path).query).get("as_of")
            if values:
                as_of = values[0]
        if as_of is None:
            return None
        try:
            return int(as_of)
        except (TypeError, ValueError):
            raise SnapshotError(
                f"as_of must be an integer LSN, got {as_of!r}"
            ) from None

    def _route_post(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._error(400, "invalid JSON body")
            return
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["query"]:
            text = payload.get("query", "")
            params = payload.get("params", {})
            if not isinstance(text, str) or not text.strip():
                self._error(400, "missing 'query'")
                return
            try:
                as_of = self._query_as_of(payload)
                result = self._run_query(text, params, as_of=as_of)
            except SnapshotError as exc:
                mvcc = self.db.mvcc
                self._send(
                    404,
                    {
                        "error": str(exc),
                        "snapshot": "unavailable",
                        "floor": mvcc.floor if mvcc is not None else 0,
                        "head": self.db.lsn,
                    },
                )
                return
            except PrometheusError as exc:
                self._error(400, str(exc))
                return
            body: dict[str, Any] = {"result": jsonable(result)}
            if as_of is not None:
                body["as_of"] = as_of
            if self.db.store is not None:
                # The LSN this read reflects; router/checker clients use
                # it to verify their staleness bound was honoured.
                body["lsn"] = self.db.store.commit_lsn
            self._send(200, body)
            return
        if parts == ["replicate", "pull"]:
            self._route_pull(payload)
            return
        if parts and parts[0] == "ha":
            self._route_ha(parts[1:], payload)
            return
        if parts and parts[0] == "session":
            self._route_session(parts[1:], payload)
            return
        self._error(404, f"no route for {self.path!r}")

    def _route_pull(self, payload: dict[str, Any]) -> None:
        """One replica pull against the local shipper (primary role)."""
        shipper = self._shipper()
        if shipper is None:
            self._error(404, "this node does not ship its log")
            return
        try:
            from_lsn = int(payload.get("from_lsn", 0))
            wait_s = float(payload.get("wait_s", 0.0))
            prefix_crc = payload.get("prefix_crc")
            prefix_crc = None if prefix_crc is None else int(prefix_crc)
            max_bytes = payload.get("max_bytes")
            max_bytes = None if max_bytes is None else int(max_bytes)
            epoch = payload.get("epoch")
            epoch = None if epoch is None else int(epoch)
        except (TypeError, ValueError):
            self._error(400, "pull fields must be numeric")
            return
        if epoch is not None and self.ha is not None:
            # A puller reporting a higher epoch is proof of a promotion
            # this node missed: self-fence before even consulting the
            # shipper, so the write path closes in the same breath.
            self.ha.observe_epoch(epoch)
        status, frame = shipper.pull(
            from_lsn,
            prefix_crc=prefix_crc,
            wait_s=wait_s,
            max_bytes=max_bytes,
            replica=str(payload.get("replica", "")),
            epoch=epoch,
        )
        if status == "stale-primary":
            self._send(
                409,
                {
                    "status": "stale-primary",
                    "conflict_kind": "stale-primary",
                    "epoch": self.ha.epoch
                    if self.ha is not None
                    else shipper.epoch,
                    "primary_url": self._primary(),
                },
            )
            return
        if status == "diverged":
            self._send(
                409, {"status": "diverged", "conflict_kind": "diverged"}
            )
            return
        if status == "empty":
            self._send_bytes(204, "application/octet-stream", b"")
            return
        self._send_bytes(200, "application/octet-stream", frame or b"")

    def _route_ha(self, parts: list[str], payload: dict[str, Any]) -> None:
        """HA transitions, executed by the node's controller."""
        if self.ha is None:
            self._error(404, "this node has no HA controller")
            return
        action = parts[0] if len(parts) == 1 else None
        try:
            if action == "promote":
                lsn = self.ha.promote(int(payload.get("epoch", 0)))
                self._send(
                    200,
                    {
                        "promoted": True,
                        "epoch": self.ha.epoch,
                        "stamp_lsn": lsn,
                    },
                )
                return
            if action == "demote":
                self.ha.demote(
                    int(payload.get("epoch", 0)),
                    payload.get("primary_url"),
                )
                self._send(
                    200, {"demoted": True, "epoch": self.ha.epoch}
                )
                return
            if action == "repoint":
                self.ha.repoint(
                    str(payload.get("primary_url", "")),
                    int(payload.get("epoch", 0)),
                )
                client = self.ha.replica_client
                if client is not None and not client.running:
                    client.start()
                self._send(
                    200,
                    {
                        "repointed": True,
                        "primary_url": self.ha.primary_url,
                        "epoch": self.ha.epoch,
                    },
                )
                return
            if action == "lease":
                self.ha.grant_lease(
                    int(payload.get("epoch", 0)),
                    float(payload.get("ttl_s", 0.0)),
                )
                self._send(200, {"leased": True, "epoch": self.ha.epoch})
                return
        except StalePrimaryError as exc:
            self._send(
                409,
                {
                    "error": str(exc),
                    "status": "stale-primary",
                    "conflict_kind": "stale-primary",
                    "epoch": exc.epoch,
                    "primary_url": exc.primary_url or self._primary(),
                },
            )
            return
        except (TypeError, ValueError):
            self._error(400, "ha fields must be numeric")
            return
        self._error(404, f"no route for {self.path!r}")

    # -- session-scoped transactions (repro.concurrency) --------------------

    def _route_session(self, parts: list[str], payload: Any) -> None:
        db = self.db
        if not parts:  # POST /session — issue a token
            try:
                session = db.sessions.create()
            except SessionError as exc:
                self._error(429, str(exc))
                return
            self._send(201, {"session": session.session_id})
            return
        try:
            session = db.sessions.get(parts[0])
        except SessionError as exc:
            self._error(404, str(exc))
            return
        action = parts[1] if len(parts) == 2 else None
        if action == "query":
            text = payload.get("query", "")
            if not isinstance(text, str) or not text.strip():
                self._error(400, "missing 'query'")
                return
            # Queries run over committed state (read-committed): the
            # session's staged writes are not yet query-visible — see
            # docs/CONCURRENCY.md.
            try:
                as_of = self._query_as_of(payload)
                result = self._run_query(
                    text, payload.get("params", {}), as_of=as_of
                )
            except SnapshotError as exc:
                mvcc = db.mvcc
                self._send(
                    404,
                    {
                        "error": str(exc),
                        "snapshot": "unavailable",
                        "floor": mvcc.floor if mvcc is not None else 0,
                        "head": db.lsn,
                    },
                )
                return
            self._send(200, {"result": jsonable(result)})
            return
        if action in ("apply", "commit"):
            if self._replica_client() is not None:
                self._send(
                    403,
                    {
                        "error": "this node is a read replica; "
                        "writes go to the primary",
                        "primary_url": self._primary(),
                    },
                )
                return
            if self.ha is not None and not self.ha.writes_allowed():
                # Fenced (or lease-expired) ex-primary: 409 + the
                # current epoch, so the client rediscovers instead of
                # retrying against a node that can never accept.
                tel = db.telemetry
                if tel.enabled:
                    tel.registry.counter(
                        "repro_ha_fenced_writes_total",
                        help="Writes refused because this node is "
                        "fenced or lost its lease",
                    ).inc()
                self._send(
                    409,
                    {
                        "error": "this node is fenced: it is not the "
                        "current primary",
                        "conflict_kind": "fenced",
                        "stale_primary": True,
                        "epoch": self.ha.epoch,
                        "primary_url": self._primary(),
                        "retry": True,
                    },
                )
                return
        if action == "apply":
            ops = payload.get("ops")
            if not isinstance(ops, list):
                self._error(400, "missing 'ops' (a list)")
                return
            try:
                results = self._apply_ops(session, ops)
            except NodeDemotedError as exc:
                self._send_demoted(exc)
                return
            self._send(200, {"results": results})
            return
        if action == "commit":
            try:
                ts = session.commit()
            except NodeDemotedError as exc:
                self._send_demoted(exc)
                return
            except ConflictError as exc:
                # Machine-readable rejection: write-write validation
                # lost the race (vs the fencing/demotion 409s, which
                # carry their own conflict_kind).  ``stale_oids`` names
                # the objects another transaction committed first.
                self._send(
                    409,
                    {
                        "error": str(exc),
                        "conflict": True,
                        "conflict_kind": "write-write",
                        "stale_oids": list(exc.oids),
                        "retry": True,
                    },
                )
                return
            body: dict[str, Any] = {
                "committed": True,
                "commit_ts": ts,
                # For read-your-writes routing: reads bounded by this
                # LSN must go to nodes that have applied it.
                "commit_lsn": session.last_commit_lsn,
            }
            min_acks = payload.get("wait_replicated")
            shipper = self._shipper()
            if min_acks and shipper is not None:
                # Semi-synchronous ack: only report replicated=True once
                # the commit's bytes were pulled by that many replicas.
                body["replicated"] = shipper.wait_replicated(
                    session.last_commit_lsn or 0,
                    min_acks=int(min_acks),
                    timeout_s=float(payload.get("wait_timeout_s", 5.0)),
                )
            self._send(200, body)
            return
        if action == "abort":
            session.abort()
            self._send(200, {"aborted": True})
            return
        if action == "release":
            db.sessions.release(session.session_id)
            self._send(200, {"released": True})
            return
        self._error(404, f"no route for {self.path!r}")

    def _send_demoted(self, exc: NodeDemotedError) -> None:
        """The typed demotion answer: 409 + the successor's address."""
        self._send(
            409,
            {
                "error": str(exc),
                "demoted": True,
                "conflict_kind": "demoted",
                "epoch": exc.epoch,
                "primary_url": exc.primary_url or self._primary(),
                "retry": True,
            },
        )

    def _apply_ops(self, session: Session, ops: list[Any]) -> list[Any]:
        """Stage each op on the session's transaction, in order.

        Staging is fail-fast: an invalid op raises (→ 400) and ops after
        it are not staged; ops before it remain staged — the client
        decides whether to commit, abort, or re-send.
        """
        txn = session.txn
        results: list[Any] = []
        for op in ops:
            if not isinstance(op, dict):
                raise SchemaError("each op must be an object")
            kind = op.get("op")
            try:
                self._apply_one(txn, kind, op, results)
            except KeyError as exc:
                raise SchemaError(
                    f"op {kind!r} is missing field {exc.args[0]!r}"
                ) from None
        return results

    def _apply_one(
        self, txn: Any, kind: Any, op: dict[str, Any], results: list[Any]
    ) -> None:
        if kind == "create":
            oid = txn.create(op["class"], **op.get("attrs", {}))
            results.append({"oid": oid})
        elif kind == "set":
            txn.set(int(op["oid"]), op["attr"], op.get("value"))
            results.append({"ok": True})
        elif kind == "update":
            txn.update(int(op["oid"]), **op.get("attrs", {}))
            results.append({"ok": True})
        elif kind == "delete":
            txn.delete(int(op["oid"]), cascade=op.get("cascade", True))
            results.append({"ok": True})
        elif kind == "relate":
            oid = txn.relate(
                op["class"],
                int(op["origin"]),
                int(op["destination"]),
                participants={
                    role: int(v)
                    for role, v in op.get("participants", {}).items()
                }
                or None,
                **op.get("attrs", {}),
            )
            results.append({"oid": oid})
        elif kind == "unrelate":
            txn.unrelate(int(op["oid"]))
            results.append({"ok": True})
        elif kind == "get":
            results.append({"values": jsonable(txn.get(int(op["oid"])))})
        else:
            raise SchemaError(f"unknown op {kind!r}")


class PrometheusServer:
    """Threaded HTTP server wrapper with clean startup/shutdown.

    ``federation`` (optional) is the node's client-side view of its
    peers; when provided, ``/health`` reports each peer's circuit-
    breaker state so an operator sees partitions from either side.
    """

    def __init__(
        self,
        db: PrometheusDB,
        host: str = "127.0.0.1",
        port: int = 0,
        federation: Federation | None = None,
        shipper: Any = None,
        replica_client: Any = None,
        primary_url: str | None = None,
        ha: Any = None,
        supervisor: Any = None,
    ):
        if ha is not None:
            if shipper is None:
                shipper = ha.shipper
            if replica_client is None:
                replica_client = ha.replica_client
            if primary_url is None:
                primary_url = ha.primary_url
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "db": db,
                "federation": federation,
                "started_at": time.time(),
                "shipper": shipper,
                "replica_client": replica_client,
                "primary_url": primary_url,
                "ha": ha,
                "supervisor": supervisor,
            },
        )
        self.ha = ha
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="prometheus-http", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "PrometheusServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
