"""Whole-database export/import as JSON-safe documents.

Complements the storage engine with a portable interchange format:
everything the schema session holds — instances, relationship instances
(with participants), classifications, synonym sets, the trace log — is
serialised to one nested dict, loadable into any schema that declares the
same classes (use :mod:`repro.core.odl` to ship the schema as text
alongside).  OIDs are remapped on load, so a dump can be merged into a
non-empty database; the returned mapping lets callers relocate external
references.

Use cases: migrating between store files, seeding federation nodes,
archival snapshots, and test fixtures.
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any

from ..classification import ClassificationManager
from ..core.identity import OidRef
from ..core.instances import PObject
from ..core.relationships import RelationshipInstance
from ..core.schema import Schema
from ..errors import SchemaError

FORMAT = "prometheus-dump-v1"


def _storable_to_json(value: Any) -> Any:
    if isinstance(value, OidRef):
        return {"$ref": value.oid}
    if isinstance(value, _dt.datetime):
        return {"$datetime": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$date": value.isoformat()}
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_storable_to_json(v) for v in value]
    if isinstance(value, dict):
        return {k: _storable_to_json(v) for k, v in value.items()}
    return value


def _json_to_storable(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$ref"}:
            return OidRef(int(value["$ref"]))
        if set(value) == {"$datetime"}:
            return _dt.datetime.fromisoformat(value["$datetime"])
        if set(value) == {"$date"}:
            return _dt.date.fromisoformat(value["$date"])
        if set(value) == {"$bytes"}:
            return bytes.fromhex(value["$bytes"])
        return {k: _json_to_storable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_to_storable(v) for v in value]
    return value


def dump_schema(
    schema: Schema,
    classifications: ClassificationManager | None = None,
) -> dict[str, Any]:
    """Export the session's instance data as one JSON-safe document."""
    objects: list[dict[str, Any]] = []
    relationships: list[dict[str, Any]] = []
    for obj in schema.all_objects():
        record = schema._to_record(obj)
        entry = {
            "oid": obj.oid,
            "class": record["class"],
            "values": _storable_to_json(record["values"]),
        }
        if isinstance(obj, RelationshipInstance):
            entry["origin"] = obj.origin_oid
            entry["destination"] = obj.destination_oid
            if obj.participant_oids:
                entry["participants"] = dict(obj.participant_oids)
            relationships.append(entry)
        else:
            objects.append(entry)
    document: dict[str, Any] = {
        "format": FORMAT,
        "schema_name": schema.name,
        "objects": objects,
        "relationships": relationships,
        "synonyms": schema.synonyms.to_storable(),
    }
    if classifications is not None:
        document["classifications"] = [
            {
                "name": c.name,
                "author": c.author,
                "year": c.year,
                "publication": c.publication,
                "description": c.description,
                "edges": sorted(c._edge_oids),
            }
            for c in classifications
        ]
    return document


def dump_json(
    schema: Schema,
    classifications: ClassificationManager | None = None,
    indent: int | None = None,
) -> str:
    """Export as JSON text."""
    return json.dumps(dump_schema(schema, classifications), indent=indent)


def _remap_value(value: Any, oid_map: dict[int, int]) -> Any:
    if isinstance(value, OidRef):
        if value.oid in oid_map:
            return OidRef(oid_map[value.oid])
        return value
    if isinstance(value, list):
        return [_remap_value(v, oid_map) for v in value]
    if isinstance(value, dict):
        return {k: _remap_value(v, oid_map) for k, v in value.items()}
    return value


def load_dump(
    schema: Schema,
    document: dict[str, Any] | str,
    classifications: ClassificationManager | None = None,
) -> dict[int, int]:
    """Load a dump into ``schema``, remapping OIDs.

    The target schema must declare every class the dump uses.  Returns
    the old-OID → new-OID mapping.  Events are muted during the load
    (rules re-audit afterwards via ``check_all_invariants`` if desired);
    relationship semantics are still *indexed* so later operations see a
    consistent registry.
    """
    if isinstance(document, str):
        document = json.loads(document)
    if document.get("format") != FORMAT:
        raise SchemaError(
            f"not a Prometheus dump (format={document.get('format')!r})"
        )
    oid_map: dict[int, int] = {}
    with schema.events.muted():
        # First pass: allocate handles (values follow once every OID is
        # known, so forward references remap correctly).  This goes
        # through the schema's internal install path because required
        # attributes are legitimately absent until the second pass.
        for entry in document["objects"]:
            pclass = schema.get_class(entry["class"])
            if pclass.is_relationship_class:
                raise SchemaError(
                    f"object entry uses relationship class {pclass.name!r}"
                )
            if pclass.abstract:
                raise SchemaError(f"class {pclass.name!r} is abstract")
            new = PObject(schema._new_oid(), pclass, schema, pclass.defaults())
            schema._install(new)
            schema._journal.record(
                lambda obj=new: schema._uninstall(obj)
            )
            oid_map[int(entry["oid"])] = new.oid
        # Second pass: attribute values (references now remappable).
        for entry in document["objects"]:
            obj = schema.get_object(oid_map[int(entry["oid"])])
            values = _json_to_storable(entry["values"])
            for name, value in values.items():
                if not obj.pclass.has_attribute(name):
                    continue
                attr = obj.pclass.get_attribute(name)
                obj._values[name] = attr.type_spec.from_storable(
                    _remap_value(value, oid_map), None
                )
            obj._mark_dirty()
        for entry in document["relationships"]:
            origin = schema.get_object(oid_map[int(entry["origin"])])
            destination = schema.get_object(
                oid_map[int(entry["destination"])]
            )
            participants = {
                role: schema.get_object(oid_map[int(oid)])
                for role, oid in entry.get("participants", {}).items()
            }
            values = _json_to_storable(entry["values"])
            rel = schema.relate(
                entry["class"], origin, destination,
                participants=participants or None,
            )
            for name, value in values.items():
                if rel.pclass.has_attribute(name):
                    attr = rel.pclass.get_attribute(name)
                    rel._values[name] = attr.type_spec.from_storable(
                        _remap_value(value, oid_map), None
                    )
            rel._mark_dirty()
            oid_map[int(entry["oid"])] = rel.oid
    for group in document.get("synonyms", []):
        schema.synonyms.declare_all(
            oid_map[int(oid)] for oid in group if int(oid) in oid_map
        )
    if classifications is not None:
        for item in document.get("classifications", []):
            classification = classifications.create(
                item["name"],
                author=item.get("author", ""),
                year=item.get("year"),
                publication=item.get("publication", ""),
                description=item.get("description", ""),
            )
            for old_oid in item.get("edges", []):
                new_oid = oid_map.get(int(old_oid))
                if new_oid is not None and schema.has_object(new_oid):
                    edge = schema.get_object(new_oid)
                    if isinstance(edge, RelationshipInstance):
                        classification.add_edge(edge)
    return oid_map
