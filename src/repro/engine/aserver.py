"""Asyncio HTTP front end: keep-alive, pipelining, backpressure.

The threaded front end (:mod:`repro.engine.server`) spends most of a
hot read's budget on the transport: a thread per connection, a TCP
handshake per request (HTTP/1.0), and stdlib request parsing.  This
module serves the *same* :class:`~repro.engine.handlers.HttpHandlers`
core — every route, byte-identical bodies, proven by the differential
conformance suite — from a single-threaded ``asyncio`` event loop:

* **Keep-alive + pipelining** (HTTP/1.1): one connection carries many
  requests; a client may send the next request before the previous
  response arrives.  Responses are written strictly in request order
  (a reader coroutine parses and dispatches, a writer coroutine drains
  an ordered queue), so a pipelined client can never observe a
  reordering.
* **Bounded worker pool**: the engine is synchronous, so requests are
  bridged onto a ``ThreadPoolExecutor``.  The event loop itself never
  touches the engine, the access log, or serialization — parsing and
  socket I/O only — which is what keeps loop stalls bounded (the
  watchdog below measures them; the regression test asserts <50 ms
  under soak).
* **Backpressure instead of collapse**: when ``queue_cap`` requests
  are already queued-or-running, new requests are answered ``503``
  with a ``Retry-After`` header *immediately* — the loop stays
  responsive and the engine's latency stays flat while clients back
  off.  A connection cap bounds file descriptors the same way.
  Rejections are counted authoritatively on the loop thread and
  reconciled into ``repro_server_rejected_total`` at ``/metrics``
  scrape time.
* **Slow-loris defense**: a request that dribbles its head or body is
  cut off by ``header_timeout_s``/``body_timeout_s`` (408); an idle
  keep-alive connection is closed quietly after ``idle_timeout_s``.
  A stuck client holds one connection, never a worker thread.

The event-loop watchdog reschedules itself every 10 ms and records the
worst observed scheduling drift in ``max_stall_ms`` (exported as the
``repro_server_loop_max_stall_ms`` gauge) — if blocking work ever
creeps back onto the loop, the soak regression test catches it.

:class:`AsyncPrometheusServer` is drop-in API-compatible with
:class:`~repro.engine.server.PrometheusServer` (``url``, ``address``,
``start``/``stop``, context manager), so the CLI, federation, HA
harnesses and benches can swap front ends with one flag.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Any, Awaitable

from .database import PrometheusDB
from .federation import Federation
from .handlers import HttpHandlers, Request, Response

_server_logger = logging.getLogger("repro.server")

#: Watchdog self-reschedule period (seconds); drift beyond this is stall.
_WATCH_INTERVAL = 0.01

#: Per-connection cap on pipelined requests parsed ahead of the writer.
_PIPELINE_DEPTH = 64

#: Longest request head (request line + headers) we accept, in bytes.
_MAX_HEAD_BYTES = 32 * 1024

#: Largest request body we accept, in bytes.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class AsyncPrometheusServer:
    """Selector/asyncio HTTP server over the shared request handlers.

    The constructor takes the same node wiring as
    :class:`~repro.engine.server.PrometheusServer` plus the transport
    knobs (all keyword-only)::

        workers          worker threads bridging to the sync engine (8)
        queue_cap        max requests queued-or-running before 503 (64)
        max_connections  max open client connections (256)
        header_timeout_s slow-loris cutoff for a request head (5.0)
        body_timeout_s   slow-loris cutoff for a request body (10.0)
        idle_timeout_s   keep-alive idle cutoff (30.0)
        retry_after_s    Retry-After hint on 503 rejections (1)
    """

    def __init__(
        self,
        db: PrometheusDB,
        host: str = "127.0.0.1",
        port: int = 0,
        federation: Federation | None = None,
        shipper: Any = None,
        replica_client: Any = None,
        primary_url: str | None = None,
        ha: Any = None,
        supervisor: Any = None,
        *,
        workers: int = 8,
        queue_cap: int = 64,
        max_connections: int = 256,
        header_timeout_s: float = 5.0,
        body_timeout_s: float = 10.0,
        idle_timeout_s: float = 30.0,
        retry_after_s: int = 1,
    ):
        self.handlers = HttpHandlers(
            db,
            federation=federation,
            shipper=shipper,
            replica_client=replica_client,
            primary_url=primary_url,
            ha=ha,
            supervisor=supervisor,
            started_at=time.time(),
        )
        self.ha = ha
        self.workers = workers
        self.queue_cap = queue_cap
        self.max_connections = max_connections
        self.header_timeout_s = header_timeout_s
        self.body_timeout_s = body_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.retry_after_s = retry_after_s
        self._host = host
        self._port = port
        # Loop-thread-only state (no locks needed: the event loop is the
        # single writer; other threads only read for telemetry).
        self.rejected = 0  # requests answered 503 by backpressure
        self.connections_rejected = 0  # connections refused at the cap
        self.timeouts = 0  # slow-loris / idle cutoffs
        self.max_stall_ms = 0.0  # worst watchdog scheduling drift
        self._inflight = 0
        self._connections = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._closing = False
        self._address: tuple[str, int] | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        if db.telemetry.enabled:
            db.telemetry.registry.add_collector(self._collect)

    # -- telemetry ---------------------------------------------------------

    def _collect(self, registry: Any) -> None:
        registry.counter(
            "repro_server_rejected_total",
            help="Requests and connections refused by backpressure (503)",
        ).value = self.rejected + self.connections_rejected
        registry.counter(
            "repro_server_timeouts_total",
            help="Connections cut off by slow-loris or idle timeouts",
        ).value = self.timeouts
        registry.gauge(
            "repro_server_connections",
            help="Open client connections on the async front end",
        ).set(self._connections)
        registry.gauge(
            "repro_server_inflight_requests",
            help="Requests queued or running on the worker pool",
        ).set(self._inflight)
        registry.gauge(
            "repro_server_loop_max_stall_ms",
            help="Worst event-loop scheduling drift observed (ms)",
        ).set(round(self.max_stall_ms, 3))

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="prometheus-worker"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="prometheus-aio", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("async server failed to start in 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"async server failed to start: {self._startup_error}"
            )

    def _run(self) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._client, self._host, self._port)
            )
        except BaseException as exc:  # bind failure, bad host, ...
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        self._watch_last = loop.time()
        loop.call_later(_WATCH_INTERVAL, self._watchdog)
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def _watchdog(self) -> None:
        """Measure the loop's scheduling drift (== time the loop was
        blocked by something that should have been on a worker)."""
        loop = self._loop
        assert loop is not None
        now = loop.time()
        stall_ms = (now - self._watch_last - _WATCH_INTERVAL) * 1000.0
        if stall_ms > self.max_stall_ms:
            self.max_stall_ms = stall_ms
        self._watch_last = now
        if not self._closing:
            loop.call_later(_WATCH_INTERVAL, self._watchdog)

    def stop(self) -> None:
        loop = self._loop
        if loop is None or self._closing:
            return
        self._closing = True

        def _shutdown() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.call_soon(loop.stop)

        loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AsyncPrometheusServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- per-connection protocol -------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.max_connections:
            self.connections_rejected += 1
            try:
                writer.write(
                    _render(
                        _overloaded(self.retry_after_s), keep_alive=False
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._connections += 1
        queue: asyncio.Queue = asyncio.Queue(_PIPELINE_DEPTH)
        writer_task = asyncio.ensure_future(self._writer(queue, writer))
        try:
            first = True
            while not self._closing:
                try:
                    item = await self._read_request(reader, first=first)
                except asyncio.TimeoutError:
                    self.timeouts += 1
                    if not first or not reader.at_eof():
                        await queue.put((_completed(_timeout_408()), False))
                    break
                except (ConnectionError, OSError):
                    break
                first = False
                if item is None:  # clean EOF between requests
                    break
                request, keep_alive = item
                if isinstance(request, Response):  # parse-level rejection
                    await queue.put((_completed(request), False))
                    break
                await queue.put((self._dispatch(request), keep_alive))
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            try:
                await queue.put(None)
                await writer_task
            except asyncio.CancelledError:
                writer_task.cancel()
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._connections -= 1

    async def _read_request(
        self, reader: asyncio.StreamReader, first: bool
    ) -> "tuple[Request | Response, bool] | None":
        """Parse one HTTP request off the stream.

        Returns ``None`` on clean EOF, a ``(Request, keep_alive)`` pair
        normally, or a ``(Response, False)`` pair when the bytes are
        unserviceable (parse error, oversized).  Raises
        ``asyncio.TimeoutError`` on idle or slow-loris cutoff.
        """
        # The request line may take a while to *start* (keep-alive
        # reuse is idle time, not an attack) but once a request is in
        # flight its head must complete promptly.
        line = await asyncio.wait_for(
            reader.readline(),
            self.idle_timeout_s if not first else self.header_timeout_s,
        )
        if not line:
            return None
        deadline_head = asyncio.get_running_loop().time() + self.header_timeout_s
        if len(line) > _MAX_HEAD_BYTES:
            return _bad_request("request line too long"), False
        try:
            method, target, version = line.decode("latin-1").strip().split()
        except ValueError:
            return _bad_request("malformed request line"), False
        headers: dict[str, str] = {}
        head_bytes = len(line)
        while True:
            budget = deadline_head - asyncio.get_running_loop().time()
            if budget <= 0:
                raise asyncio.TimeoutError
            raw = await asyncio.wait_for(reader.readline(), budget)
            if raw in (b"\r\n", b"\n", b""):
                break
            head_bytes += len(raw)
            if head_bytes > _MAX_HEAD_BYTES:
                return _bad_request("request head too large"), False
            text = raw.decode("latin-1").rstrip("\r\n")
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            return _bad_request("invalid Content-Length"), False
        if length < 0 or length > _MAX_BODY_BYTES:
            return _bad_request("request body too large"), False
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), self.body_timeout_s
            )
        connection = headers.get("connection", "").lower()
        if version.upper() == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return Request(method, target, headers, body), keep_alive

    def _dispatch(self, request: Request) -> Awaitable[Response]:
        """Bridge one request onto the worker pool — or reject it now."""
        if self._inflight >= self.queue_cap:
            self.rejected += 1
            return _completed(_overloaded(self.retry_after_s))
        self._inflight += 1
        loop = self._loop
        assert loop is not None and self._pool is not None
        future = loop.run_in_executor(
            self._pool, self.handlers.handle, request
        )
        future.add_done_callback(self._request_done)
        return future

    def _request_done(self, _future: "asyncio.Future[Response]") -> None:
        self._inflight -= 1

    async def _writer(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Drain responses in request order (the pipelining contract)."""
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return
                awaitable, keep_alive = item
                try:
                    response = await awaitable
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    response = Response(
                        status=500,
                        body=json.dumps(
                            {"error": f"{type(exc).__name__}: {exc}"},
                            indent=2,
                        ).encode("utf-8"),
                    )
                writer.write(_render(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            return  # client went away mid-response


def _completed(response: Response) -> "asyncio.Future[Response]":
    future: asyncio.Future = asyncio.get_running_loop().create_future()
    future.set_result(response)
    return future


def _overloaded(retry_after_s: int) -> Response:
    return Response(
        status=503,
        body=json.dumps(
            {"error": "server overloaded; retry later"}, indent=2
        ).encode("utf-8"),
        headers=[("Retry-After", str(retry_after_s))],
    )


def _bad_request(message: str) -> Response:
    return Response(
        status=400,
        body=json.dumps({"error": message}, indent=2).encode("utf-8"),
    )


def _timeout_408() -> Response:
    return Response(
        status=408,
        body=json.dumps(
            {"error": "request timed out before it completed"}, indent=2
        ).encode("utf-8"),
    )


def _render(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in response.headers)
    return (
        ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
    )
