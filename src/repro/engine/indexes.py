"""The index layer (thesis §6.1.4, §6.1.5.2).

Attribute indexes are maintained *through the event layer*: the
:class:`IndexManager` subscribes to create/update/delete events and keeps
every declared index current — the object layer never knows indexes
exist.  Two kinds:

* **hash** — exact-match probes (``epithet = "Apium"``);
* **btree** — exact probes plus ordered range scans (``year < 1820``).

The query layer probes indexes through
:meth:`IndexManager.probe`, which is plugged into the POOL evaluator as
its fast path.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Iterator

from ..core.events import Event, EventKind
from ..core.instances import PObject
from ..core.schema import Schema
from ..errors import SchemaError
from .btree import BTree

if TYPE_CHECKING:  # pragma: no cover
    pass


class IndexKind(enum.Enum):
    HASH = "hash"
    BTREE = "btree"


class _HashIndex:
    def __init__(self) -> None:
        self._data: dict[Any, set[int]] = defaultdict(set)

    def insert(self, key: Any, oid: int) -> None:
        self._data[_hashable(key)].add(oid)

    def remove(self, key: Any, oid: int) -> None:
        bucket = self._data.get(_hashable(key))
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del self._data[_hashable(key)]

    def get(self, key: Any) -> frozenset[int]:
        return frozenset(self._data.get(_hashable(key), ()))

    @property
    def distinct(self) -> int:
        return len(self._data)

    def __len__(self) -> int:
        return sum(len(v) for v in self._data.values())


class _BTreeIndex:
    def __init__(self) -> None:
        self._tree = BTree()
        self._nulls: set[int] = set()
        # Non-null key *comparison categories* present in the tree
        # (bool < numbers < str under POOL sort order, but the B-tree
        # interleaves bools with numbers) — the planner may only elide a
        # sort via index order when exactly one category is present.
        self._categories: dict[str, int] = {}

    def insert(self, key: Any, oid: int) -> None:
        if key is None:
            self._nulls.add(oid)
        else:
            before = len(self._tree)
            self._tree.insert(key, oid)
            if len(self._tree) != before:
                cat = _category(key)
                self._categories[cat] = self._categories.get(cat, 0) + 1

    def remove(self, key: Any, oid: int) -> None:
        if key is None:
            self._nulls.discard(oid)
        elif self._tree.remove(key, oid):
            cat = _category(key)
            count = self._categories.get(cat, 0) - 1
            if count <= 0:
                self._categories.pop(cat, None)
            else:
                self._categories[cat] = count

    def get(self, key: Any) -> frozenset[int]:
        if key is None:
            return frozenset(self._nulls)
        return self._tree.get(key)

    def range(
        self, low: Any, high: Any, include_low: bool, include_high: bool
    ) -> Iterator[tuple[Any, frozenset[int]]]:
        return self._tree.range(low, high, include_low, include_high)

    @property
    def nulls(self) -> frozenset[int]:
        return frozenset(self._nulls)

    @property
    def order_safe(self) -> bool:
        """True when tree order provably equals POOL sort order."""
        return len(self._categories) <= 1 and "other" not in self._categories

    @property
    def distinct(self) -> int:
        return self._tree.key_count + (1 if self._nulls else 0)

    def __len__(self) -> int:
        return len(self._tree) + len(self._nulls)


class Index:
    """One declared index over (class, attribute)."""

    def __init__(self, class_name: str, attribute: str, kind: IndexKind) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self.kind = kind
        self.impl: _HashIndex | _BTreeIndex = (
            _HashIndex() if kind is IndexKind.HASH else _BTreeIndex()
        )
        self.probes = 0

    @property
    def name(self) -> str:
        return f"{self.class_name}.{self.attribute}[{self.kind.value}]"

    def __len__(self) -> int:
        return len(self.impl)


class IndexManager:
    """Declares, maintains and probes attribute indexes for one schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        #: Bumped on every index create/drop; part of the plan-cache key
        #: so cached plans never outlive the access paths they chose.
        self.epoch = 0
        self._indexes: dict[tuple[str, str], Index] = {}
        self._unsubscribe = schema.events.subscribe(
            self._on_event,
            kinds={
                EventKind.AFTER_CREATE,
                EventKind.AFTER_UPDATE,
                EventKind.BEFORE_DELETE,
                EventKind.AFTER_RELATE,
                EventKind.BEFORE_UNRELATE,
                EventKind.AFTER_ABORT,
            },
        )

    def detach(self) -> None:
        self._unsubscribe()

    # -- declaration ---------------------------------------------------------

    def create_index(
        self, class_name: str, attribute: str, kind: str | IndexKind = "hash"
    ) -> Index:
        """Declare and build an index; existing instances are indexed now."""
        resolved = IndexKind(kind) if isinstance(kind, str) else kind
        pclass = self.schema.get_class(class_name)
        if not pclass.has_attribute(attribute):
            raise SchemaError(
                f"cannot index {class_name}.{attribute}: no such attribute"
            )
        key = (class_name, attribute)
        if key in self._indexes:
            raise SchemaError(f"index on {class_name}.{attribute} exists")
        index = Index(class_name, attribute, resolved)
        for obj in self.schema.extent(class_name):
            index.impl.insert(obj.get(attribute), obj.oid)
        self._indexes[key] = index
        self.epoch += 1
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        if self._indexes.pop((class_name, attribute), None) is not None:
            self.epoch += 1

    def indexes(self) -> list[Index]:
        return [self._indexes[k] for k in sorted(self._indexes)]

    # -- maintenance via events -------------------------------------------------

    def _covering(self, event_class: str, attribute: str | None) -> list[Index]:
        """Indexes affected by an event on ``event_class``.

        An index on class C covers events on any subclass of C.
        """
        if not self.schema.has_class(event_class):
            return []
        klass = self.schema.get_class(event_class)
        out = []
        for index in self._indexes.values():
            if attribute is not None and index.attribute != attribute:
                continue
            if not self.schema.has_class(index.class_name):
                continue
            if klass.is_subclass_of(self.schema.get_class(index.class_name)):
                out.append(index)
        return out

    def _on_event(self, event: Event) -> None:
        if event.kind is EventKind.AFTER_ABORT:
            # Rollback restored the object layer behind our back: entry
            # maintenance ran for the doomed mutations (insert on
            # create, move on update) with no compensating events, so
            # the only safe recovery is a rebuild from live state.
            self._rebuild_all()
            return
        target = event.target
        if target is None or not event.class_name:
            return
        if event.kind is EventKind.AFTER_UPDATE:
            for index in self._covering(event.class_name, event.attribute):
                index.impl.remove(event.old_value, target.oid)
                index.impl.insert(event.new_value, target.oid)
        elif event.kind in (EventKind.AFTER_CREATE, EventKind.AFTER_RELATE):
            for index in self._covering(event.class_name, None):
                index.impl.insert(target.get(index.attribute), target.oid)
        elif event.kind in (EventKind.BEFORE_DELETE, EventKind.BEFORE_UNRELATE):
            for index in self._covering(event.class_name, None):
                index.impl.remove(target.get(index.attribute), target.oid)

    def note_installed(self, obj: PObject) -> None:
        """Index maintenance for a low-level install that bypasses the
        event bus (shard rebalancing, cross-shard edge installs)."""
        for index in self._covering(obj.pclass.name, None):
            index.impl.insert(obj.get(index.attribute), obj.oid)

    def note_removed(self, obj: PObject) -> None:
        """Inverse of :meth:`note_installed`; call while the object's
        attribute values are still readable."""
        for index in self._covering(obj.pclass.name, None):
            index.impl.remove(obj.get(index.attribute), obj.oid)

    def _rebuild_all(self) -> None:
        """Re-derive every index from the (post-rollback) extents."""
        for index in self._indexes.values():
            impl: _HashIndex | _BTreeIndex = (
                _HashIndex()
                if index.kind is IndexKind.HASH
                else _BTreeIndex()
            )
            if self.schema.has_class(index.class_name):
                for obj in self.schema.extent(index.class_name):
                    impl.insert(obj.get(index.attribute), obj.oid)
            index.impl = impl

    # -- probing -------------------------------------------------------------------

    def probe(
        self, class_name: str, attribute: str, value: Any
    ) -> list[PObject] | None:
        """Exact-match lookup; None when no index covers the probe.

        This is the :data:`~repro.query.evaluator.IndexProbe` fast path of
        the POOL evaluator (§6.1.5.2).
        """
        index = self._indexes.get((class_name, attribute))
        if index is None:
            return None
        index.probes += 1
        return self._load(index.impl.get(value))

    def range(
        self,
        class_name: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[PObject]:
        """Ordered range scan (B-tree indexes only)."""
        index = self._indexes.get((class_name, attribute))
        if index is None or not isinstance(index.impl, _BTreeIndex):
            raise SchemaError(
                f"no btree index on {class_name}.{attribute}"
            )
        index.probes += 1
        oids: set[int] = set()
        for _, bucket in index.impl.range(low, high, include_low, include_high):
            oids |= bucket
        return self._load(oids)

    def range_probe(
        self,
        class_name: str,
        attribute: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[PObject] | None:
        """None-safe range probe for the planner.

        Unlike :meth:`range` this returns None (rather than raising)
        when no B-tree index covers the probe, so the planner's runtime
        fallback is a plain extent scan.  ``None``-valued entries live
        in the B-tree's side set, never in the key order, so rows whose
        indexed attribute is null are correctly absent from every range
        result (three-valued comparison semantics).
        """
        index = self._indexes.get((class_name, attribute))
        if index is None or not isinstance(index.impl, _BTreeIndex):
            return None
        index.probes += 1
        oids: set[int] = set()
        try:
            walk = index.impl.range(low, high, include_low, include_high)
            for _, bucket in walk:
                oids |= bucket
        except TypeError:
            # Bound incomparable with the stored keys: let the caller
            # fall back to a scan so the filter decides (and raises the
            # same TypeError the naive comparison would).
            return None
        return self._load(oids)

    def ordered_scan(
        self, class_name: str, attribute: str, descending: bool = False
    ) -> list[PObject] | None:
        """Extent members in ``ORDER BY attribute`` order, via the index.

        Returns None unless a B-tree index covers the attribute *and*
        its keys all fall in one comparison category (mixed bool/number
        or stray types would make tree order diverge from POOL sort
        order).  Nulls sort before every value ascending, after every
        value descending; ties come back in OID order — exactly the
        naive evaluator's stable-sort order.
        """
        index = self._indexes.get((class_name, attribute))
        if index is None or not isinstance(index.impl, _BTreeIndex):
            return None
        if not index.impl.order_safe:
            return None
        index.probes += 1
        groups: list[frozenset[int]] = [
            bucket for _, bucket in index.impl.range(None, None, True, True)
        ]
        if descending:
            groups.reverse()
            groups.append(index.impl.nulls)
        else:
            groups.insert(0, index.impl.nulls)
        out: list[PObject] = []
        for bucket in groups:
            out.extend(
                self.schema.get_object(oid)
                for oid in sorted(bucket)
                if self.schema.has_object(oid)
            )
        return out

    def lookup(self, class_name: str, attribute: str) -> dict[str, Any] | None:
        """Cardinality statistics for the planner's cost model."""
        index = self._indexes.get((class_name, attribute))
        if index is None:
            return None
        return {
            "kind": index.kind.value,
            "entries": len(index.impl),
            "distinct": index.impl.distinct,
        }

    def _load(self, oids: frozenset[int] | set[int]) -> list[PObject]:
        return [
            self.schema.get_object(oid)
            for oid in sorted(oids)
            if self.schema.has_object(oid)
        ]


def _category(key: Any) -> str:
    """Comparison category of a B-tree key (see ``_SortKey``)."""
    if isinstance(key, bool):
        return "bool"
    if isinstance(key, (int, float)):
        return "num"
    if isinstance(key, str):
        return "str"
    return "other"


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
