"""The layered database engine (thesis chapter 6, Figure 26).

* :class:`PrometheusDB` — the assembled system.
* :class:`IndexManager` / :class:`BTree` — the index layer.
* :class:`ViewManager` — the views layer.
* :class:`PrometheusServer` — the HTTP access layer.
"""

from .btree import BTree
from .database import PrometheusDB
from .dump import dump_json, dump_schema, load_dump
from .federation import (
    CircuitBreaker,
    CircuitOpenError,
    Federation,
    FederationError,
    NodeResult,
    RemoteDatabase,
    RetryPolicy,
)
from .indexes import Index, IndexKind, IndexManager
from .server import PrometheusServer, jsonable
from .views import View, ViewManager

__all__ = [
    "BTree",
    "CircuitBreaker",
    "CircuitOpenError",
    "Federation",
    "FederationError",
    "RetryPolicy",
    "Index",
    "IndexKind",
    "IndexManager",
    "NodeResult",
    "PrometheusDB",
    "dump_json",
    "dump_schema",
    "load_dump",
    "PrometheusServer",
    "RemoteDatabase",
    "View",
    "ViewManager",
    "jsonable",
]
