"""The layered database engine (thesis chapter 6, Figure 26).

* :class:`PrometheusDB` — the assembled system.
* :class:`IndexManager` / :class:`BTree` — the index layer.
* :class:`ViewManager` — the views layer.
* :class:`PrometheusServer` — the threaded HTTP access layer.
* :class:`AsyncPrometheusServer` — the asyncio HTTP access layer
  (keep-alive, pipelining, backpressure) over the same handlers.
"""

from .aserver import AsyncPrometheusServer
from .btree import BTree
from .database import PrometheusDB
from .dump import dump_json, dump_schema, load_dump
from .federation import (
    CircuitBreaker,
    CircuitOpenError,
    Federation,
    FederationError,
    NodeResult,
    RemoteDatabase,
    RetryPolicy,
)
from .handlers import HttpHandlers, Request, Response
from .indexes import Index, IndexKind, IndexManager
from .server import PrometheusServer, jsonable
from .views import View, ViewManager

__all__ = [
    "AsyncPrometheusServer",
    "BTree",
    "HttpHandlers",
    "Request",
    "Response",
    "CircuitBreaker",
    "CircuitOpenError",
    "Federation",
    "FederationError",
    "RetryPolicy",
    "Index",
    "IndexKind",
    "IndexManager",
    "NodeResult",
    "PrometheusDB",
    "dump_json",
    "dump_schema",
    "load_dump",
    "PrometheusServer",
    "RemoteDatabase",
    "View",
    "ViewManager",
    "jsonable",
]
