"""An in-memory B-tree supporting duplicate keys and range scans.

Backs the index layer (thesis §6.1.4): attribute indexes need both exact
probes and ordered range scans (``year between 1753 and 1820``).  Keys
are compared with Python ordering; each key maps to the *set* of OIDs
carrying that value, so duplicates are natural.

Classic B-tree of minimum degree ``t``: every node except the root has
between t-1 and 2t-1 keys; splits on the way down during insertion;
deletion uses the standard borrow/merge rebalancing.
"""

from __future__ import annotations

from typing import Any, Iterator


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[set[int]] = []
        self.children: list[_Node] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """B-tree mapping comparable keys to sets of OIDs."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._size = 0  # number of (key, oid) pairs

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def get(self, key: Any) -> frozenset[int]:
        """OIDs stored under ``key`` (empty set if absent)."""
        node = self._root
        while True:
            index = _bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return frozenset(node.values[index])
            if node.leaf:
                return frozenset()
            node = node.children[index]

    def __contains__(self, key: Any) -> bool:
        return bool(self.get(key))

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, oid: int) -> None:
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, oid)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, oid: int) -> None:
        while True:
            index = _bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if oid not in node.values[index]:
                    node.values[index].add(oid)
                    self._size += 1
                return
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, {oid})
                self._size += 1
                return
            child = node.children[index]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if node.keys[index] == key:
                    if oid not in node.values[index]:
                        node.values[index].add(oid)
                        self._size += 1
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def remove(self, key: Any, oid: int) -> bool:
        """Remove one (key, oid) pair; True if it was present."""
        entry = self.get(key)
        if oid not in entry:
            return False
        remaining = set(entry)
        remaining.discard(oid)
        self._size -= 1
        if remaining:
            self._replace_value(self._root, key, remaining)
            return True
        self._delete_key(self._root, key)
        root = self._root
        if not root.keys and root.children:
            self._root = root.children[0]
        return True

    def _replace_value(self, node: _Node, key: Any, value: set[int]) -> None:
        while True:
            index = _bisect(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return
            node = node.children[index]

    def _delete_key(self, node: _Node, key: Any) -> None:
        t = self._t
        index = _bisect(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                pred_key, pred_value = self._max_entry(left)
                node.keys[index], node.values[index] = pred_key, pred_value
                self._delete_key(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_value = self._min_entry(right)
                node.keys[index], node.values[index] = succ_key, succ_value
                self._delete_key(right, succ_key)
            else:
                self._merge(node, index)
                self._delete_key(left, key)
            return
        if node.leaf:
            return  # key absent (deletion is idempotent)
        child = node.children[index]
        if len(child.keys) < t:
            index = self._grow_child(node, index)
            child = node.children[index]
        self._delete_key(child, key)

    def _grow_child(self, node: _Node, index: int) -> int:
        """Ensure children[index] has >= t keys before descending.

        Returns the (possibly shifted) child index to descend into.
        """
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            child.values.insert(0, node.values[index - 1])
            node.keys[index - 1] = left.keys.pop()
            node.values[index - 1] = left.values.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.keys) and len(node.children[index + 1].keys) >= t:
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            child.values.append(node.values[index])
            node.keys[index] = right.keys.pop(0)
            node.values[index] = right.values.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return index
        if index < len(node.keys):
            self._merge(node, index)
            return index
        self._merge(node, index - 1)
        return index - 1

    def _merge(self, node: _Node, index: int) -> None:
        """Merge children[index], keys[index], children[index+1]."""
        left = node.children[index]
        right = node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(index + 1)

    def _max_entry(self, node: _Node) -> tuple[Any, set[int]]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> tuple[Any, set[int]]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        yield from (key for key, _ in self.items())

    def items(self) -> Iterator[tuple[Any, frozenset[int]]]:
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[tuple[Any, frozenset[int]]]:
        if node.leaf:
            for key, value in zip(node.keys, node.values):
                yield key, frozenset(value)
            return
        for index, key in enumerate(node.keys):
            yield from self._walk(node.children[index])
            yield key, frozenset(node.values[index])
        yield from self._walk(node.children[-1])

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, frozenset[int]]]:
        """Ordered scan of keys in [low, high] (None = unbounded)."""
        for key, oids in self.items():
            if low is not None:
                if key < low or (not include_low and key == low):
                    continue
            if high is not None:
                if key > high or (not include_high and key == high):
                    break
            yield key, oids

    def check_invariants(self) -> None:
        """Assert structural B-tree invariants (used by property tests)."""
        t = self._t

        def visit(node: _Node, depth: int, is_root: bool) -> int:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= t - 1, "underfull node"
            assert len(node.keys) <= 2 * t - 1, "overfull node"
            assert all(
                node.keys[i] < node.keys[i + 1]
                for i in range(len(node.keys) - 1)
            ), "keys not sorted"
            if node.leaf:
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = {visit(child, depth + 1, False) for child in node.children}
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        visit(self._root, 0, True)


def _bisect(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
