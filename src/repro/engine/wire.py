"""REPB v1 — the compact binary wire codec of the HTTP access layer.

JSON is the server's lingua franca, but serializing (and parsing) text
dominates the cost of a hot read once the engine itself is fast.  REPB
is the negotiated alternative: the *same* JSON-able payload tree (the
output of :func:`repro.engine.server.jsonable` — ``None``/``bool``/
``int``/``float``/``str``/``bytes``/``list``/``dict``) encoded as a
length-prefixed, checksummed binary frame, typically 2-4x smaller and
much cheaper to decode.

Frame layout (all integers big-endian, like the PLSB replication
frames it is modelled on)::

    magic(4 = b"REPB") | version(1) | flags(1) |
    payload_len(4) | crc32(payload)(4) | payload

``flags`` is reserved (must be 0 in v1).  The payload is one encoded
value:

======  =======================================================
tag     encoding
======  =======================================================
0x00    None
0x01    False
0x02    True
0x03    int — zigzag + unsigned LEB128 varint
0x04    float — 8-byte IEEE-754 double
0x05    str — varint byte length + UTF-8 bytes
0x06    bytes — varint length + raw bytes
0x07    list — varint count + encoded items
0x08    dict — varint count + (str key, value) pairs
======  =======================================================

Dict keys must be strings; non-string keys are coerced exactly the way
``json.dumps`` coerces them (``True`` → ``"true"``, ``None`` →
``"null"``, numbers → their ``str``), so a payload decodes to the same
tree whichever codec carried it.  Encoding is deterministic (dict
insertion order is preserved), which is what lets the differential
suite compare frames byte-for-byte across front ends.

Negotiation is standard HTTP content negotiation: a client sends
``Accept: application/x-repb`` to receive REPB response bodies and/or
``Content-Type: application/x-repb`` to submit a REPB request body.
See ``docs/SERVER.md``.

:func:`decode_frame` rejects — with :class:`~repro.errors.WireError`,
never a crash or a wrong value — truncated frames, trailing garbage,
bit flips (CRC), oversized declarations, bad magic, and unknown
versions/tags.  The conformance suite
(``tests/engine/test_wire_protocol.py``) fuzzes all of these.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from ..errors import WireError

MAGIC = b"REPB"
VERSION = 1
CONTENT_TYPE = "application/x-repb"

_HEAD = struct.Struct(">4sBBII")  # magic, version, flags, length, crc
HEADER_SIZE = _HEAD.size

#: Hard ceiling on one frame's payload (declared *or* actual): a
#: corrupt length field must never cause a multi-gigabyte allocation.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08

_FLOAT = struct.Struct(">d")


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    # Arbitrary-precision zigzag (ints beyond 63 bits still round-trip).
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _json_key(key: Any) -> str:
    """Coerce a dict key the way ``json.dumps`` would."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return repr(key)
    raise WireError(f"dict key {key!r} is not JSON-encodable")


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _write_varint(out, len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            raw = _json_key(key).encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
            _encode_value(out, item)
    else:
        raise WireError(
            f"value of type {type(value).__name__} is not REPB-encodable"
        )


class _Reader:
    """Bounds-checked cursor over one frame payload."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int, end: int) -> None:
        self.data = data
        self.pos = start
        self.end = end

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > self.end:
            raise WireError("truncated payload (value runs past frame end)")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def byte(self) -> int:
        if self.pos >= self.end:
            raise WireError("truncated payload (value runs past frame end)")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            # JSON ints are arbitrary precision, so allow wide varints,
            # but bound the loop: past 512 bits it's corruption, not data.
            if shift > 512:
                raise WireError("varint too long (corrupt payload)")


def _decode_value(reader: _Reader, depth: int = 0) -> Any:
    if depth > 64:
        raise WireError("payload nests deeper than 64 levels")
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        raw = reader.varint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
    if tag == _TAG_FLOAT:
        return _FLOAT.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        raw = reader.take(reader.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid UTF-8 in string: {exc}") from None
    if tag == _TAG_BYTES:
        return reader.take(reader.varint())
    if tag == _TAG_LIST:
        count = reader.varint()
        if count > reader.end - reader.pos:
            # Each item needs at least one tag byte: an impossible count
            # is a corrupt frame, not a huge allocation.
            raise WireError(f"list count {count} exceeds payload size")
        return [_decode_value(reader, depth + 1) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.varint()
        if count > reader.end - reader.pos:
            raise WireError(f"dict count {count} exceeds payload size")
        result: dict[str, Any] = {}
        for _ in range(count):
            raw = reader.take(reader.varint())
            try:
                key = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(f"invalid UTF-8 in key: {exc}") from None
            result[key] = _decode_value(reader, depth + 1)
        return result
    raise WireError(f"unknown value tag 0x{tag:02x}")


def encode_frame(value: Any) -> bytes:
    """Encode one JSON-able value as a complete REPB v1 frame."""
    payload = bytearray()
    _encode_value(payload, value)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame ceiling"
        )
    return (
        _HEAD.pack(MAGIC, VERSION, 0, len(payload), zlib.crc32(payload))
        + bytes(payload)
    )


def decode_frame(data: bytes) -> Any:
    """Validate and decode one REPB v1 frame back to its value.

    Raises :class:`~repro.errors.WireError` on any structural problem;
    a torn or bit-flipped frame never produces a wrong value.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"short frame: {len(data)} < {HEADER_SIZE} header bytes"
        )
    magic, version, flags, length, crc = _HEAD.unpack(data[:HEADER_SIZE])
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported frame version {version}")
    if flags != 0:
        raise WireError(f"unknown frame flags 0x{flags:02x}")
    if length > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame ceiling"
        )
    if len(data) - HEADER_SIZE != length:
        raise WireError(
            f"frame length mismatch: {len(data) - HEADER_SIZE} payload "
            f"bytes, header declares {length}"
        )
    if zlib.crc32(memoryview(data)[HEADER_SIZE:]) != crc:
        raise WireError("frame checksum mismatch (torn or bit-flipped)")
    reader = _Reader(data, HEADER_SIZE, len(data))
    value = _decode_value(reader)
    if reader.pos != reader.end:
        raise WireError(
            f"{reader.end - reader.pos} trailing garbage bytes after value"
        )
    return value


def accepts_repb(accept_header: str | None) -> bool:
    """Does this ``Accept`` header ask for REPB response bodies?"""
    return bool(accept_header) and CONTENT_TYPE in accept_header


def is_repb(content_type: str | None) -> bool:
    """Is this ``Content-Type`` header a REPB request body?"""
    return bool(content_type) and content_type.split(";")[0].strip() == (
        CONTENT_TYPE
    )
