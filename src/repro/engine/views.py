"""The views layer (thesis §6.1.3).

A view is a named, stored POOL query.  Views can be **materialized**: the
result list is cached and invalidated whenever any mutation event occurs
(coarse but correct — the thesis's view layer likewise trades precision
for simplicity).  A **classification view** scopes a whole classification
as a view, giving applications the "one classification at a time"
perspective older systems hard-coded, without losing the others.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..classification import ClassificationManager, extract_graph
from ..core.events import Event, EventKind
from ..core.schema import Schema
from ..errors import QueryError, SchemaError
from ..query import parse
from ..query.evaluator import Evaluator, QueryContext
from ..query.typecheck import typecheck

if TYPE_CHECKING:  # pragma: no cover
    from ..classification import GraphView

_MUTATIONS = {
    EventKind.AFTER_CREATE,
    EventKind.AFTER_UPDATE,
    EventKind.AFTER_DELETE,
    EventKind.AFTER_RELATE,
    EventKind.AFTER_UNRELATE,
}


class View:
    """One stored query."""

    def __init__(
        self,
        name: str,
        query_text: str,
        materialized: bool = False,
        description: str = "",
    ) -> None:
        self.name = name
        self.query_text = query_text
        self.materialized = materialized
        self.description = description
        self.ast = parse(query_text)
        self._cache: list[Any] | None = None
        self.refreshes = 0
        self.invalidations = 0
        #: Class names whose mutations invalidate this view's cache
        #: (None = depend on everything; filled in by the manager).
        self.depends_on: frozenset[str] | None = None

    def invalidate(self) -> None:
        if self._cache is not None:
            self.invalidations += 1
        self._cache = None

    @property
    def is_fresh(self) -> bool:
        return self._cache is not None


class ViewManager:
    """Registry and evaluator of views over one schema."""

    def __init__(
        self,
        schema: Schema,
        classifications: ClassificationManager | None = None,
    ) -> None:
        self.schema = schema
        self.classifications = classifications
        self._views: dict[str, View] = {}
        self._unsubscribe = schema.events.subscribe(
            self._on_event, kinds=_MUTATIONS
        )

    def detach(self) -> None:
        self._unsubscribe()

    def _on_event(self, event: Event) -> None:
        for view in self._views.values():
            if not view.materialized or not view.is_fresh:
                continue
            if self._affects(view, event):
                view.invalidate()

    def _affects(self, view: View, event: Event) -> bool:
        """Class-scoped invalidation: a mutation only stales a view whose
        dependency set covers the event's class (or a related class in
        the hierarchy)."""
        if view.depends_on is None or not event.class_name:
            return True
        if not self.schema.has_class(event.class_name):
            return True
        event_class = self.schema.get_class(event.class_name)
        for name in view.depends_on:
            if not self.schema.has_class(name):
                return True
            dependency = self.schema.get_class(name)
            if event_class.is_subclass_of(dependency) or dependency.is_subclass_of(
                event_class
            ):
                return True
        return False

    @staticmethod
    def _dependencies(ast: Any, schema: Schema) -> frozenset[str] | None:
        """Class names a query reads: extent sources, relationship
        traversals (plus their endpoint classes) and downcasts.  Returns
        None (depend on everything) when the query's sources cannot be
        determined statically."""
        from ..core.relationships import RelationshipClass
        from ..query.nodes import (
            Binary,
            Binding,
            Downcast,
            ExistsExpr,
            MethodCall,
            SelectQuery,
            SetOperation,
            Traversal,
            Unary,
        )
        from ..query.nodes import AttributeAccess, FunctionCall, OrderItem

        found: set[str] = set()

        def add_relationship(name: str) -> None:
            found.add(name)
            if schema.has_class(name):
                klass = schema.get_class(name)
                if isinstance(klass, RelationshipClass):
                    found.add(klass.origin_class_name)
                    found.add(klass.destination_class_name)

        def walk(node: Any) -> None:
            if isinstance(node, SelectQuery):
                for binding in node.bindings:
                    walk(binding)
                for item in node.projection:
                    walk(item.expression)
                if node.where is not None:
                    walk(node.where)
                for expr in node.group_by:
                    walk(expr)
                if node.having is not None:
                    walk(node.having)
                for order in node.order_by:
                    walk(order.expression)
                return
            if isinstance(node, SetOperation):
                walk(node.left)
                walk(node.right)
                return
            if isinstance(node, Binding):
                from ..query.nodes import Variable

                if isinstance(node.source, Variable) and schema.has_class(
                    node.source.name
                ):
                    found.add(node.source.name)
                else:
                    walk(node.source)
                return
            if isinstance(node, Traversal):
                add_relationship(node.relationship)
                walk(node.target)
                return
            if isinstance(node, Downcast):
                found.add(node.class_name)
                walk(node.target)
                return
            if isinstance(node, ExistsExpr):
                walk(node.subquery)
                return
            if isinstance(node, Binary):
                walk(node.left)
                walk(node.right)
                return
            if isinstance(node, Unary):
                walk(node.operand)
                return
            if isinstance(node, (MethodCall, FunctionCall)):
                target = getattr(node, "target", None)
                if target is not None:
                    walk(target)
                for arg in node.args:
                    walk(arg)
                return
            if isinstance(node, AttributeAccess):
                walk(node.target)
                return
            if isinstance(node, OrderItem):  # pragma: no cover - reached above
                walk(node.expression)

        try:
            walk(ast)
        except Exception:  # pragma: no cover - absolute safety net
            return None
        return frozenset(found) if found else None

    # -- definition -----------------------------------------------------------

    def define(
        self,
        name: str,
        query_text: str,
        materialized: bool = False,
        description: str = "",
    ) -> View:
        """Define a view; the query is parsed and type-checked eagerly."""
        if name in self._views:
            raise SchemaError(f"view {name!r} already defined")
        view = View(
            name,
            query_text,
            materialized=materialized,
            description=description,
        )
        report = typecheck(self.schema, view.ast, self.classifications)
        if not report.ok:
            raise QueryError(
                f"view {name!r} does not type-check: {'; '.join(report.errors)}"
            )
        view.depends_on = self._dependencies(view.ast, self.schema)
        self._views[name] = view
        return view

    def drop(self, name: str) -> None:
        self._views.pop(name, None)

    def get(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f"unknown view {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._views)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, name: str, params: dict[str, Any] | None = None) -> Any:
        """Evaluate a view; materialized parameterless views are cached."""
        view = self.get(name)
        cacheable = view.materialized and not params
        if cacheable and view._cache is not None:
            return list(view._cache)
        context = QueryContext(
            schema=self.schema,
            classifications=self.classifications,
            params=params or {},
        )
        result = Evaluator(context).run(view.ast)
        if cacheable and isinstance(result, list):
            view._cache = list(result)
            view.refreshes += 1
        return result

    # -- classification views --------------------------------------------------------

    def classification_view(self, classification_name: str) -> "GraphView":
        """The whole classification as a detached graph — the "single
        classification" perspective of traditional systems (§3.2.1's view
        discussion), derived rather than stored."""
        if self.classifications is None:
            raise SchemaError("no classification manager attached")
        classification = self.classifications.get(classification_name)
        return extract_graph(classification)
