"""Exception hierarchy for the Prometheus database.

Every error raised by the library derives from :class:`PrometheusError`, so
applications can catch a single base class.  The hierarchy mirrors the layers
of the system (storage, model, relationship semantics, query, rules).
"""

from __future__ import annotations


class PrometheusError(Exception):
    """Base class of all errors raised by the library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(PrometheusError):
    """Base class for persistent-store failures."""


class CorruptRecordError(StorageError):
    """A log record failed its checksum or structural validation."""


class UnknownOidError(StorageError, KeyError):
    """An OID was requested that the store has never seen (or was deleted)."""

    def __init__(self, oid: int) -> None:
        super().__init__(f"unknown oid: {oid}")
        self.oid = oid


class TransactionError(StorageError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class ConflictError(TransactionError):
    """First-committer-wins validation failed: another transaction
    committed one of this transaction's written objects first.

    The transaction has been rolled back; the operation is safe to
    retry from ``begin()``.  ``oids`` lists the conflicting objects.
    """

    def __init__(self, oids: "list[int] | tuple[int, ...]" = ()) -> None:
        self.oids = tuple(sorted(oids))
        listing = ", ".join(str(oid) for oid in self.oids) or "?"
        super().__init__(
            f"write conflict on oid(s) {listing}: another transaction "
            "committed first; begin a new transaction and retry"
        )


class SessionError(PrometheusError):
    """Session-layer failure (unknown/expired token, session limit)."""


class NodeDemotedError(SessionError):
    """This node was demoted to replica while the session was open.

    The session's transaction has been aborted by the demotion; the
    client should reconnect to the current primary (``primary_url`` when
    known) and retry from ``begin()``.  ``epoch`` is the cluster epoch
    of the promotion that deposed this node.
    """

    def __init__(
        self,
        message: str,
        epoch: int = 0,
        primary_url: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.primary_url = primary_url


class SerializationError(StorageError):
    """A value cannot be encoded to, or decoded from, the record format."""


class RecoveryError(StorageError):
    """Log replay could not reconstruct a consistent store state."""


class CompactionError(StorageError):
    """Log compaction failed; the previous log remains authoritative."""


# ---------------------------------------------------------------------------
# Object model layer
# ---------------------------------------------------------------------------

class ModelError(PrometheusError):
    """Base class for schema/metaobject errors."""


class SchemaError(ModelError):
    """Invalid schema definition (duplicate class, bad inheritance, ...)."""


class TypeCheckError(ModelError):
    """A value does not conform to the declared attribute type."""


class AttributeUnknownError(ModelError, AttributeError):
    """Access to an attribute that the class does not declare."""

    def __init__(self, class_name: str, attr: str) -> None:
        super().__init__(f"class {class_name!r} has no attribute {attr!r}")
        self.class_name = class_name
        self.attr = attr


class InstanceDeletedError(ModelError):
    """Operation on an object that has been deleted."""


# ---------------------------------------------------------------------------
# Relationship layer
# ---------------------------------------------------------------------------

class RelationshipError(ModelError):
    """Base class for relationship definition/instantiation errors."""


class SemanticsError(RelationshipError):
    """Invalid combination of built-in relationship behaviours (Table 3)."""


class CardinalityError(RelationshipError):
    """A relationship instance would violate declared cardinalities."""


class ExclusivityError(RelationshipError):
    """A part would acquire two owners through an exclusive aggregation."""


class ConstancyError(RelationshipError):
    """Attempt to modify a relationship declared constant (unchangeable)."""


# ---------------------------------------------------------------------------
# Classification layer
# ---------------------------------------------------------------------------

class ClassificationError(PrometheusError):
    """Invalid classification operation (cycle, wrong context, ...)."""


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------

class ReplicationError(PrometheusError):
    """Log shipping failed (bad frame, protocol error, dead stream)."""


class DivergedError(ReplicationError):
    """The replica's log is not a prefix of the primary's (e.g. the
    primary compacted); the replica must reset and re-sync from empty."""


class StalePrimaryError(ReplicationError):
    """The peer (or this node) belongs to a superseded cluster epoch.

    Raised when a pull or write hits a node that has been fenced off by
    a newer promotion — the caller should rediscover the current primary
    and retry.  ``epoch`` carries the highest cluster epoch the refusing
    side knows; ``primary_url`` (when known) points at the successor.
    """

    def __init__(
        self,
        message: str,
        epoch: int = 0,
        primary_url: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.primary_url = primary_url


# ---------------------------------------------------------------------------
# Wire protocol (REPB)
# ---------------------------------------------------------------------------

class WireError(PrometheusError):
    """A REPB frame failed structural validation (truncated, oversized,
    checksum mismatch, bad magic/version, or an unencodable value)."""


# ---------------------------------------------------------------------------
# Taxonomy substrate
# ---------------------------------------------------------------------------

class TaxonomyError(PrometheusError):
    """Base class for taxonomic-model violations."""


class RankOrderError(TaxonomyError):
    """A placement violates the ICBN rank ordering."""


class NomenclatureError(TaxonomyError):
    """A name violates the ICBN formation rules (ending, capitalisation)."""


class TypificationError(TaxonomyError):
    """Illegal type designation (e.g. two holotypes for one name)."""


class DerivationError(TaxonomyError):
    """Automatic name derivation could not complete."""


# ---------------------------------------------------------------------------
# Query language (POOL)
# ---------------------------------------------------------------------------

class QueryError(PrometheusError):
    """Base class for POOL errors."""


class LexError(QueryError):
    """Invalid character or token in the query text."""

    def __init__(self, message: str, position: int, line: int = 1) -> None:
        super().__init__(f"{message} (line {line}, pos {position})")
        self.position = position
        self.line = line


class ParseError(QueryError):
    """Query text does not conform to the POOL grammar."""


class EvaluationError(QueryError):
    """Runtime failure while evaluating a query."""


class SnapshotError(QueryError):
    """A time-travel LSN is outside the retained history window.

    Raised when ``as_of`` is ahead of the node's commit head (not yet
    replicated/committed here) or below the MVCC GC floor (versions
    already reclaimed), or when snapshots are requested with MVCC off.
    """


# ---------------------------------------------------------------------------
# Rules / constraints
# ---------------------------------------------------------------------------

class RuleError(PrometheusError):
    """Base class for rule-engine errors."""


class ConstraintViolation(RuleError):
    """A constraint's condition evaluated false; carries the failing rule."""

    def __init__(self, rule_name: str, message: str = "") -> None:
        text = f"constraint {rule_name!r} violated"
        if message:
            text += f": {message}"
        super().__init__(text)
        self.rule_name = rule_name

class RuleCascadeError(RuleError):
    """Rule execution exceeded the cascade (recursion) limit."""


class PCLError(RuleError):
    """PCL text could not be parsed or translated."""
