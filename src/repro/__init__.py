"""Prometheus: an extended object-oriented database for multiple
overlapping classifications, reproduced from Raguenaud's thesis
*Managing complex taxonomic data in an object-oriented database*.

Package layout
--------------
* :mod:`repro.storage` — log-structured transactional object store
  (the "underlying storage system" baseline of the evaluation).
* :mod:`repro.core` — ODMG object model extended with first-class
  relationships, semantics, instance synonyms (chapter 4).
* :mod:`repro.classification` — classifications as edge sets, contexts,
  traceability, graph operations and comparison (chapters 2 & 4.6).
* :mod:`repro.taxonomy` — the Prometheus taxonomic model: ranks,
  specimens, nomenclatural and circumscription taxa, typification and
  ICBN name derivation (chapter 2 / Pullan et al. 2000).
* :mod:`repro.query` — POOL, the Prometheus object-oriented query
  language (chapter 5.1).
* :mod:`repro.rules` — the ECA rules/constraints engine and PCL
  (chapter 5.2).
* :mod:`repro.engine` — the layered database facade: events, object
  layer, views, indexes, query layer, rules layer, HTTP server
  (chapter 6).
* :mod:`repro.bench` — OO7-inspired benchmark substrate (chapter 7.2).
"""

from .core.attributes import Attribute, Method
from .core.classes import PClass
from .core.relationships import RelationshipClass, RelationshipInstance
from .core.schema import Schema
from .core.semantics import Cardinality, RelationshipSemantics, RelKind
from .storage.store import ObjectStore

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Cardinality",
    "Method",
    "ObjectStore",
    "PClass",
    "RelKind",
    "RelationshipClass",
    "RelationshipInstance",
    "RelationshipSemantics",
    "Schema",
    "__version__",
]
