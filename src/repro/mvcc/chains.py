"""Version chains: per-OID multi-version record history.

Every committed write appends one :class:`Version` — the storage record
(the same dict :meth:`Schema._to_record` produces, ``None`` for a
tombstone) stamped with the commit LSN — to its OID's
:class:`VersionChain`.  LSNs are byte offsets into the append-only log,
so the stamp domain is shared with replication: a replica that applied
the same log prefix resolves exactly the same version for the same LSN,
which is what makes ``as_of`` reads byte-identical across nodes.  For
purely in-memory databases the transaction manager stamps with its
commit clock instead; the ordering properties are identical.

Reader model (the point of the subsystem): chains are append-only lists
mutated only under the writer's commit lock, and readers binary-search a
*reference* to the list without any lock.  A concurrent append can only
grow the list past the length the search captured, and appended versions
carry LSNs newer than any pinned snapshot — so a lock-free reader can
never observe a version it should not.  GC never mutates a list in
place either: it builds the surviving suffix and swaps the attribute,
which is a single atomic store.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator


class VersionChain:
    """Ascending-LSN history of one OID's committed records."""

    __slots__ = ("_versions",)

    def __init__(self) -> None:
        # list of (lsn, record-or-None); ascending lsn; never mutated in
        # place except by append — GC replaces the whole list.
        self._versions: list[tuple[int, dict[str, Any] | None]] = []

    def append(self, lsn: int, record: dict[str, Any] | None) -> None:
        """Add the version committed at ``lsn`` (``None`` = tombstone).

        Called under the owning side's commit lock.  A re-append at the
        chain's newest LSN replaces it (an implicit-session commit can
        stamp several mutations of one object with one LSN); an older
        LSN is ignored rather than spliced, keeping reads lock-free.
        """
        versions = self._versions
        if versions:
            tail_lsn = versions[-1][0]
            if lsn == tail_lsn:
                versions[-1] = (lsn, record)
                return
            if lsn < tail_lsn:
                return
        versions.append((lsn, record))

    def visible_at(self, lsn: int) -> tuple[bool, dict[str, Any] | None]:
        """Newest version with ``version.lsn <= lsn``.

        Returns ``(True, record)`` — record ``None`` for a tombstone —
        or ``(False, None)`` when the object did not exist yet at the
        snapshot.  Lock-free: operates on one captured list reference.
        """
        versions = self._versions
        lo, hi = 0, len(versions)
        while lo < hi:
            mid = (lo + hi) // 2
            if versions[mid][0] <= lsn:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return (False, None)
        return (True, versions[lo - 1][1])

    def collect_below(self, watermark: int) -> int:
        """Drop versions older than the newest version ``<= watermark``.

        That newest-at-watermark version must survive: it is exactly
        what a snapshot pinned at the watermark resolves.  Returns the
        number of versions dropped.  The surviving suffix is swapped in
        atomically, so concurrent readers keep a consistent list.
        """
        versions = self._versions
        lo, hi = 0, len(versions)
        while lo < hi:
            mid = (lo + hi) // 2
            if versions[mid][0] <= watermark:
                lo = mid + 1
            else:
                hi = mid
        keep_from = max(lo - 1, 0)
        if keep_from == 0:
            return 0
        self._versions = versions[keep_from:]
        return keep_from

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def newest_lsn(self) -> int | None:
        versions = self._versions
        return versions[-1][0] if versions else None

    def is_dead_at(self, watermark: int) -> bool:
        """True when the whole chain is just one tombstone at or below
        the watermark — no snapshot can resolve the object anymore."""
        versions = self._versions
        return (
            len(versions) == 1
            and versions[0][1] is None
            and versions[0][0] <= watermark
        )


class VersionStore:
    """The chain table: OID → :class:`VersionChain`.

    Appends are serialized by the caller (the transaction manager's
    commit lock on a primary, the applier's write lock on a replica);
    the internal lock only guards the chain-map itself so lock-free
    readers never race a rehash observable mid-write.
    """

    def __init__(self) -> None:
        self._chains: dict[int, VersionChain] = {}
        self._lock = threading.Lock()
        self.versions_appended = 0
        self.versions_collected = 0

    def __len__(self) -> int:
        return len(self._chains)

    def __contains__(self, oid: int) -> bool:
        return oid in self._chains

    def append(self, oid: int, lsn: int, record: dict[str, Any] | None) -> None:
        chain = self._chains.get(oid)
        if chain is None:
            with self._lock:
                chain = self._chains.setdefault(oid, VersionChain())
        chain.append(lsn, record)
        self.versions_appended += 1

    def lookup(self, oid: int, lsn: int) -> tuple[bool, dict[str, Any] | None]:
        """Resolve ``oid`` at snapshot ``lsn``.

        ``(False, None)`` — the OID has no chain at all (untracked);
        ``(True, None)`` — tracked, but deleted or not yet created at
        the snapshot; ``(True, record)`` — visible.
        """
        chain = self._chains.get(oid)
        if chain is None:
            return (False, None)
        found, record = chain.visible_at(lsn)
        if not found:
            return (True, None)
        return (True, record)

    def items_at(self, lsn: int) -> Iterator[tuple[int, dict[str, Any]]]:
        """All (oid, record) pairs visible at snapshot ``lsn``."""
        for oid in list(self._chains):
            chain = self._chains.get(oid)
            if chain is None:
                continue
            found, record = chain.visible_at(lsn)
            if found and record is not None:
                yield oid, record

    def seed(
        self, items: Iterable[tuple[int, dict[str, Any]]], lsn: int
    ) -> int:
        """Bootstrap chains from a full state snapshot at ``lsn``."""
        seeded = 0
        for oid, record in items:
            self.append(oid, lsn, record)
            seeded += 1
        return seeded

    def live_versions(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def collect(self, watermark: int) -> int:
        """Drop every version unreachable from snapshots ``>= watermark``.

        Per chain the newest version at or below the watermark survives
        (it is the watermark's visible version); chains reduced to a
        lone tombstone at/below the watermark are removed entirely.
        """
        collected = 0
        for oid in list(self._chains):
            chain = self._chains.get(oid)
            if chain is None:
                continue
            collected += chain.collect_below(watermark)
            if chain.is_dead_at(watermark):
                with self._lock:
                    live = self._chains.get(oid)
                    if live is chain and chain.is_dead_at(watermark):
                        del self._chains[oid]
                        collected += len(chain)
        self.versions_collected += collected
        return collected

    def reset(self) -> None:
        """Discard all history (resync / compaction rewrote the log)."""
        with self._lock:
            self._chains = {}
