"""Version-chain garbage collection, driven by the oldest pinned snapshot.

The invariant the collector must uphold: **no version reachable from
any pinned snapshot is ever collected**.  Reachable means "the version
a chain resolves for some pinned LSN" — per chain that is the newest
version at or below the pin, plus everything newer.

The race to defend against: a reader pins an LSN while the collector is
choosing its watermark.  Both sides therefore go through one lock —
pins are granted only at or above the *floor* (the highest watermark
any GC run has used), and the watermark/floor advance happens under the
same lock that grants pins.  After the floor is published the actual
chain pruning can proceed lock-free: every grantable pin is now at or
above the watermark, and pruning keeps each chain's visible-at-watermark
version.
"""

from __future__ import annotations

import threading

from .chains import VersionStore
from .snapshots import Snapshot, SnapshotRegistry


class VersionGC:
    """Watermark bookkeeping + opportunistic collection cadence."""

    def __init__(
        self,
        versions: VersionStore,
        registry: SnapshotRegistry,
        interval_commits: int = 128,
    ) -> None:
        self._versions = versions
        self._registry = registry
        self._lock = threading.Lock()
        self._floor = 0
        self._head = 0
        self._interval = max(1, interval_commits)
        self._commits_since_gc = 0
        self.runs = 0

    # -- coordination --------------------------------------------------------

    @property
    def floor(self) -> int:
        """Oldest LSN still resolvable; pins below it are refused."""
        return self._floor

    @property
    def head(self) -> int:
        """Newest LSN with complete chain state."""
        return self._head

    @property
    def interval_commits(self) -> int:
        """Commits between opportunistic collection passes."""
        return self._interval

    @interval_commits.setter
    def interval_commits(self, value: int) -> None:
        self._interval = max(1, int(value))

    def note_head(self, lsn: int) -> None:
        if lsn > self._head:
            self._head = lsn

    def set_floor(self, lsn: int) -> None:
        """Bootstrap: history starts at ``lsn`` (seed / resync point)."""
        with self._lock:
            self._floor = lsn
            if lsn > self._head:
                self._head = lsn

    def try_pin(self, lsn: int) -> Snapshot | None:
        """Pin ``lsn`` unless GC already advanced the floor past it.

        Granting and floor-advancing share ``self._lock``, so a granted
        pin is visible to every later watermark computation.
        """
        with self._lock:
            if lsn < self._floor:
                return None
            return self._registry.pin(lsn)

    def watermark(self) -> int:
        """Oldest LSN any current snapshot can resolve."""
        oldest = self._registry.oldest()
        if oldest is None:
            return self._head
        return min(oldest, self._head)

    # -- collection ----------------------------------------------------------

    def run(self) -> int:
        """One collection pass; returns the number of versions dropped."""
        with self._lock:
            watermark = self.watermark()
            if watermark > self._floor:
                self._floor = watermark
            else:
                watermark = self._floor
            self.runs += 1
        # Pruning outside the lock is safe: pins are now floor-gated at
        # or above the watermark, and each chain keeps its newest
        # version <= watermark.
        return self._versions.collect(watermark)

    def maybe_run(self) -> int:
        """Amortized trigger: one pass every ``interval_commits``."""
        self._commits_since_gc += 1
        if self._commits_since_gc < self._interval:
            return 0
        self._commits_since_gc = 0
        return self.run()

    def reset(self, floor: int = 0) -> None:
        with self._lock:
            self._floor = floor
            self._head = floor
            self._commits_since_gc = 0
