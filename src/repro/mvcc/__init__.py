"""MVCC snapshot store: version chains, pinned snapshots, GC, views.

The subsystem that turns the first-committer-wins concurrency layer
into snapshot isolation (docs/CONCURRENCY.md):

* :mod:`~repro.mvcc.chains` — per-OID version chains stamped with
  commit LSNs; lock-free reads;
* :mod:`~repro.mvcc.snapshots` — refcounted snapshot pins;
* :mod:`~repro.mvcc.gc` — the oldest-pin watermark and chain pruning;
* :mod:`~repro.mvcc.view` — :class:`SnapshotSchema`, a read-only object
  layer materialized as of one LSN (the time-travel API's engine).

:class:`MvccStore` is the facade the transaction manager, engine,
replica applier and HTTP layer share.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from .chains import VersionChain, VersionStore
from .gc import VersionGC
from .snapshots import Snapshot, SnapshotRegistry
from .view import SnapshotSchema, record_values

if TYPE_CHECKING:  # pragma: no cover
    from ..core.schema import Schema

__all__ = [
    "MvccStore",
    "Snapshot",
    "SnapshotRegistry",
    "SnapshotSchema",
    "VersionChain",
    "VersionGC",
    "VersionStore",
    "record_values",
]


class MvccStore:
    """One node's multi-version state: chains + pins + GC watermark.

    Writers (the transaction manager on a primary, the log applier on a
    replica) call :meth:`seed` once and :meth:`apply_commit` per commit;
    readers call :meth:`pin` / :meth:`lookup` / :meth:`view` without
    ever blocking a writer.
    """

    def __init__(self, gc_interval_commits: int = 128) -> None:
        self.versions = VersionStore()
        self.registry = SnapshotRegistry()
        self.gc = VersionGC(
            self.versions, self.registry, interval_commits=gc_interval_commits
        )
        self.snapshot_reads = 0

    # -- write side ----------------------------------------------------------

    def seed(
        self, items: Iterable[tuple[int, dict[str, Any]]], lsn: int
    ) -> int:
        """Bootstrap chains from the full current state at ``lsn``.

        History before the seed point is not reconstructable (the log
        may predate this process), so the GC floor starts here too.
        """
        seeded = self.versions.seed(items, lsn)
        self.gc.set_floor(lsn)
        return seeded

    def apply_commit(
        self,
        lsn: int,
        writes: dict[int, dict[str, Any]],
        deletes: Iterable[int] = (),
    ) -> None:
        """Append one commit's versions; called under the writer lock."""
        append = self.versions.append
        for oid, record in writes.items():
            append(oid, lsn, record)
        for oid in deletes:
            append(oid, lsn, None)
        self.gc.note_head(lsn)

    def reset(self, floor: int = 0) -> None:
        """History is gone (resync or compaction rewrote the log)."""
        self.versions.reset()
        self.gc.reset(floor)

    # -- read side -----------------------------------------------------------

    @property
    def head(self) -> int:
        return self.gc.head

    @property
    def floor(self) -> int:
        return self.gc.floor

    def pin(self, lsn: int) -> Snapshot | None:
        """Pin a snapshot; None when GC already reclaimed that LSN."""
        return self.gc.try_pin(lsn)

    def lookup(self, oid: int, lsn: int) -> tuple[bool, dict[str, Any] | None]:
        return self.versions.lookup(oid, lsn)

    def view(self, live: "Schema", lsn: int) -> SnapshotSchema:
        """Materialize the object layer as of ``lsn``."""
        self.snapshot_reads += 1
        return SnapshotSchema(live, self.versions, lsn)

    # -- maintenance ---------------------------------------------------------

    def run_gc(self) -> int:
        return self.gc.run()

    def maybe_gc(self) -> int:
        return self.gc.maybe_run()

    # -- introspection -------------------------------------------------------

    def telemetry_snapshot(self) -> dict[str, int]:
        return {
            "pinned_snapshots": self.registry.count,
            "watermark_lsn": self.gc.watermark(),
            "floor_lsn": self.gc.floor,
            "head_lsn": self.gc.head,
            "chains": len(self.versions),
            "versions_live": self.versions.live_versions(),
            "versions_appended": self.versions.versions_appended,
            "versions_collected": self.versions.versions_collected,
            "gc_runs": self.gc.runs,
            "snapshot_reads": self.snapshot_reads,
        }
