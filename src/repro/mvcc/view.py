"""Point-in-time schema views: the object layer as of one LSN.

A :class:`SnapshotSchema` materializes every record visible at a
snapshot LSN into live handles — its own object table, extents,
relationship indexes, synonym registry and metadata extras — while
sharing the (static) class registry with the live schema.  It exposes
the read surface the query evaluator, planner operators, adjacency
cache and :class:`~repro.classification.ClassificationManager` consume,
so ``db.query(..., as_of=lsn)`` and time-travel classifications run the
ordinary machinery against historical state with no special cases.

Construction walks the chains once (lock-free, see
:mod:`repro.mvcc.chains`); after that the view is immutable and safe to
share across threads and cache across queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..core.events import EventBus
from ..core.relationships import (
    RelationshipClass,
    RelationshipInstance,
    RelationshipRegistry,
)
from ..core.schema import _META_CLASS, Schema
from ..core.synonyms import SynonymRegistry
from ..core.types import RefType
from ..errors import SchemaError, UnknownOidError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.classes import PClass
    from ..core.instances import PObject
    from .chains import VersionStore


def record_values(schema: Any, record: dict[str, Any]) -> dict[str, Any]:
    """Decode a storage record's values the way ``PObject.to_dict`` would.

    References stay raw (OIDs), matching the live object layer, so a
    transaction overlay merges identically over a chain-resolved base
    and a live one.
    """
    pclass = schema.get_class(record["class"])
    values: dict[str, Any] = {}
    stored = record.get("values", {})
    for name, attr in pclass.all_attributes().items():
        raw = stored.get(name)
        if isinstance(attr.type_spec, RefType):
            values[name] = raw
        else:
            values[name] = attr.type_spec.from_storable(raw, schema)
    return values


class SnapshotSchema:
    """Read-only object layer reconstructed at one snapshot LSN.

    Duck-compatible with :class:`~repro.core.schema.Schema` for every
    read path the query and classification layers use.  Mutation entry
    points are deliberately absent: time travel is read-only.
    """

    def __init__(self, live: Schema, versions: "VersionStore", lsn: int) -> None:
        self.name = f"{live.name}@{lsn}"
        self.as_of = lsn
        self.store = None
        self.events = EventBus()  # nothing subscribes; satisfies handles
        #: Plan-cache stamp component: distinct from every live integer
        #: ``Schema.version`` and from every other snapshot's stamp.
        self.version = ("as_of", lsn, live.version)
        self._classes = live._classes  # shared; class registry is static
        self.synonyms = SynonymRegistry()
        self.meta_extras: dict[str, Any] = {}
        self.relationships = RelationshipRegistry(self)  # type: ignore[arg-type]
        self._objects: dict[int, "PObject"] = {}
        self._extents: dict[str, set[int]] = {}
        edges: list[RelationshipInstance] = []
        for oid, record in versions.items_at(lsn):
            class_name = record.get("class")
            if class_name == _META_CLASS:
                self.synonyms.load_storable(record.get("synonyms", []))
                extras = record.get("extras", {})
                if isinstance(extras, dict):
                    self.meta_extras.update(extras)
                continue
            if class_name not in self._classes:
                continue  # record from a class this process never registered
            obj = Schema._from_record(self, oid, record)  # type: ignore[arg-type]
            self._objects[oid] = obj
            self._extents.setdefault(obj.pclass.name, set()).add(oid)
            if isinstance(obj, RelationshipInstance):
                edges.append(obj)
        for rel in edges:
            self.relationships.index(rel)

    # -- class registry (delegated) -----------------------------------------

    def get_class(self, name: str) -> "PClass":
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def classes(self) -> Iterator["PClass"]:
        return iter(self._classes.values())

    def relationship_classes(self) -> Iterator[RelationshipClass]:
        for klass in self._classes.values():
            if isinstance(klass, RelationshipClass):
                yield klass

    # -- object table --------------------------------------------------------

    def get_object(self, oid: int) -> "PObject":
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownOidError(oid) from None

    def has_object(self, oid: int) -> bool:
        return oid in self._objects

    def all_objects(self) -> Iterator["PObject"]:
        for oid in sorted(self._objects):
            yield self._objects[oid]

    def extent(self, class_name: str, polymorphic: bool = True) -> list["PObject"]:
        pclass = self.get_class(class_name)
        oids: set[int] = set()
        if polymorphic:
            for klass in pclass.descendants():
                oids |= self._extents.get(klass.name, set())
        else:
            oids |= self._extents.get(class_name, set())
        return [self._objects[oid] for oid in sorted(oids) if oid in self._objects]

    def count(self, class_name: str, polymorphic: bool = True) -> int:
        pclass = self.get_class(class_name)
        if polymorphic:
            return sum(
                len(self._extents.get(k.name, ())) for k in pclass.descendants()
            )
        return len(self._extents.get(class_name, ()))

    def __len__(self) -> int:
        return len(self._objects)

    # -- read-only guards ----------------------------------------------------

    def _note_dirty(self, obj: "PObject") -> None:
        raise SchemaError(
            f"snapshot view {self.name} is read-only; "
            "mutate through the live schema"
        )

    def _journal_update(self, obj: "PObject", attr: str, old: Any) -> None:
        raise SchemaError(
            f"snapshot view {self.name} is read-only; "
            "mutate through the live schema"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<SnapshotSchema {self.name}: {len(self._objects)} objects "
            f"as of lsn {self.as_of}>"
        )
