"""Snapshot pinning: which LSNs must remain resolvable.

A :class:`Snapshot` is a refcounted pin on one LSN.  Every managed
transaction pins its begin LSN; every cached ``as_of`` view pins its
own; the GC watermark is the oldest pin.  Pins are cheap (one lock, two
dict operations) because ``begin()`` sits on the commit hot path.
"""

from __future__ import annotations

import threading


class Snapshot:
    """A pinned snapshot LSN.  Release exactly once (idempotent)."""

    __slots__ = ("lsn", "_registry", "_released")

    def __init__(self, lsn: int, registry: "SnapshotRegistry") -> None:
        self.lsn = lsn
        self._registry = registry
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._registry._unpin(self.lsn)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "released" if self._released else "pinned"
        return f"<Snapshot lsn={self.lsn} {state}>"


class SnapshotRegistry:
    """Refcounted pin table with O(pins) oldest-pin lookup.

    The pin count stays small (active transactions + cached views), so
    a plain ``min()`` beats maintaining a heap with lazy deletion.
    """

    def __init__(self) -> None:
        self._pins: dict[int, int] = {}
        self._lock = threading.Lock()
        self.pinned_total = 0

    def pin(self, lsn: int) -> Snapshot:
        with self._lock:
            self._pins[lsn] = self._pins.get(lsn, 0) + 1
            self.pinned_total += 1
        return Snapshot(lsn, self)

    def _unpin(self, lsn: int) -> None:
        with self._lock:
            count = self._pins.get(lsn, 0)
            if count <= 1:
                self._pins.pop(lsn, None)
            else:
                self._pins[lsn] = count - 1

    def oldest(self) -> int | None:
        """The oldest pinned LSN, or None when nothing is pinned."""
        with self._lock:
            return min(self._pins) if self._pins else None

    @property
    def count(self) -> int:
        """Number of live pins (refcounts summed)."""
        with self._lock:
            return sum(self._pins.values())
